"""Microbenchmarks for the grouped-aggregation scan kernels.

Times the vectorised kernels of :mod:`repro.cubrick.kernels` against the
seed's naive per-group scan (``np.unique(stacked, axis=0)`` followed by
an ``inverse == group_idx`` boolean mask per group) on synthetic brick
data, per aggregate function.

Run directly for a table plus the machine-readable ledger::

    PYTHONPATH=src python benchmarks/bench_kernels.py

or through the benchmark suite (``pytest benchmarks/ --benchmark-only``),
which invokes :func:`run_benchmarks` from
``test_bench_engine_throughput.py``. Either path merges the numbers into
``benchmarks/results/BENCH_engine.json`` under the ``"kernels"`` section
as ``{case: {"before_rows_per_s", "after_rows_per_s", "speedup"}}``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
if __package__ in (None, ""):
    # Running as a script: make src/ importable like the test suite does.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cubrick.kernels import (  # noqa: E402
    encode_group_keys,
    group_counts,
    grouped_states,
)
from repro.cubrick.query import AggFunc  # noqa: E402

from conftest import report, report_json  # noqa: E402

#: Rows per synthetic brick scan (a large brick's worth).
ROWS = 50_000
#: Repeat each measurement and keep the best (least-noise) run.
REPEATS = 3


def make_columns(rows: int, seed: int = 7) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "day": rng.integers(64, size=rows),
        "entity": rng.integers(1024, size=rows),
        # Multiples of 1/8: exactly representable, so naive and kernel
        # sums are bit-identical regardless of summation order.
        "value": np.round(rng.exponential(10.0, size=rows) * 8.0) / 8.0,
    }


def naive_scan(key_columns: list[np.ndarray], values: np.ndarray,
               func: AggFunc) -> dict[tuple, object]:
    """The seed's per-group loop: one boolean mask per group."""
    stacked = np.stack(key_columns, axis=1)
    unique_keys, inverse = np.unique(stacked, axis=0, return_inverse=True)
    out: dict[tuple, object] = {}
    for group_idx in range(len(unique_keys)):
        group_mask = inverse == group_idx
        key = tuple(int(v) for v in unique_keys[group_idx])
        if func is AggFunc.COUNT:
            out[key] = float(group_mask.sum())
            continue
        group_values = values[group_mask]
        if func is AggFunc.SUM:
            out[key] = float(group_values.sum())
        elif func is AggFunc.MIN:
            out[key] = float(group_values.min())
        elif func is AggFunc.MAX:
            out[key] = float(group_values.max())
        elif func is AggFunc.AVG:
            out[key] = (float(group_values.sum()), float(len(group_values)))
        else:  # COUNT_DISTINCT
            out[key] = frozenset(np.unique(group_values).tolist())
    return out


def vectorised_scan(key_columns: list[np.ndarray], values: np.ndarray,
                    func: AggFunc) -> dict[tuple, object]:
    """The kernel path: key encoding + one bincount/reduceat pass."""
    group_idx, unique_keys = encode_group_keys(key_columns)
    n_groups = len(unique_keys)
    counts = (
        group_counts(group_idx, n_groups)
        if func in (AggFunc.COUNT, AggFunc.AVG)
        else None
    )
    states = grouped_states(func, group_idx, values, n_groups, counts)
    keys = [tuple(row) for row in unique_keys.tolist()]
    return dict(zip(keys, states))


def _time(fn) -> float:
    best = float("inf")
    for __ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmarks(rows: int = ROWS) -> dict[str, dict[str, float]]:
    """Time naive vs kernel scans; returns {case: before/after/speedup}."""
    columns = make_columns(rows)
    values = columns["value"]
    cases = [
        (f"group_day.{func.value}", [columns["day"]], func)
        for func in AggFunc
    ] + [
        (
            f"group_day_entity.{func.value}",
            [columns["day"], columns["entity"]],
            func,
        )
        for func in (AggFunc.SUM, AggFunc.COUNT_DISTINCT)
    ]
    results: dict[str, dict[str, float]] = {}
    for name, key_columns, func in cases:
        expected = naive_scan(key_columns, values, func)
        actual = vectorised_scan(key_columns, values, func)
        assert actual == expected, f"kernel mismatch in {name}"
        before = _time(lambda: naive_scan(key_columns, values, func))
        after = _time(lambda: vectorised_scan(key_columns, values, func))
        results[name] = {
            "rows": rows,
            "groups": len(expected),
            "before_rows_per_s": round(rows / before),
            "after_rows_per_s": round(rows / after),
            "speedup": round(before / after, 2),
        }
    return results


def render(results: dict[str, dict[str, float]]) -> list[str]:
    lines = []
    for name, r in results.items():
        lines.append(
            f"{name:<32} {r['before_rows_per_s']:>13,} -> "
            f"{r['after_rows_per_s']:>13,} rows/s  ({r['speedup']:.1f}x, "
            f"{r['groups']} groups)"
        )
    return lines


def main() -> None:
    results = run_benchmarks()
    report("engine_kernels", render(results))
    report_json("kernels", results)


if __name__ == "__main__":
    main()
