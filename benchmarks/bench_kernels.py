"""Microbenchmarks for the grouped-aggregation scan kernels.

Three kernel families, each with a tracked before/after pair:

* ``group_day.*`` / ``group_day_entity.*`` — every aggregate function
  against the seed's naive per-group scan (``np.unique(stacked,
  axis=0)`` followed by one boolean mask per group).
* ``group_user100k.*`` — the high-cardinality (~87k groups) family.
  The naive scan is quadratic there, so the "before" is the previous
  kernel generation (raw-column key encode, ``argsort``+``reduceat``
  extremes, per-group frozenset distincts) and the "after" is this
  generation (load-time dictionary codes, ``np.minimum.at`` scatter,
  composite-key pair dedup).
* ``parallel_scan`` — full-scan SUM over a loaded partition, serial vs
  :class:`~repro.cubrick.parallel.ParallelScanner` at 1/2/4 workers.
  The entry records the host's core count: fork+COW fan-out only beats
  serial with real cores to fan out to.

Run directly for a table plus the machine-readable ledger::

    PYTHONPATH=src python benchmarks/bench_kernels.py

``--check`` runs the CI smoke instead: re-times only the kernel path of
the key cases and asserts generous throughput floors, exiting non-zero
on a regression. Either full path merges numbers into
``benchmarks/results/BENCH_engine.json`` (sections ``"kernels"`` and
``"parallel_scan"``).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
if __package__ in (None, ""):
    # Running as a script: make src/ importable like the test suite does.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cubrick.kernels import (  # noqa: E402
    EncodedColumn,
    encode_group_keys,
    group_counts,
    grouped_state_arrays,
)
from repro.cubrick.parallel import ParallelScanner  # noqa: E402
from repro.cubrick.query import (  # noqa: E402
    AggFunc,
    Aggregation,
    Query,
    _block_states_to_python,
)
from repro.cubrick.schema import Dimension, Metric, TableSchema  # noqa: E402
from repro.cubrick.storage import PartitionStorage  # noqa: E402

from conftest import report, report_json  # noqa: E402

#: Rows per synthetic brick scan (a large brick's worth).
ROWS = 50_000
#: Rows / key cardinality of the high-cardinality family (~87k groups).
HC_ROWS = 200_000
HC_CARDINALITY = 100_000
#: Rows in the parallel full-scan partition.
PARALLEL_ROWS = 400_000
#: Repeat each measurement and keep the best (least-noise) run.
REPEATS = 3

#: CI smoke floors (``--check``): generous fractions of the measured
#: numbers so shared CI hardware doesn't flap the build.
CHECK_FLOORS = {
    "group_day.count_distinct": 15_000_000,
    "group_day_entity.sum": 5_000_000,
}


def make_columns(rows: int, seed: int = 7) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "day": rng.integers(64, size=rows),
        "entity": rng.integers(1024, size=rows),
        # Multiples of 1/8: exactly representable, so naive and kernel
        # sums are bit-identical regardless of summation order.
        "value": np.round(rng.exponential(10.0, size=rows) * 8.0) / 8.0,
    }


def make_hc_columns(rows: int, seed: int = 11) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "user": rng.integers(HC_CARDINALITY, size=rows),
        "value": np.round(rng.exponential(10.0, size=rows) * 8.0) / 8.0,
    }


def naive_scan(key_columns: list[np.ndarray], values: np.ndarray,
               func: AggFunc) -> dict[tuple, object]:
    """The seed's per-group loop: one boolean mask per group."""
    stacked = np.stack(key_columns, axis=1)
    unique_keys, inverse = np.unique(stacked, axis=0, return_inverse=True)
    out: dict[tuple, object] = {}
    for group_idx in range(len(unique_keys)):
        group_mask = inverse == group_idx
        key = tuple(int(v) for v in unique_keys[group_idx])
        if func is AggFunc.COUNT:
            out[key] = float(group_mask.sum())
            continue
        group_values = values[group_mask]
        if func is AggFunc.SUM:
            out[key] = float(group_values.sum())
        elif func is AggFunc.MIN:
            out[key] = float(group_values.min())
        elif func is AggFunc.MAX:
            out[key] = float(group_values.max())
        elif func is AggFunc.AVG:
            out[key] = (float(group_values.sum()), float(len(group_values)))
        else:  # COUNT_DISTINCT
            out[key] = frozenset(np.unique(group_values).tolist())
    return out


def legacy_scan(key_columns: list[np.ndarray], values: np.ndarray,
                func: AggFunc) -> dict[tuple, object]:
    """The previous kernel generation (this PR's "before" on
    high-cardinality keys, where the naive mask loop is quadratic):
    raw-column key encoding, ``argsort``+``reduceat`` extremes, and
    per-group Python frozensets for COUNT_DISTINCT."""
    group_idx, unique_keys = encode_group_keys(key_columns)
    n_groups = len(unique_keys)
    keys = [tuple(row) for row in unique_keys.tolist()]
    if func is AggFunc.COUNT:
        states = group_counts(group_idx, n_groups).tolist()
    elif func is AggFunc.SUM:
        states = np.bincount(
            group_idx, weights=values, minlength=n_groups
        ).tolist()
    elif func is AggFunc.AVG:
        sums = np.bincount(group_idx, weights=values, minlength=n_groups)
        counts = group_counts(group_idx, n_groups)
        states = list(zip(sums.tolist(), counts.tolist()))
    elif func in (AggFunc.MIN, AggFunc.MAX):
        order = np.argsort(group_idx, kind="stable")
        sorted_values = values[order]
        boundaries = np.flatnonzero(np.diff(group_idx[order])) + 1
        starts = np.concatenate(([0], boundaries))
        reduce = np.minimum if func is AggFunc.MIN else np.maximum
        states = reduce.reduceat(sorted_values, starts).tolist()
    else:  # COUNT_DISTINCT via per-group frozensets
        order = np.lexsort((values, group_idx))
        sorted_idx = group_idx[order]
        sorted_values = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_idx)) + 1
        starts = np.concatenate(([0], boundaries, [len(sorted_values)]))
        states = [
            frozenset(np.unique(
                sorted_values[starts[g]:starts[g + 1]]
            ).tolist())
            for g in range(n_groups)
        ]
    return dict(zip(keys, states))


def kernel_block(key_columns: list, values, func: AggFunc):
    """The engine's scan hot path: key encoding + one array-kernel pass.

    This is exactly what ``PartitionStorage._scan_brick`` runs per brick
    — the output stays in array-block form (``accumulate_block``), so
    this is the timed region. ``key_columns`` entries (and ``values``
    for COUNT_DISTINCT) may be :class:`EncodedColumn` — the
    brick-dictionary fast path.
    """
    group_idx, unique_keys = encode_group_keys(key_columns)
    n_groups = len(unique_keys)
    counts = (
        group_counts(group_idx, n_groups)
        if func in (AggFunc.COUNT, AggFunc.AVG)
        else None
    )
    return unique_keys, grouped_state_arrays(
        func, group_idx, values, n_groups, counts
    )


def vectorised_scan(key_columns: list, values, func: AggFunc
                    ) -> dict[tuple, object]:
    """Kernel path materialised to a comparable dict (verification only;
    the engine never builds per-group Python states on the scan path)."""
    unique_keys, block = kernel_block(key_columns, values, func)
    n_groups = len(unique_keys)
    states = _block_states_to_python(func, block, n_groups)
    keys = [tuple(row) for row in unique_keys.tolist()]
    return dict(zip(keys, states))


def _time(fn) -> float:
    best = float("inf")
    for __ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _encode_load_time(column: np.ndarray) -> EncodedColumn:
    """Per-brick dictionary the storage layer builds at load time."""
    dictionary, codes = np.unique(column, return_inverse=True)
    return EncodedColumn(codes.astype(np.int64), dictionary)


def _case_table() -> list[tuple]:
    """(name, baseline_fn, key_columns_before, key_columns_after,
    values_before, values_after, func, rows)."""
    columns = make_columns(ROWS)
    values = columns["value"]
    # Entity (cardinality 1024) crosses the dict-encode threshold, so
    # bricks hand the scan dense codes: the "after" uses them, like the
    # real scan path does. The dictionary is built once at load time.
    entity_encoded = _encode_load_time(columns["entity"])
    cases = []
    for func in AggFunc:
        cases.append((
            f"group_day.{func.value}", naive_scan,
            [columns["day"]], [columns["day"]],
            values, values, func, ROWS,
        ))
    for func in AggFunc:
        cases.append((
            f"group_day_entity.{func.value}", naive_scan,
            [columns["day"], columns["entity"]],
            [columns["day"], entity_encoded],
            values, values, func, ROWS,
        ))
    hc = make_hc_columns(HC_ROWS)
    hc_values = hc["value"]
    # Load-time dictionary: built once per brick, reused by every scan —
    # encoding cost sits outside the timed region, like in storage.
    hc_encoded = _encode_load_time(hc["user"])
    for func in (AggFunc.SUM, AggFunc.MIN, AggFunc.MAX,
                 AggFunc.COUNT_DISTINCT):
        cases.append((
            f"group_user100k.{func.value}", legacy_scan,
            [hc["user"]], [hc_encoded],
            hc_values, hc_values, func, HC_ROWS,
        ))
    return cases


def run_benchmarks(rows: int = ROWS) -> dict[str, dict[str, float]]:
    """Time baseline vs kernel scans; returns {case: before/after/...}."""
    results: dict[str, dict[str, float]] = {}
    for (name, baseline, keys_before, keys_after, vals_before,
         vals_after, func, n_rows) in _case_table():
        expected = baseline(keys_before, vals_before, func)
        actual = vectorised_scan(keys_after, vals_after, func)
        assert actual == expected, f"kernel mismatch in {name}"
        before = _time(lambda: baseline(keys_before, vals_before, func))
        after = _time(lambda: kernel_block(keys_after, vals_after, func))
        results[name] = {
            "rows": n_rows,
            "groups": len(expected),
            "baseline": "naive" if baseline is naive_scan else "pr1_kernel",
            "before_rows_per_s": round(n_rows / before),
            "after_rows_per_s": round(n_rows / after),
            "speedup": round(before / after, 2),
        }
    return results


# ----------------------------------------------------------------------
# Parallel full-scan benchmark
# ----------------------------------------------------------------------

PARALLEL_SCHEMA = TableSchema.build(
    "bench_parallel",
    dimensions=[
        Dimension("day", 64, range_size=8),
        Dimension("entity", HC_CARDINALITY, range_size=HC_CARDINALITY // 8),
    ],
    metrics=[Metric("value")],
)


def _build_parallel_storage(rows: int) -> PartitionStorage:
    rng = np.random.default_rng(17)
    storage = PartitionStorage(PARALLEL_SCHEMA, 0)
    storage.insert_columns({
        "day": rng.integers(64, size=rows),
        "entity": rng.integers(HC_CARDINALITY, size=rows),
        "value": np.round(rng.exponential(10.0, size=rows) * 8.0) / 8.0,
    })
    return storage


def run_parallel_benchmark(rows: int = PARALLEL_ROWS) -> dict:
    """Serial vs ParallelScanner full-scan SUM over one partition."""
    storage = _build_parallel_storage(rows)
    query = Query.build(
        "bench_parallel", [Aggregation(AggFunc.SUM, "value")],
        group_by=["day"],
    )
    serial_result = storage.execute(query).finalize()
    serial = _time(lambda: storage.execute(query).finalize())
    entry: dict = {
        "rows": rows,
        "bricks": storage.brick_count,
        "cores": os.cpu_count() or 1,
        "serial_rows_per_s": round(rows / serial),
        "workers": {},
    }
    for workers in (1, 2, 4):
        scanner = ParallelScanner(workers=workers)
        result = scanner.execute(storage, query).finalize()
        assert result.rows == serial_result.rows, (
            f"parallel divergence at {workers} workers"
        )
        elapsed = _time(
            lambda: scanner.execute(storage, query).finalize()
        )
        entry["workers"][str(workers)] = {
            "rows_per_s": round(rows / elapsed),
            "speedup_vs_serial": round(serial / elapsed, 2),
        }
    return entry


def render(results: dict[str, dict[str, float]]) -> list[str]:
    lines = []
    for name, r in results.items():
        lines.append(
            f"{name:<32} {r['before_rows_per_s']:>13,} -> "
            f"{r['after_rows_per_s']:>13,} rows/s  ({r['speedup']:.1f}x "
            f"vs {r.get('baseline', 'naive')}, {r['groups']} groups)"
        )
    return lines


def render_parallel(entry: dict) -> list[str]:
    lines = [
        f"full-scan SUM, {entry['rows']:,} rows / {entry['bricks']} bricks "
        f"on {entry['cores']} core(s)",
        f"serial: {entry['serial_rows_per_s']:>13,} rows/s",
    ]
    for workers, r in entry["workers"].items():
        lines.append(
            f"{workers} worker(s): {r['rows_per_s']:>13,} rows/s "
            f"({r['speedup_vs_serial']:.2f}x vs serial)"
        )
    return lines


def run_check() -> int:
    """CI smoke: assert kernel-path throughput floors; 0 = pass."""
    failures = []
    cases = {c[0]: c for c in _case_table()}
    for case, floor in CHECK_FLOORS.items():
        (__, __, __, keys_after, __, vals_after, func, n_rows) = cases[case]
        elapsed = _time(lambda: kernel_block(keys_after, vals_after, func))
        rate = n_rows / elapsed
        status = "ok" if rate >= floor else "FAIL"
        print(f"[{status}] {case}: {rate:,.0f} rows/s (floor {floor:,})")
        if rate < floor:
            failures.append(case)
    if failures:
        print(f"kernel throughput below floor: {failures}", file=sys.stderr)
        return 1
    return 0


def main() -> None:
    if "--check" in sys.argv[1:]:
        raise SystemExit(run_check())
    results = run_benchmarks()
    report("engine_kernels", render(results))
    report_json("kernels", results)
    parallel = run_parallel_benchmark()
    report("engine_parallel_scan", render_parallel(parallel))
    report_json("parallel_scan", parallel)


if __name__ == "__main__":
    main()
