"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures and prints the
rows/series the paper reports (run with ``pytest benchmarks/
--benchmark-only -s`` to see them live). Each report is also written to
``benchmarks/results/<name>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, lines: list[str]) -> None:
    """Print a figure/table report and persist it under results/."""
    header = f"=== {name} ==="
    body = "\n".join([header, *lines, ""])
    print("\n" + body)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(body, encoding="utf-8")


def fmt_row(*cells, width: int = 14) -> str:
    return "".join(str(c).ljust(width) for c in cells)
