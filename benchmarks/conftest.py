"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures and prints the
rows/series the paper reports (run with ``pytest benchmarks/
--benchmark-only -s`` to see them live). Each report is also written to
``benchmarks/results/<name>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable engine-performance ledger: every engine/kernel bench
#: merges its numbers here so the perf trajectory is diffable PR to PR.
BENCH_ENGINE_JSON = RESULTS_DIR / "BENCH_engine.json"


def report(name: str, lines: list[str]) -> None:
    """Print a figure/table report and persist it under results/."""
    header = f"=== {name} ==="
    body = "\n".join([header, *lines, ""])
    print("\n" + body)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(body, encoding="utf-8")


def _load_bench_json() -> dict:
    if BENCH_ENGINE_JSON.exists():
        try:
            return json.loads(BENCH_ENGINE_JSON.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            pass
    return {}


def _save_bench_json(data: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_ENGINE_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def report_json(section: str, payload: dict) -> None:
    """Merge one section of benchmark numbers into BENCH_engine.json.

    Read-modify-write so independent benches (engine throughput, kernel
    microbenchmarks) can each contribute their section in any order.
    """
    data = _load_bench_json()
    data[section] = payload
    _save_bench_json(data)


def report_json_entry(section: str, key: str, payload: dict) -> None:
    """Merge one keyed entry inside a BENCH_engine.json section."""
    data = _load_bench_json()
    section_data = data.get(section)
    if not isinstance(section_data, dict):
        section_data = {}
    section_data[key] = payload
    data[section] = section_data
    _save_bench_json(data)


def fmt_row(*cells, width: int = 14) -> str:
    return "".join(str(c).ljust(width) for c in cells)
