"""Ablation (§IV-F3): the generation-3 open problem and the IOPS fix.

With SSD eviction, two hosts can have identical SSD footprints while one
of them pays IOs on every query (its *working set* does not fit in
memory). The plain SSD metric cannot see the difference; the paper's
proposed refinement — adding a smoothed IOPS component — makes the
IO-hot shard look bigger so the balancer can react.
"""

import numpy as np

from repro.cubrick.compression import MemoryBudget
from repro.cubrick.loadbalance import IopsAwareExporter, SsdExporter
from repro.cubrick.node import CubrickNode
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Catalog, Dimension, Metric, TableSchema
from repro.cubrick.sharding import MonotonicHashMapper, ShardDirectory

from conftest import fmt_row, report

ROWS = 1500
QUERY_ROUNDS = 10


def build_node(name: str, memory_capacity: int) -> tuple[CubrickNode, int]:
    catalog = Catalog()
    schema = TableSchema.build(
        f"{name}_tbl",
        dimensions=[Dimension("k", 64, range_size=8)],
        metrics=[Metric("v")],
    )
    catalog.create(schema, num_partitions=1)
    directory = ShardDirectory(MonotonicHashMapper(max_shards=10_000))
    shards = directory.register_table(schema.name, 1)
    node = CubrickNode(
        name, catalog, directory,
        memory_budget=MemoryBudget(capacity_bytes=memory_capacity),
        allow_ssd_eviction=True,
    )
    node.add_shard(shards[0], None)
    rng = np.random.default_rng(hash(name) % 2 ** 31)
    node.insert_into_partition(
        schema.name, 0,
        [{"k": int(rng.integers(64)), "v": float(rng.random())}
         for __ in range(ROWS)],
    )
    return node, shards[0]


def compute_ablation():
    # Same data on both; only the memory budget differs: "roomy" keeps
    # the working set resident, "starved" evicts and pays IOs per query.
    roomy, roomy_shard = build_node("roomy", 10 ** 9)
    starved, starved_shard = build_node("starved", 1024)

    ssd = SsdExporter()
    iops_roomy = IopsAwareExporter(io_cost_bytes=4096.0)
    iops_starved = IopsAwareExporter(io_cost_bytes=4096.0)

    for node in (roomy, starved):
        query = Query.build(
            node.catalog.table_names()[0],
            [Aggregation(AggFunc.COUNT, "v")],
        )
        for __ in range(QUERY_ROUNDS):
            node.run_memory_monitor()  # starved: (re-)evicts each round
            node.execute_local(query, [0])

    return {
        "roomy": {
            "ssd_metric": ssd.shard_size(roomy, roomy_shard),
            "iops_metric": iops_roomy.shard_size(roomy, roomy_shard),
            "io_reads": roomy.total_io_reads(),
        },
        "starved": {
            "ssd_metric": ssd.shard_size(starved, starved_shard),
            "iops_metric": iops_starved.shard_size(starved, starved_shard),
            "io_reads": starved.total_io_reads(),
        },
    }


def test_bench_ablation_gen3_iops_metric(benchmark):
    results = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)

    lines = [
        f"identical {ROWS}-row shards; one host's working set fits in "
        "memory, the other's does not",
        fmt_row("host", "SSD metric", "IOPS-aware", "IO reads", width=16),
    ]
    for name, stats in results.items():
        lines.append(
            fmt_row(
                name,
                f"{stats['ssd_metric']:.0f}",
                f"{stats['iops_metric']:.0f}",
                stats["io_reads"],
                width=16,
            )
        )
    lines.append("")
    lines.append("the plain gen-3 metric is blind to the working-set "
                 "difference; the IOPS-aware metric separates the hosts")
    report("ablation_gen3_iops", lines)

    roomy, starved = results["roomy"], results["starved"]
    # The open problem: the plain SSD metric sees identical shards.
    assert roomy["ssd_metric"] == starved["ssd_metric"]
    # But the IO behaviour is wildly different...
    assert starved["io_reads"] > 5 * max(roomy["io_reads"], 1)
    # ... and the IOPS-aware metric exposes it.
    assert starved["iops_metric"] > 1.5 * roomy["iops_metric"]
