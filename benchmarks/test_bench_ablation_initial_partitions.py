"""Ablation (§IV-B): why 8 initial partitions per table.

The paper: "we found that a good starting point is to use 8 partitions
for every newly created table. It provides a good balance between giving
tables enough space so that re-partitions are not triggered too
frequently, and allowing even small tables to leverage parallel CPU
power of 8 servers."

This bench sweeps the initial partition count over the multi-tenant
population and measures both sides of that balance:

* re-partition work: fraction of tables that outgrow the initial count,
  and the total number of (expensive, data-shuffling) doubling steps;
* parallelism: the query fan-out a table enjoys from day one.
"""

import math

from repro.cubrick.partitioning import PartitioningPolicy
from repro.workloads.tables import TenantWorkload

from conftest import fmt_row, report

TABLES = 5000
INITIAL_COUNTS = [1, 2, 4, 8, 16, 32]


def evaluate(initial: int, sizes: list[int]) -> dict:
    policy = PartitioningPolicy(
        initial_partitions=initial,
        max_rows_per_partition=100_000,
        min_rows_per_partition=10_000,
        max_partitions=64,
    )
    repartitioned = 0
    doubling_steps = 0
    for rows in sizes:
        count = policy.initial_partitions
        steps = 0
        while (
            rows / count > policy.max_rows_per_partition
            and count < policy.max_partitions
        ):
            count = min(count * 2, policy.max_partitions)
            steps += 1
        if steps:
            repartitioned += 1
        doubling_steps += steps
    return {
        "repartitioned_fraction": repartitioned / len(sizes),
        "doubling_steps": doubling_steps,
        "day_one_parallelism": initial,
    }


def compute_ablation():
    workload = TenantWorkload.generate(TABLES, seed=7)
    sizes = [spec.rows for spec in workload.specs]
    return {initial: evaluate(initial, sizes) for initial in INITIAL_COUNTS}


def test_bench_ablation_initial_partitions(benchmark):
    results = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)

    lines = [
        f"{TABLES} tenant tables; cost of growth vs. day-one parallelism "
        "(paper's choice: 8)",
        fmt_row("initial", "repartitioned", "shuffle steps",
                "day-1 fanout", width=16),
    ]
    for initial, stats in results.items():
        lines.append(
            fmt_row(
                initial,
                f"{stats['repartitioned_fraction']:.1%}",
                stats["doubling_steps"],
                stats["day_one_parallelism"],
                width=16,
            )
        )
    lines.append("")
    lines.append(
        "small initial counts re-shuffle most of the population; large "
        "ones waste shards (and hosts) on the tiny-table majority — 8 "
        "keeps re-partitions rare (~10%) at 8-way day-one parallelism"
    )
    report("ablation_initial_partitions", lines)

    # Re-partition work decreases monotonically with the initial count...
    fractions = [results[i]["repartitioned_fraction"] for i in INITIAL_COUNTS]
    steps = [results[i]["doubling_steps"] for i in INITIAL_COUNTS]
    assert all(a >= b for a, b in zip(fractions, fractions[1:]))
    assert all(a >= b for a, b in zip(steps, steps[1:]))
    # ... and the paper's choice sits at the knee: rare re-partitions
    # (around 10% of tables) without over-provisioning the majority.
    eight = results[8]["repartitioned_fraction"]
    assert eight < 0.25
    assert results[1]["repartitioned_fraction"] > 3 * eight
    # Cutting work further by starting at 32 saves little...
    saved = (results[8]["doubling_steps"] - results[32]["doubling_steps"])
    assert saved < results[1]["doubling_steps"] - results[8]["doubling_steps"]
    # ... while quadrupling every small table's shard footprint.
    assert results[32]["day_one_parallelism"] == 4 * 8
