"""Ablation (§IV-F): load-balancing metric generations under compression.

Generation 1 exported the *actual* memory footprint per shard. Adaptive
compression broke it: a shard's footprint depends on the hosting
server's memory pressure, so migrated shards nondeterministically shrink
— the balancer chases phantom imbalance and churns. Generation 2 exports
the *decompressed* size, which only changes when data changes, so the
fleet settles.

We reproduce the churn: four Cubrick hosts, two under memory pressure
(their bricks get compressed), identical logical data everywhere — then
count balancer migrations over successive rounds for each generation.
"""

import numpy as np

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.compression import MemoryBudget, MemoryMonitor
from repro.cubrick.loadbalance import LoadBalanceGeneration
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.workloads.tables import generate_rows

from conftest import fmt_row, report

TABLES = 12
ROWS_PER_TABLE = 2000
ROUNDS = 8


def build(generation: LoadBalanceGeneration) -> CubrickDeployment:
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=61, regions=1, racks_per_region=2, hosts_per_rack=2,
            lb_generation=generation,
        )
    )
    rng = np.random.default_rng(62)
    for i in range(TABLES):
        schema = TableSchema.build(
            f"t{i:02d}",
            dimensions=[Dimension("k", 256, range_size=64)],
            metrics=[Metric("v")],
        )
        deployment.create_table(schema, num_partitions=1)
        # Highly compressible data (like real dictionary-encoded OLAP
        # columns): compression shrinks footprints by an order of
        # magnitude, which is what destabilises the generation-1 metric.
        rows = [
            {"k": int(rng.integers(4)) * 64, "v": 1.0}
            for __ in range(ROWS_PER_TABLE)
        ]
        deployment.load(schema.name, rows)
    # Two hosts run under memory pressure: their memory monitor will
    # compress everything they hold.
    pressured = sorted(deployment.nodes)[:2]
    for host_id in pressured:
        deployment.nodes[host_id].memory_monitor = MemoryMonitor(
            MemoryBudget(capacity_bytes=1024, high_watermark=0.9,
                         low_watermark=0.5)
        )
    return deployment


def run_generation(generation: LoadBalanceGeneration) -> list[int]:
    deployment = build(generation)
    sm = deployment.sm_servers["region0"]
    per_round = []
    for __ in range(ROUNDS):
        for node in deployment.nodes.values():
            node.run_memory_monitor()
        before = len(sm.migrations.log)
        sm.collect_metrics()
        sm.run_load_balance()
        per_round.append(len(sm.migrations.log) - before)
        deployment.simulator.run_until(deployment.simulator.now + 60.0)
    return per_round


def compute_ablation():
    return {
        "gen1 footprint": run_generation(LoadBalanceGeneration.GEN1_FOOTPRINT),
        "gen2 decompressed": run_generation(
            LoadBalanceGeneration.GEN2_DECOMPRESSED
        ),
    }


def test_bench_ablation_lb_generations(benchmark):
    results = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)

    lines = [
        f"{TABLES} single-partition tables on 4 hosts, 2 hosts under memory "
        "pressure (bricks compressed); balancer migrations per round",
        fmt_row("generation", *[f"r{r}" for r in range(ROUNDS)], "total",
                width=10),
    ]
    for name, rounds in results.items():
        lines.append(fmt_row(name.split()[0], *rounds, sum(rounds), width=10))
    lines.append("")
    lines.append(
        "gen1 chases compression-induced phantom imbalance; gen2's metric "
        "is state-independent, so the fleet stays settled"
    )
    report("ablation_lb_generations", lines)

    gen1_total = sum(results["gen1 footprint"])
    gen2_total = sum(results["gen2 decompressed"])
    # Gen-1 churns: it keeps migrating across rounds.
    assert gen1_total > gen2_total
    assert gen1_total >= 3
    # Gen-2 settles quickly: no migrations after the first rounds.
    assert sum(results["gen2 decompressed"][2:]) == 0
