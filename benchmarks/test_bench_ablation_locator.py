"""Ablation (§IV-C): the four coordinator-locating strategies.

Measures what the paper discusses qualitatively for each strategy:
coordinator-load balance across partitions (max/mean ratio), extra
result-buffer hops, and extra control round trips.
"""

import numpy as np

from repro.cubrick.locator import (
    AlwaysPartitionZero,
    CachedRandom,
    ForwardFromZero,
    LookupThenRandom,
)

from conftest import fmt_row, report

QUERIES = 50_000
PARTITIONS = 16


def evaluate(locator, rng):
    picks = np.zeros(PARTITIONS, dtype=int)
    hops = 0
    roundtrips = 0
    for __ in range(QUERIES):
        choice = locator.choose("t", PARTITIONS, rng)
        picks[choice.partition_index] += 1
        hops += choice.extra_hops
        roundtrips += choice.extra_roundtrips
        locator.observe_result("t", PARTITIONS)
    imbalance = picks.max() / max(picks.mean(), 1e-9)
    return imbalance, hops / QUERIES, roundtrips / QUERIES


def compute_ablation():
    rng = np.random.default_rng(51)
    return {
        "1 always-zero": evaluate(AlwaysPartitionZero(), rng),
        "2 forward-from-zero": evaluate(ForwardFromZero(), rng),
        "3 lookup-then-random": evaluate(LookupThenRandom(), rng),
        "4 cached-random": evaluate(CachedRandom(), rng),
    }


def test_bench_ablation_coordinator_locator(benchmark):
    results = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)

    lines = [
        f"{QUERIES} queries against a {PARTITIONS}-partition table",
        fmt_row("strategy", "imbalance", "hops/query", "roundtrips/query",
                width=22),
    ]
    for name, (imbalance, hops, roundtrips) in results.items():
        lines.append(
            fmt_row(name, f"{imbalance:.2f}", f"{hops:.3f}",
                    f"{roundtrips:.5f}", width=22)
        )
    lines.append("")
    lines.append("paper's production choice: strategy 4 (balanced, no extra "
                 "hops, amortised zero roundtrips)")
    report("ablation_locator", lines)

    # Strategy 1: perfectly imbalanced (everything on partition 0).
    assert results["1 always-zero"][0] == PARTITIONS
    # Strategies 2-4: balanced within noise.
    for name in ("2 forward-from-zero", "3 lookup-then-random",
                 "4 cached-random"):
        assert results[name][0] < 1.1
    # Strategy 2 pays ~(1 - 1/P) hops per query; others none.
    assert abs(results["2 forward-from-zero"][1] - (1 - 1 / PARTITIONS)) < 0.02
    assert results["4 cached-random"][1] == 0.0
    # Strategy 3 pays a roundtrip per query; strategy 4 amortises to ~0.
    assert results["3 lookup-then-random"][2] == 1.0
    assert results["4 cached-random"][2] < 0.001
