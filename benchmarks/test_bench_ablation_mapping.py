"""Ablation (§IV-A): shard-mapping functions.

Compares same-table collision rates of the naive per-partition hash
against the production monotonic mapper across shard-space sizes, plus
the replica-mapping alternative's constraint (fixed partition counts).
"""

from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.sharding import (
    ConsistentHashMapper,
    MonotonicHashMapper,
    NaiveHashMapper,
    ReplicaMapper,
    analyze_collisions,
)
from repro.errors import ConfigurationError
from repro.workloads.tables import TenantWorkload, expected_partitions

from conftest import fmt_row, report

TABLES = 1000
SHARD_SPACES = [10_000, 50_000, 100_000, 500_000]


def compute_ablation():
    workload = TenantWorkload.generate(TABLES, seed=71)
    policy = PartitioningPolicy()
    population = {
        spec.name: expected_partitions(spec.rows, policy)
        for spec in workload.specs
    }
    rows = []
    for max_shards in SHARD_SPACES:
        naive = analyze_collisions(
            population, NaiveHashMapper(max_shards=max_shards)
        )
        monotonic = analyze_collisions(
            population, MonotonicHashMapper(max_shards=max_shards)
        )
        rows.append(
            (max_shards, naive.same_table_fraction,
             monotonic.same_table_fraction)
        )

    # Replica mapping: no collisions, but only fixed-size tables fit.
    replica = ReplicaMapper(max_shards=100_000, replicas=8)
    fits = sum(1 for count in population.values() if count == 8)
    rejected = 0
    for count in set(population.values()):
        if count != 8:
            try:
                replica.shards_of("x", count)
            except ConfigurationError:
                rejected += 1

    # Re-sharding (growing maxShards by 10%): fraction of tables whose
    # anchor shard moves under each mapper. The paper notes consistent
    # hashing is what Cubrick would use if maxShards had to change.
    tables = list(population)
    moved = {}
    for label, cls in (("monotonic", MonotonicHashMapper),
                       ("consistent", ConsistentHashMapper)):
        small, grown = cls(max_shards=100_000), cls(max_shards=110_000)
        moved[label] = sum(
            1 for t in tables if small.shard_of(t, 0) != grown.shard_of(t, 0)
        ) / len(tables)
    return rows, fits, rejected, population, moved


def test_bench_ablation_shard_mapping(benchmark):
    rows, fits, rejected, population, moved = benchmark.pedantic(
        compute_ablation, rounds=1, iterations=1
    )

    lines = [
        f"{TABLES} tables; same-table partition-collision rate by mapper",
        fmt_row("maxShards", "naive", "monotonic"),
    ]
    for max_shards, naive_rate, monotonic_rate in rows:
        lines.append(
            fmt_row(max_shards, f"{naive_rate:.2%}", f"{monotonic_rate:.2%}")
        )
    lines.append("")
    lines.append(
        f"replica mapping: fits {fits}/{TABLES} tables "
        f"(only 8-partition tables); rejects every other partition count"
    )
    lines.append("")
    lines.append("re-sharding 100k -> 110k shards, tables whose anchor moves:")
    for label, fraction in moved.items():
        lines.append(fmt_row(label, f"{fraction:.1%}"))
    report("ablation_mapping", lines)

    # Monotonic never self-collides; naive does, worse in small spaces.
    for __, naive_rate, monotonic_rate in rows:
        assert monotonic_rate == 0.0
    naive_rates = [r[1] for r in rows]
    assert naive_rates[0] > naive_rates[-1]
    assert naive_rates[0] > 0.0
    # Replica mapping's documented limitation.
    assert rejected == len({c for c in population.values() if c != 8})
    assert 0 < fits < TABLES
    # Consistent hashing survives re-sharding; modulo hashing does not.
    assert moved["consistent"] < 0.2
    assert moved["monotonic"] > 0.8
