"""Ablation (§II-C): the two ways past the wall.

The paper names two strategies once a system hits the scalability wall:
(a) trade accuracy for scale — accept partial results from whichever
hosts answer in time (Scuba's model), or (b) partial sharding — bound
the fan-out and keep results exact. This bench measures the trade on
the same failing cluster:

* strict full sharding — fails queries whenever any host is down;
* Scuba-mode full sharding — always answers, but with incomplete
  results and silently wrong aggregates;
* partial sharding (strict) — bounded fan-out keeps both success ratio
  and correctness.
"""

import numpy as np

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.fanout import ShardingMode
from repro.errors import QueryFailedError
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query

from conftest import fmt_row, report

ROWS = 640
TRIALS = 400
FAILURE_P = 0.004  # exaggerated per-visit failure so effects show


def run_mode(mode: ShardingMode, allow_partial: bool):
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=91, regions=1, racks_per_region=4, hosts_per_rack=8,
            mode=mode, query_failure_probability=FAILURE_P,
        )
    )
    schema = probe_schema("wall")
    deployment.create_table(schema)
    rng = np.random.default_rng(92)
    deployment.load(
        "wall",
        [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(ROWS)],
    )
    deployment.simulator.run_until(30.0)
    probe = simple_probe_query(schema)

    succeeded = 0
    exact = 0
    coverage_sum = 0.0
    for __ in range(TRIALS):
        try:
            result = deployment.coordinators["region0"].execute(
                probe, allow_partial=allow_partial
            )
        except QueryFailedError:
            continue
        succeeded += 1
        coverage_sum += result.metadata["coverage"]
        count = result.scalar() if result.rows else 0.0
        if count == ROWS:
            exact += 1
    return {
        "success": succeeded / TRIALS,
        "exact": exact / TRIALS,
        "coverage": coverage_sum / succeeded if succeeded else 0.0,
        "fanout": deployment.table_fanout("wall"),
    }


def compute_ablation():
    return {
        "full + strict": run_mode(ShardingMode.FULL, allow_partial=False),
        "full + scuba": run_mode(ShardingMode.FULL, allow_partial=True),
        "partial + strict": run_mode(ShardingMode.PARTIAL, allow_partial=False),
    }


def test_bench_ablation_scuba_vs_partial_sharding(benchmark):
    results = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)

    lines = [
        f"32-host region, p(visit failure)={FAILURE_P:.1%}, {TRIALS} queries, "
        "no cross-region retry",
        fmt_row("strategy", "fanout", "answered", "exact", "avg coverage",
                width=18),
    ]
    for name, stats in results.items():
        lines.append(
            fmt_row(
                name,
                stats["fanout"],
                f"{stats['success']:.1%}",
                f"{stats['exact']:.1%}",
                f"{stats['coverage']:.3f}",
                width=18,
            )
        )
    lines.append("")
    lines.append("scuba-mode answers everything but silently drops data; "
                 "partial sharding keeps answers exact at high success")
    report("ablation_scuba_mode", lines)

    full_strict = results["full + strict"]
    full_scuba = results["full + scuba"]
    partial = results["partial + strict"]
    # Scuba mode never fails a query outright...
    assert full_scuba["success"] == 1.0
    # ... but pays with inexact answers.
    assert full_scuba["exact"] < 1.0
    assert full_scuba["coverage"] < 1.0
    # Strict full sharding fails queries at this fan-out.
    assert full_strict["success"] < full_scuba["success"]
    assert full_strict["exact"] == full_strict["success"]
    # Partial sharding: bounded fan-out, exact answers, better success
    # than strict full sharding.
    assert partial["fanout"] < full_strict["fanout"]
    assert partial["success"] > full_strict["success"]
    assert partial["exact"] == partial["success"]
