"""Query-engine micro-benchmarks: scan/aggregate throughput.

Not a paper figure — operational numbers for the reproduction itself:
rows/second for the columnar engine's main code paths, and the benefit
of Granular Partitioning's brick pruning on filtered queries.
"""

import numpy as np
import pytest

import bench_kernels
from repro.cubrick.query import AggFunc, Aggregation, Filter, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.cubrick.storage import PartitionStorage

from conftest import report, report_json, report_json_entry

ROWS = 100_000

#: Seed-era group-by throughput (benchmarks/results/engine_group_by.txt
#: before the vectorised kernels landed) — the baseline the kernel
#: rewrite is measured against.
SEED_GROUP_BY_ROWS_PER_S = 1_942_262

SCHEMA = TableSchema.build(
    "bench",
    dimensions=[
        Dimension("day", 64, range_size=8),
        Dimension("entity", 1024, range_size=128),
    ],
    metrics=[Metric("value")],
)


@pytest.fixture(scope="module")
def storage():
    part = PartitionStorage(SCHEMA, 0)
    rng = np.random.default_rng(81)
    days = rng.integers(64, size=ROWS)
    entities = rng.integers(1024, size=ROWS)
    values = rng.exponential(10.0, size=ROWS)
    for i in range(ROWS):
        part.insert(
            {"day": int(days[i]), "entity": int(entities[i]),
             "value": float(values[i])}
        )
    return part


def test_bench_full_scan_sum(benchmark, storage):
    query = Query.build("bench", [Aggregation(AggFunc.SUM, "value")])
    result = benchmark(lambda: storage.execute(query).finalize())
    rate = ROWS / benchmark.stats["mean"]
    report("engine_full_scan", [f"full-scan SUM: {rate:,.0f} rows/s"])
    report_json_entry("engine", "full_scan_sum", {"rows_per_s": round(rate)})
    assert result.scalar() > 0


def test_bench_group_by(benchmark, storage):
    query = Query.build(
        "bench", [Aggregation(AggFunc.SUM, "value")], group_by=["day"]
    )
    result = benchmark(lambda: storage.execute(query).finalize())
    rate = ROWS / benchmark.stats["mean"]
    report("engine_group_by", [f"GROUP BY day SUM: {rate:,.0f} rows/s"])
    report_json_entry(
        "engine",
        "group_by_day_sum",
        {
            "rows_per_s": round(rate),
            "seed_rows_per_s": SEED_GROUP_BY_ROWS_PER_S,
            "speedup_vs_seed": round(rate / SEED_GROUP_BY_ROWS_PER_S, 2),
        },
    )
    assert len(result.rows) == 64


def test_bench_ingestion_row_path(benchmark):
    rng = np.random.default_rng(82)
    rows = [
        {"day": int(rng.integers(64)), "entity": int(rng.integers(1024)),
         "value": float(rng.random())}
        for __ in range(5_000)
    ]

    def load():
        part = PartitionStorage(SCHEMA, 0)
        part.insert_many(rows)
        return part

    part = benchmark(load)
    rate = len(rows) / benchmark.stats["mean"]
    report("engine_ingest_rows", [f"row-at-a-time insert: {rate:,.0f} rows/s"])
    assert part.rows == len(rows)


def test_bench_ingestion_columnar_path(benchmark):
    rng = np.random.default_rng(83)
    n = 200_000
    columns = {
        "day": rng.integers(64, size=n),
        "entity": rng.integers(1024, size=n),
        "value": rng.random(size=n),
    }

    def load():
        part = PartitionStorage(SCHEMA, 0)
        part.insert_columns(columns)
        return part

    part = benchmark(load)
    rate = n / benchmark.stats["mean"]
    report(
        "engine_ingest_columns",
        [f"vectorised bulk load: {rate:,.0f} rows/s"],
    )
    assert part.rows == n


def test_bench_pruned_filter(benchmark, storage):
    """Granular Partitioning prunes ~7/8 of the bricks for a one-bucket
    day filter; the pruned scan must touch far fewer rows."""
    query = Query.build(
        "bench",
        [Aggregation(AggFunc.COUNT, "value")],
        filters=[Filter.between("day", 0, 7)],  # exactly one day-bucket
    )
    partial = benchmark(lambda: storage.execute(query))
    fraction = partial.rows_scanned / ROWS
    report(
        "engine_pruning",
        [
            f"one-bucket filter scans {fraction:.1%} of rows "
            f"({partial.bricks_scanned} bricks)",
        ],
    )
    assert fraction < 0.2


def test_bench_kernel_before_after(benchmark):
    """Before/after for each grouped-aggregation kernel vs the seed's
    per-group masking loop; persists the ``"kernels"`` section of
    BENCH_engine.json. run_benchmarks does its own best-of timing, so a
    single pedantic round suffices."""
    results = benchmark.pedantic(
        bench_kernels.run_benchmarks, iterations=1, rounds=1
    )
    report("engine_kernels", bench_kernels.render(results))
    report_json("kernels", results)
    assert results["group_day.sum"]["speedup"] >= 5.0
    assert all(r["speedup"] > 1.0 for r in results.values())
