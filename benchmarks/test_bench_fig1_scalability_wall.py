"""Figure 1: query success ratio vs. nodes visited; the wall at ~100.

Paper setting: servers have a 0.01% chance of failure at any given time
and the system has a 99% query-success SLA — the success curve crosses
the SLA at about 100 servers.
"""

import numpy as np

from repro.core.wall import (
    PAPER_FAILURE_PROBABILITY,
    PAPER_SLA,
    monte_carlo_success_ratio,
    query_success_ratio,
    scalability_wall,
    success_curve,
)

from conftest import fmt_row, report

FANOUTS = [1, 10, 25, 50, 75, 100, 150, 200, 300, 500, 750, 1000]


def compute_figure1():
    curve = success_curve(FANOUTS, PAPER_FAILURE_PROBABILITY)
    wall = scalability_wall(PAPER_FAILURE_PROBABILITY, PAPER_SLA)
    rng = np.random.default_rng(0)
    monte_carlo = [
        monte_carlo_success_ratio(
            n, PAPER_FAILURE_PROBABILITY, trials=50_000, rng=rng
        )
        for n in FANOUTS
    ]
    return curve, wall, monte_carlo


def test_bench_fig1_scalability_wall(benchmark):
    curve, wall, monte_carlo = benchmark(compute_figure1)

    lines = [
        f"p(server failure) = {PAPER_FAILURE_PROBABILITY:.2%}, "
        f"SLA = {PAPER_SLA:.0%}",
        f"scalability wall = {wall} servers (paper: ~100)",
        fmt_row("fanout", "success", "monte-carlo", "meets SLA"),
    ]
    for n, analytic, empirical in zip(FANOUTS, curve, monte_carlo):
        lines.append(
            fmt_row(
                n,
                f"{analytic:.4%}",
                f"{empirical:.4%}",
                "yes" if analytic >= PAPER_SLA else "NO",
            )
        )
    report("fig1_scalability_wall", lines)

    # Shape checks: the wall is at 100, curve decays monotonically, and
    # the Monte-Carlo estimate agrees with the closed form.
    assert wall == 100
    assert all(a > b for a, b in zip(curve, curve[1:]))
    assert query_success_ratio(100, PAPER_FAILURE_PROBABILITY) >= PAPER_SLA
    assert query_success_ratio(101, PAPER_FAILURE_PROBABILITY) < PAPER_SLA
    for analytic, empirical in zip(curve, monte_carlo):
        assert abs(analytic - empirical) < 0.01
