"""Figure 2: success curves for different server failure probabilities.

The paper extends the Figure 1 model to larger clusters and a sweep of
per-server failure probabilities; curves order by reliability, and every
fully-sharded system eventually crosses any SLA.
"""

from repro.core.wall import scalability_wall, success_curve

from conftest import fmt_row, report

PROBABILITIES = [1e-5, 5e-5, 1e-4, 5e-4, 1e-3]
FANOUTS = [10, 100, 500, 1000, 2000, 5000, 10_000]
SLA = 0.99


def compute_figure2():
    curves = {p: success_curve(FANOUTS, p) for p in PROBABILITIES}
    walls = {p: scalability_wall(p, SLA) for p in PROBABILITIES}
    return curves, walls


def test_bench_fig2_failure_probability_sweep(benchmark):
    curves, walls = benchmark(compute_figure2)

    lines = [fmt_row("fanout", *[f"p={p:g}" for p in PROBABILITIES])]
    for i, n in enumerate(FANOUTS):
        lines.append(
            fmt_row(n, *[f"{curves[p][i]:.3%}" for p in PROBABILITIES])
        )
    lines.append("")
    lines.append(fmt_row("p(fail)", "wall @ 99% SLA"))
    for p in PROBABILITIES:
        lines.append(fmt_row(f"{p:g}", walls[p]))
    report("fig2_failure_sweep", lines)

    # Curves are ordered by failure probability at every fan-out...
    for i in range(len(FANOUTS)):
        values = [curves[p][i] for p in PROBABILITIES]
        assert all(a >= b for a, b in zip(values, values[1:]))
    # ... the wall shrinks as servers get less reliable ...
    wall_values = [walls[p] for p in PROBABILITIES]
    assert all(a > b for a, b in zip(wall_values, wall_values[1:]))
    # ... and every probability eventually violates the SLA (the paper's
    # point that all fully-sharded systems hit the wall at enough scale).
    for p in PROBABILITIES:
        assert curves[p][-1] < SLA
