"""Figure 4a: frequency of shard and partition collision types.

Paper numbers for the production deployment: ~7% of tables have shard
collisions (different shards of one table on one host), ~3% have
cross-table partition collisions (partitions of different tables on one
shard), and 0% have same-table partition collisions (prevented by the
monotonic mapping function).

We reproduce the deployment model: a pre-allocated shard space spread
across hosts (shards exist before tables are created, so table creation
cannot dodge co-location — exactly the paper's "does not prevent
collisions at table creation time"), a multi-tenant table population,
and the monotonic mapper.
"""

import numpy as np

from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.sharding import (
    MonotonicHashMapper,
    NaiveHashMapper,
    analyze_collisions,
)
from repro.workloads.tables import TenantWorkload, expected_partitions

from conftest import fmt_row, report

TABLES = 500
MAX_SHARDS = 300_000
HOSTS = 500


def build_population():
    workload = TenantWorkload.generate(TABLES, seed=7)
    policy = PartitioningPolicy()
    return {
        spec.name: expected_partitions(spec.rows, policy)
        for spec in workload.specs
    }


def compute_figure4a():
    table_partitions = build_population()
    rng = np.random.default_rng(42)
    # Pre-allocated shard space: each shard has a fixed host, uniformly
    # spread (what SM's balancer converges to for same-size shards).
    used_shards = set()
    mapper = MonotonicHashMapper(max_shards=MAX_SHARDS)
    naive_mapper = NaiveHashMapper(max_shards=MAX_SHARDS)
    for table, count in table_partitions.items():
        used_shards.update(mapper.shards_of(table, count))
        used_shards.update(naive_mapper.shards_of(table, count))
    shard_to_host = {
        shard: f"host{rng.integers(HOSTS):04d}" for shard in sorted(used_shards)
    }
    monotonic = analyze_collisions(table_partitions, mapper, shard_to_host)
    naive = analyze_collisions(table_partitions, naive_mapper, shard_to_host)
    return monotonic, naive


def test_bench_fig4a_collision_frequencies(benchmark):
    monotonic, naive = benchmark(compute_figure4a)

    lines = [
        f"{TABLES} tables, {MAX_SHARDS} shards, {HOSTS} hosts "
        f"(paper: ~7% shard, ~3% cross-table, 0% same-table)",
        fmt_row("collision type", "monotonic", "naive", width=28),
        fmt_row(
            "shard (same table, 1 host)",
            f"{monotonic.shard_collision_fraction:.1%}",
            f"{naive.shard_collision_fraction:.1%}",
            width=28,
        ),
        fmt_row(
            "partition (cross-table)",
            f"{monotonic.cross_table_fraction:.1%}",
            f"{naive.cross_table_fraction:.1%}",
            width=28,
        ),
        fmt_row(
            "partition (same-table)",
            f"{monotonic.same_table_fraction:.1%}",
            f"{naive.same_table_fraction:.1%}",
            width=28,
        ),
    ]
    report("fig4a_collisions", lines)

    # The paper's qualitative ordering with the production mapper:
    # shard collisions > cross-table partition collisions > same-table (=0).
    assert monotonic.same_table_partition_collisions == 0
    assert monotonic.shard_collision_fraction > monotonic.cross_table_fraction
    assert monotonic.cross_table_fraction > 0
    # And in the right quantitative neighbourhood (paper: 7% / 3%).
    assert 0.02 < monotonic.shard_collision_fraction < 0.20
    assert 0.005 < monotonic.cross_table_fraction < 0.10
    # The naive mapper would have added same-table collisions.
    assert naive.same_table_partition_collisions >= 0
