"""Figure 4b: distribution of partitions per table.

Paper: the vast majority of tables have 8 partitions (they never hit the
re-partition threshold); about 10% are re-partitioned, topping out
around 60 partitions.
"""

from repro.cubrick.partitioning import PartitioningPolicy
from repro.workloads.tables import TenantWorkload

from conftest import fmt_row, report

TABLES = 5000


def compute_figure4b():
    workload = TenantWorkload.generate(TABLES, seed=21)
    return workload.partition_histogram(PartitioningPolicy())


def test_bench_fig4b_partitions_per_table(benchmark):
    histogram = benchmark(compute_figure4b)
    total = sum(histogram.values())

    lines = [
        f"{TABLES} multi-tenant tables (paper: most at 8, ~10% re-partitioned, "
        "max ~60)",
        fmt_row("partitions", "tables", "fraction"),
    ]
    for partitions, count in histogram.items():
        bar = "#" * int(50 * count / total)
        lines.append(
            fmt_row(partitions, count, f"{count / total:.1%}") + " " + bar
        )
    repartitioned = sum(c for p, c in histogram.items() if p > 8)
    lines.append(f"re-partitioned tables: {repartitioned / total:.1%}")
    report("fig4b_partitions_per_table", lines)

    # The paper's shape: 8 dominates, a minority tail is re-partitioned,
    # bounded by the max-partitions cap (paper observes ~60).
    assert histogram[8] / total > 0.5
    assert 0.02 < repartitioned / total < 0.40
    assert max(histogram) <= 64
    # Distribution is monotone-ish: each doubling bucket is rarer.
    sizes = sorted(histogram)
    counts = [histogram[s] for s in sizes]
    assert counts[0] == max(counts)
