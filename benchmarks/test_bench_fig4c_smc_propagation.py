"""Figure 4c: service-discovery propagation delay distribution.

The paper reports the delay (in seconds) for SMC's local proxies to
learn about shard-mapping changes — a few seconds through the
multi-level distribution tree.
"""

import numpy as np

from repro.smc.tree import PropagationTree

from conftest import fmt_row, report

SAMPLES = 200_000
PERCENTILES = [10, 25, 50, 75, 90, 99, 99.9]


def compute_figure4c():
    tree = PropagationTree()
    rng = np.random.default_rng(3)
    delays = tree.sample_delays(rng, SAMPLES)
    return delays, tree


def test_bench_fig4c_smc_propagation_delay(benchmark):
    delays, tree = benchmark(compute_figure4c)

    quantiles = np.percentile(delays, PERCENTILES)
    lines = [
        f"{SAMPLES} propagated updates through "
        f"{len(tree.levels)} cache levels (paper: a few seconds)",
        fmt_row("percentile", "delay (s)"),
    ]
    for p, q in zip(PERCENTILES, quantiles):
        lines.append(fmt_row(f"p{p}", f"{q:.2f}"))
    lines.append(fmt_row("mean", f"{delays.mean():.2f}"))
    lines.append(
        fmt_row("graceful-drop wait", f"{tree.max_expected_delay():.2f}")
    )
    # Histogram of the distribution (the figure itself).
    counts, edges = np.histogram(delays, bins=12)
    lines.append("")
    for i, count in enumerate(counts):
        bar = "#" * int(60 * count / counts.max())
        lines.append(
            fmt_row(f"{edges[i]:.1f}-{edges[i + 1]:.1f}s", count) + " " + bar
        )
    report("fig4c_smc_propagation", lines)

    # The "few seconds" shape, with the graceful-drop wait as an upper
    # envelope that covers effectively the whole distribution.
    assert 1.0 < delays.mean() < 5.0
    assert np.percentile(delays, 99) < 10.0
    assert tree.max_expected_delay() > np.percentile(delays, 99.9)
    assert delays.min() >= 0.0
