"""Figure 4d: shard migrations per day on a production cluster.

The paper plots daily migration counts driven by load balancing, host
failures/failovers and datacenter automation (drains). We run a week of
cluster life: shards grow unevenly, hosts fail per an MTBF process, and
planned drains occur — all of which generate SM migrations.
"""

import numpy as np

from repro.cluster.topology import Cluster
from repro.shardmanager.app_server import InMemoryApplicationServer
from repro.shardmanager.datastore import Datastore
from repro.shardmanager.server import SMServer
from repro.shardmanager.spec import ServiceSpec
from repro.sim.engine import DAY, HOUR, Simulator
from repro.sim.failures import FailureInjector, MtbfFailureModel

from conftest import fmt_row, report

HOSTS_PER_RACK = 10
RACKS = 10  # 100 hosts
SHARDS = 800
DAYS = 7


def run_week():
    simulator = Simulator()
    cluster = Cluster.build(
        regions=1, racks_per_region=RACKS, hosts_per_rack=HOSTS_PER_RACK
    )
    spec = ServiceSpec(
        name="fig4d", max_shards=100_000, max_migrations_per_run=24,
        load_imbalance_tolerance=0.10,
    )
    datastore = Datastore(simulator, session_timeout=900.0, check_interval=300.0)
    server = SMServer(
        spec, simulator, cluster, region="region0", datastore=datastore,
        heartbeat_interval=300.0,
    )
    apps: dict[str, InMemoryApplicationServer] = {}
    for host in cluster.hosts():
        app = InMemoryApplicationServer(host.host_id, capacity=10_000.0)
        apps[host.host_id] = app
        server.register_host(app)
    rng = np.random.default_rng(17)
    for shard in range(SHARDS):
        server.create_shard(shard, size_hint=float(rng.uniform(5, 50)))

    # Uneven data growth: a Zipf-skewed subset of shards grows hourly.
    def grow():
        for __ in range(40):
            shard = min(int(rng.zipf(1.4)) - 1, SHARDS - 1)
            for app in apps.values():
                if shard in app.hosted_shards():
                    current = app.shard_metrics()[shard]
                    app.set_shard_size(shard, current + float(rng.uniform(1, 20)))
                    break

    simulator.schedule_periodic(HOUR, grow)
    server.start(collect_interval=HOUR, balance_interval=6 * HOUR,
                 until=DAYS * DAY)

    # Unplanned failures.
    def on_fail(host_id, permanent):
        cluster.host(host_id).fail(permanent=permanent)

    def on_recover(host_id):
        cluster.host(host_id).recover()
        fresh = InMemoryApplicationServer(host_id, capacity=10_000.0)
        apps[host_id] = fresh
        server.reconnect_host(fresh)

    injector = FailureInjector(
        simulator, MtbfFailureModel(mtbf=60 * DAY, mttr=HOUR,
                                    permanent_fraction=0.2),
        np.random.default_rng(18), on_fail, on_recover,
    )
    for host in cluster.hosts():
        injector.track(host.host_id, until=DAYS * DAY)

    # Planned automation: drain one host per weekday (maintenance).
    def drain_one(day):
        host_ids = cluster.host_ids()
        victim = host_ids[(day * 13) % len(host_ids)]
        if cluster.host(victim).is_available:
            cluster.host(victim).start_drain()
            server.drain_host(victim)
            cluster.host(victim).recover()

    for day in range(1, 6):
        simulator.schedule(day * DAY + 10 * HOUR, lambda d=day: drain_one(d))

    simulator.run_until(DAYS * DAY)
    return server, injector


def test_bench_fig4d_migrations_per_day(benchmark):
    server, injector = benchmark.pedantic(run_week, rounds=1, iterations=1)

    per_day = server.migrations.migrations_per_day(DAYS)
    by_reason = server.migrations.count_by_reason()
    lines = [
        f"{RACKS * HOSTS_PER_RACK} hosts, {SHARDS} shards, {DAYS} days "
        "(paper: daily migrations from balancing + failures + automation)",
        fmt_row("day", "migrations"),
    ]
    for day, count in enumerate(per_day):
        lines.append(fmt_row(day, count) + " " + "#" * min(count, 60))
    lines.append("")
    lines.append(fmt_row("reason", "count"))
    for reason, count in sorted(by_reason.items()):
        lines.append(fmt_row(reason, count))
    report("fig4d_migrations", lines)

    # Migrations happen throughout the week, from multiple causes.
    assert sum(per_day) > 0
    assert sum(1 for c in per_day if c > 0) >= 3
    assert by_reason.get("load_balance", 0) > 0
    assert by_reason.get("drain", 0) > 0
    if injector.events:
        assert by_reason.get("failover", 0) > 0
