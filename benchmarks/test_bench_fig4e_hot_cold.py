"""Figure 4e: hot vs. cold data-block distribution over a week.

The paper plots the distribution of data blocks by hotness counter in a
production deployment over one week: a clear split between a hot head
(recently loaded, frequently queried) and a cold tail that adaptive
compression targets first.
"""

import numpy as np

from repro.cubrick.bricks import Brick
from repro.workloads.hotcold import run_hot_cold_week

from conftest import fmt_row, report

BRICKS = 5000


def compute_figure4e():
    bricks = []
    for i in range(BRICKS):
        brick = Brick(i, ("d",), ("m",))
        brick.append({"d": 0, "m": 1.0})
        bricks.append(brick)
    rng = np.random.default_rng(9)
    return run_hot_cold_week(
        bricks, rng, accesses_per_hour=500, recency_skew=1.5
    )


def test_bench_fig4e_hot_cold_distribution(benchmark):
    trace = benchmark.pedantic(compute_figure4e, rounds=1, iterations=1)

    counts, edges = trace.histogram(bins=14)
    lines = [
        f"{BRICKS} data blocks, one simulated week of Zipf-by-recency "
        "accesses with stochastic decay",
        f"hot blocks (counter >= {trace.hot_threshold}): "
        f"{trace.hot_count} ({trace.hot_fraction:.1%})",
        f"cold blocks: {trace.cold_count} ({1 - trace.hot_fraction:.1%})",
        "",
        fmt_row("log1p(hotness)", "blocks", width=18),
    ]
    for i, count in enumerate(counts):
        bar = "#" * int(60 * count / counts.max())
        lines.append(
            fmt_row(f"{edges[i]:.2f}-{edges[i + 1]:.2f}", count, width=18)
            + " " + bar
        )
    report("fig4e_hot_cold", lines)

    # Both populations exist and cold dominates (the skew the paper's
    # adaptive compression exploits).
    assert trace.hot_count > 0
    assert trace.cold_count > trace.hot_count
    # Hotness concentrates in the newest blocks.
    newest = trace.hotness[: BRICKS // 20].mean()
    oldest = trace.hotness[-BRICKS // 2:].mean()
    assert newest > 10 * max(oldest, 1e-6)
