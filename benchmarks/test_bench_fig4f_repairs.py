"""Figure 4f: hosts sent to repair per day (permanent failures).

The paper plots how many hosts per day are handed to the repair
pipeline by datacenter automation, with no human intervention. We run
two weeks of MTBF-driven failures over a large fleet and count the
permanent ones per day.
"""

import numpy as np

from repro.cluster.automation import DatacenterAutomation
from repro.cluster.topology import Cluster
from repro.sim.engine import DAY, Simulator
from repro.sim.failures import FailureInjector, MtbfFailureModel

from conftest import fmt_row, report

HOSTS = 2000
DAYS = 14
MODEL = MtbfFailureModel(
    mtbf=90 * DAY,  # a host fails every ~3 months
    mttr=30 * 60.0,
    permanent_fraction=0.25,
    repair_time=5 * DAY,
)


def compute_figure4f():
    simulator = Simulator()
    cluster = Cluster.build(
        regions=1, racks_per_region=HOSTS // 20, hosts_per_rack=20
    )
    automation = DatacenterAutomation(simulator, cluster)
    injector = FailureInjector(
        simulator,
        MODEL,
        np.random.default_rng(23),
        on_fail=automation.handle_host_failure,
        on_recover=automation.handle_host_recovery,
    )
    for host in cluster.hosts():
        injector.track(host.host_id, until=DAYS * DAY)
    simulator.run_until(DAYS * DAY)
    return automation, injector


def test_bench_fig4f_repairs_per_day(benchmark):
    automation, injector = benchmark.pedantic(
        compute_figure4f, rounds=1, iterations=1
    )

    per_day = automation.repairs_per_day(DAYS)
    expected_daily = HOSTS / (MODEL.mtbf / DAY) * MODEL.permanent_fraction
    lines = [
        f"{HOSTS} hosts, {DAYS} days, MTBF={MODEL.mtbf / DAY:.0f}d, "
        f"{MODEL.permanent_fraction:.0%} permanent "
        f"(expected ~{expected_daily:.1f} repairs/day)",
        fmt_row("day", "hosts to repair"),
    ]
    for day, count in enumerate(per_day):
        lines.append(fmt_row(day, count) + " " + "#" * count)
    lines.append(f"total permanent: {sum(per_day)}; "
                 f"transient failures: "
                 f"{sum(1 for e in injector.events if not e.permanent)}")
    report("fig4f_repairs", lines)

    # Repairs happen steadily, at roughly the analytic rate.
    assert sum(per_day) > 0
    mean_daily = sum(per_day) / DAYS
    assert 0.3 * expected_daily < mean_daily < 3.0 * expected_daily
    # Transient failures are the majority (the paper's automation handles
    # both, but only permanent ones enter the repair pipeline).
    transient = sum(1 for e in injector.events if not e.permanent)
    assert transient > sum(per_day)
