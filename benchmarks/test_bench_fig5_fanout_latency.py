"""Figure 5: query latency for varying fan-out levels (the headline plot).

The paper ran the same simple query every 500 ms for a week (>1M queries
per table) against tables with different fan-out levels and plotted the
latency distribution on a log scale: medians barely move while p99/p999
grow sharply with fan-out.

Two reproductions:

* statistical, at full paper scale (1.2M queries per fan-out) through the
  tail-latency model — the headline series;
* integrated, at reduced scale, through the entire Cubrick stack
  (real tables, real probe queries via the proxy) — the cross-check that
  the full system exhibits the same shape.
"""

import numpy as np

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.sim.latency import HiccupModel, LogNormalTailLatency
from repro.workloads.fanout_experiment import (
    QUERIES_PER_WEEK,
    run_fanout_experiment,
    statistical_fanout_experiment,
)

from conftest import fmt_row, report

FANOUTS = [1, 2, 4, 8, 16, 32, 64, 128]
#: Tight common case + rare hiccups: the production regime.
MODEL = LogNormalTailLatency(
    base=0.002,
    median=0.010,
    sigma=0.35,
    hiccups=HiccupModel(probability=5e-4, min_delay=0.1, max_delay=2.0),
)
STATISTICAL_QUERIES = QUERIES_PER_WEEK  # 1,209,600 — the paper's count


def compute_statistical():
    rng = np.random.default_rng(31)
    return statistical_fanout_experiment(
        MODEL, FANOUTS, STATISTICAL_QUERIES, rng
    )


def compute_integrated():
    deployment = CubrickDeployment(
        DeploymentConfig(seed=32, regions=2, racks_per_region=2,
                         hosts_per_rack=4),
        latency_model=MODEL,
    )
    return run_fanout_experiment(
        deployment, [1, 4, 8], queries_per_table=400, rows_per_table=64
    )


def test_bench_fig5_statistical(benchmark):
    result = benchmark.pedantic(compute_statistical, rounds=1, iterations=1)

    lines = [
        f"{STATISTICAL_QUERIES:,} queries per fan-out (one week at 500 ms), "
        "latencies in ms (log-scale in the paper)",
        fmt_row("fanout", "p50", "p90", "p99", "p99.9", "p99.99", "max",
                width=10),
    ]
    for row in result.rows:
        lines.append(
            fmt_row(
                row.fanout,
                f"{row.p50 * 1e3:.1f}",
                f"{row.p90 * 1e3:.1f}",
                f"{row.p99 * 1e3:.1f}",
                f"{row.p999 * 1e3:.1f}",
                f"{row.p9999 * 1e3:.0f}",
                f"{row.maximum * 1e3:.0f}",
                width=10,
            )
        )
    report("fig5_fanout_latency_statistical", lines)

    p50 = dict(result.series("p50"))
    p99 = dict(result.series("p99"))
    p999 = dict(result.series("p999"))
    # Tails grow monotonically with fan-out...
    fanouts = [row.fanout for row in result.rows]
    for a, b in zip(fanouts, fanouts[1:]):
        assert p999[a] <= p999[b]
        assert p99[a] <= p99[b]
    # ... much faster than the median (the paper's visual signature).
    assert p50[128] / p50[1] < 5.0
    assert p999[128] / p999[1] > 10.0


def test_bench_fig5_integrated(benchmark):
    result = benchmark.pedantic(compute_integrated, rounds=1, iterations=1)

    lines = [
        "integrated run through the full stack (proxy -> coordinator -> "
        "nodes), latencies in ms",
        fmt_row("fanout", "queries", "p50", "p99", "p99.9", width=10),
    ]
    for row in result.rows:
        lines.append(
            fmt_row(
                row.fanout,
                row.queries,
                f"{row.p50 * 1e3:.1f}",
                f"{row.p99 * 1e3:.1f}",
                f"{row.p999 * 1e3:.1f}",
                width=10,
            )
        )
    report("fig5_fanout_latency_integrated", lines)

    p99 = dict(result.series("p99"))
    assert p99[8] > p99[1]
    assert all(row.queries > 350 for row in result.rows)
