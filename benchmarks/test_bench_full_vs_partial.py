"""Full vs. partial sharding: the paper's core claim, end to end.

Same cluster, same per-visit failure probability: the fully-sharded
table's success ratio decays with cluster size (and crosses the SLA at
the wall), while the partially-sharded table's stays flat — which is why
partial sharding lets the system keep scaling out (paper §II-C).

Analytic sweep at paper scale plus an integrated cross-check through the
full Cubrick stack at simulation scale.
"""

import numpy as np

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.fanout import ShardingMode
from repro.core.wall import query_success_ratio
from repro.errors import QueryFailedError
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query

from conftest import fmt_row, report

CLUSTER_SIZES = [8, 16, 32, 64, 128, 256, 512, 1024, 2048]
FAILURE_P = 1e-4
SLA = 0.99
PARTIAL_FANOUT = 8


def analytic_sweep():
    rows = []
    for size in CLUSTER_SIZES:
        full = query_success_ratio(size, FAILURE_P)
        partial = query_success_ratio(min(PARTIAL_FANOUT, size), FAILURE_P)
        rows.append((size, full, partial))
    return rows


def integrated_success_ratio(mode: ShardingMode, hosts_per_rack: int) -> float:
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=41, regions=1, racks_per_region=4,
            hosts_per_rack=hosts_per_rack, mode=mode,
            query_failure_probability=0.005,  # exaggerated for test scale
        )
    )
    schema = probe_schema("svc")
    deployment.create_table(schema)
    rng = np.random.default_rng(1)
    deployment.load(
        "svc",
        [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(400)],
    )
    deployment.simulator.run_until(30.0)
    probe = simple_probe_query(schema)
    ok = 0
    trials = 400
    for __ in range(trials):
        try:
            deployment.query(probe)
            ok += 1
        except QueryFailedError:
            pass
    return ok / trials


def compute_all():
    analytic = analytic_sweep()
    integrated = {
        "partial (8 hosts/rack x 4)": integrated_success_ratio(
            ShardingMode.PARTIAL, 8
        ),
        "full (8 hosts/rack x 4)": integrated_success_ratio(
            ShardingMode.FULL, 8
        ),
    }
    return analytic, integrated


def test_bench_full_vs_partial_sharding(benchmark):
    analytic, integrated = benchmark.pedantic(
        compute_all, rounds=1, iterations=1
    )

    lines = [
        f"per-visit failure probability {FAILURE_P:g}, SLA {SLA:.0%}, "
        f"partial fan-out fixed at {PARTIAL_FANOUT}",
        fmt_row("cluster", "full-shard", "partial", "full meets SLA"),
    ]
    crossover = None
    for size, full, partial in analytic:
        meets = full >= SLA
        if not meets and crossover is None:
            crossover = size
        lines.append(
            fmt_row(size, f"{full:.4%}", f"{partial:.4%}",
                    "yes" if meets else "NO")
        )
    lines.append(f"full sharding crosses the 99% SLA before {crossover} hosts "
                 "(the wall is at 100)")
    lines.append("")
    lines.append("integrated (retries disabled by single region, "
                 "p(visit failure)=0.5%):")
    for label, ratio in integrated.items():
        lines.append(fmt_row(label, f"{ratio:.1%}", width=30))
    report("full_vs_partial", lines)

    # Partial sharding holds the SLA at every cluster size; full sharding
    # decays monotonically and crosses it past the wall.
    for size, full, partial in analytic:
        assert partial >= SLA
    fulls = [full for __, full, __p in analytic]
    assert all(a > b for a, b in zip(fulls, fulls[1:]))
    assert crossover is not None and crossover <= 128
    # Integrated: partial visibly beats full on the same cluster.
    assert integrated["partial (8 hosts/rack x 4)"] > integrated[
        "full (8 hosts/rack x 4)"
    ]
