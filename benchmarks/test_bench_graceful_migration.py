"""§IV-E: graceful shard migration is zero-downtime under live traffic.

The graceful protocol (prepareAddShard → prepareDropShard → addShard →
SMC publish → delayed dropShard) lets primaries move without downtime:
clients reading stale SMC mappings are forwarded by the old server until
propagation settles. This bench hammers a table with queries while its
shards are continuously drained from host to host and measures:

* query success ratio (must be 100% — the zero-downtime claim),
* how many queries hit the stale-mapping window (forwarding at work),
* migration throughput.
"""

import numpy as np

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.errors import QueryFailedError
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query

from conftest import fmt_row, report

ROWS = 800
QUERIES = 600
MIGRATION_EVERY = 5  # migrate after every N queries


def run_traffic_with_migrations():
    deployment = CubrickDeployment(
        DeploymentConfig(seed=101, regions=1, racks_per_region=4,
                         hosts_per_rack=6)
    )
    schema = probe_schema("live")
    deployment.create_table(schema)
    rng = np.random.default_rng(102)
    deployment.load(
        "live",
        [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(ROWS)],
    )
    deployment.simulator.run_until(30.0)
    sm = deployment.sm_servers["region0"]
    probe = simple_probe_query(schema)

    ok = wrong = failed = migrations = 0
    stale_window_hits = 0
    for i in range(QUERIES):
        deployment.simulator.run_until(deployment.simulator.now + 0.5)
        if i % MIGRATION_EVERY == 0:
            donor = next(
                (h for h in sm.registered_hosts() if sm.shards_on_host(h)),
                None,
            )
            if donor is not None:
                migrations += sm.drain_host(donor)
        # Count queries landing inside a propagation window.
        now = deployment.simulator.now
        if any(
            sm.discovery.is_stale(shard, now)
            for shard in deployment.directory.shards_for_table("live")
        ):
            stale_window_hits += 1
        try:
            result = deployment.query(probe)
        except QueryFailedError:
            failed += 1
            continue
        if result.scalar() == ROWS:
            ok += 1
        else:
            wrong += 1
    return ok, wrong, failed, migrations, stale_window_hits


def test_bench_graceful_migration_zero_downtime(benchmark):
    ok, wrong, failed, migrations, stale_hits = benchmark.pedantic(
        run_traffic_with_migrations, rounds=1, iterations=1
    )

    lines = [
        f"{QUERIES} queries at 2/s while draining a host every "
        f"{MIGRATION_EVERY} queries",
        fmt_row("migrations executed", migrations, width=24),
        fmt_row("queries exact", ok, width=24),
        fmt_row("queries wrong", wrong, width=24),
        fmt_row("queries failed", failed, width=24),
        fmt_row("queries in stale window", stale_hits, width=24),
        "",
        "the graceful protocol (copy -> forward -> publish -> delayed "
        "drop) keeps every answer exact through continuous migrations",
    ]
    report("graceful_migration", lines)

    # The §IV-E claim: migrations are invisible to queries.
    assert migrations > 50
    assert wrong == 0
    assert failed == 0
    assert ok == QUERIES
    # And the stale window was actually exercised, not dodged.
    assert stale_hits > 0
