"""The §IV-A shard-mapping tables: dim_users and test_table.

Reproduces both in-text tables: the hash-based mapping of ``dim_users``
partitions to shards (100k total shards), and the ``test_table`` example
where naive hashing collides a table with itself while the production
monotonic mapper yields consecutive, collision-free shard ids.
"""

from repro.cubrick.sharding import MonotonicHashMapper, NaiveHashMapper

from conftest import fmt_row, report

MAX_SHARDS = 100_000


def compute_tables():
    naive = NaiveHashMapper(max_shards=MAX_SHARDS)
    monotonic = MonotonicHashMapper(max_shards=MAX_SHARDS)
    dim_users = naive.shards_of("dim_users", 4)

    # Find a table whose naive mapping self-collides with few partitions,
    # mirroring the paper's test_table example (our hash differs, so we
    # search for a demonstrative table name).
    collided_name, collided_shards = None, None
    for i in range(100_000):
        name = f"test_table_{i}"
        shards = NaiveHashMapper(max_shards=MAX_SHARDS // 1000).shards_of(name, 4)
        if len(set(shards)) < 4:
            collided_name, collided_shards = name, shards
            break
    fixed = MonotonicHashMapper(max_shards=MAX_SHARDS // 1000).shards_of(
        collided_name, 4
    )
    return dim_users, monotonic.shards_of("dim_users", 4), collided_name, \
        collided_shards, fixed


def test_bench_shard_mapping_tables(benchmark):
    dim_naive, dim_monotonic, name, collided, fixed = benchmark(compute_tables)

    lines = [f"hash(tbl) % maxShards with maxShards={MAX_SHARDS}", ""]
    lines.append("Table 1: dim_users partitions -> shards (naive hash)")
    lines.append(fmt_row("partition", "shard", width=16))
    for i, shard in enumerate(dim_naive):
        lines.append(fmt_row(f"dim_users#{i}", shard, width=16))
    lines.append("")
    lines.append(f"Table 2: naive self-collision for {name!r}")
    lines.append(fmt_row("partition", "shard (naive)", "shard (monotonic)",
                         width=20))
    for i in range(4):
        lines.append(fmt_row(f"{name}#{i}", collided[i], fixed[i], width=20))
    report("tables_shard_mapping", lines)

    # dim_users mapping is deterministic and in-range.
    assert all(0 <= s < MAX_SHARDS for s in dim_naive)
    # Monotonic mapping: consecutive ids from the partition-0 hash.
    base = dim_monotonic[0]
    assert dim_monotonic == [base, base + 1, base + 2, base + 3]
    # The paper's problem and its fix.
    assert len(set(collided)) < 4  # naive self-collision exists
    assert len(set(fixed)) == 4  # monotonic never self-collides
    assert fixed == [fixed[0] + i for i in range(4)]
