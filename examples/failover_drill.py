"""Failover drill: reliability at scale (paper §IV-D, §IV-G, §V-C).

The paper recommends regularly simulating disaster scenarios — taking
hosts, racks and full regions offline deliberately — to keep failure
modes understood and exercised. This example runs that drill:

1. a single host dies (heartbeats stop -> SM failover, data recovered
   from a healthy region);
2. a rack goes into planned maintenance (automation drains it through
   graceful shard migrations);
3. an entire region is taken offline (the proxy transparently routes to
   the survivors);

while a steady probe query verifies correctness after every step.

Run:  python examples/failover_drill.py
"""

import numpy as np

from repro import CubrickDeployment, DeploymentConfig
from repro.cluster.automation import MaintenanceKind
from repro.workloads.fanout_experiment import probe_schema
from repro.workloads.queries import simple_probe_query

ROWS = 5000


def check(deployment, probe, label) -> None:
    result = deployment.query(probe)
    status = "OK" if result.scalar() == ROWS else f"WRONG ({result.scalar()})"
    print(f"  [{status}] {label}: count={result.scalar():,.0f} via "
          f"{result.metadata['region']} "
          f"(attempts={result.metadata['attempts']}, "
          f"latency={result.metadata['latency'] * 1e3:.1f} ms)")


def main() -> None:
    deployment = CubrickDeployment(
        DeploymentConfig(seed=3, regions=3, racks_per_region=3,
                         hosts_per_rack=4)
    )
    schema = probe_schema("drill")
    deployment.create_table(schema)
    rng = np.random.default_rng(5)
    deployment.load(
        "drill",
        [{"bucket": int(rng.integers(64)), "value": 1.0} for __ in range(ROWS)],
    )
    deployment.simulator.run_until(30.0)
    probe = simple_probe_query(schema)
    check(deployment, probe, "baseline")

    # --- Drill 1: unplanned host death -------------------------------
    sm = deployment.sm_servers["region0"]
    victim = next(h for h in sm.registered_hosts() if sm.shards_on_host(h))
    shards = set(sm.shards_on_host(victim))
    print(f"\ndrill 1: killing {victim} (holds shards {sorted(shards)})")
    deployment.automation.handle_host_failure(victim, permanent=True)
    check(deployment, probe, "immediately after host death")
    deployment.simulator.run_until(deployment.simulator.now + 300.0)
    for shard in shards:
        new_owner = sm.discovery.resolve_authoritative(shard)
        print(f"  shard {shard}: failed over to {new_owner} "
              "(data recovered from a healthy region)")
    check(deployment, probe, "after failover settled")
    print(f"  hosts in repair pipeline: {deployment.automation.hosts_in_repair()}")

    # --- Drill 2: planned rack maintenance ----------------------------
    rack_hosts = [
        h.host_id for h in deployment.cluster.hosts_in_rack("region1", "rack001")
    ]
    print(f"\ndrill 2: draining rack region1/rack001 ({len(rack_hosts)} hosts)")
    request = deployment.automation.request_maintenance(
        MaintenanceKind.RACK_MAINTENANCE, rack_hosts, duration=3600.0
    )
    print(f"  automation safety checks: "
          f"{'approved' if request.approved else 'REFUSED: ' + request.reason}")
    deployment.simulator.run_until(deployment.simulator.now + 60.0)
    check(deployment, probe, "during rack maintenance")
    deployment.simulator.run_until(deployment.simulator.now + 3700.0)
    check(deployment, probe, "after rack returned")

    # --- Drill 3: full region offline ---------------------------------
    print("\ndrill 3: taking region0 offline (disaster exercise)")
    deployment.cluster.set_region_available("region0", False)
    check(deployment, probe, "with region0 down")
    deployment.cluster.set_region_available("region0", True)
    check(deployment, probe, "after region0 restored")

    migrations = sm.migrations.count_by_reason()
    print(f"\nshard migrations during the drill (region0): {migrations}")
    print(f"proxy success ratio: {deployment.proxy.success_ratio():.1%} "
          f"(first-try: {deployment.proxy.first_try_success_ratio():.1%})")
    print(f"blacklisted hosts: {deployment.proxy.blacklisted_hosts()}")


if __name__ == "__main__":
    main()
