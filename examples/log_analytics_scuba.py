"""Log analytics in Scuba mode: trading accuracy for availability.

The paper (§II-C) names two ways past the scalability wall. Cubrick's
answer is partial sharding with exact results; Scuba's — for log
analysis and monitoring, where a fast approximate answer beats a slow
exact one — is to ignore dead and slow hosts. Both are implemented in
this repository; this example runs a monitoring workload under an
unreliable, fully-sharded cluster and contrasts the three execution
modes on the same queries:

* strict (fails when any host is down),
* Scuba mode (always answers, reports coverage),
* Scuba mode + straggler timeout (bounded latency too).

Run:  python examples/log_analytics_scuba.py
"""

import numpy as np

from repro import CubrickDeployment, DeploymentConfig, ShardingMode
from repro.cubrick import (
    AggFunc,
    Aggregation,
    Dimension,
    Filter,
    Metric,
    Query,
    TableSchema,
)
from repro.errors import QueryFailedError
from repro.sim.latency import HiccupModel, LogNormalTailLatency

HOSTS_PER_REGION = 24
ROWS = 40_000
PROBES = 120


def main() -> None:
    # A log store: fully sharded (log volume wants every spindle), with
    # frequent hiccups and a high per-visit failure probability — the
    # regime where the wall bites.
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=77, regions=1, racks_per_region=4, hosts_per_rack=6,
            mode=ShardingMode.FULL,
            query_failure_probability=0.004,
        ),
        latency_model=LogNormalTailLatency(
            base=0.002, median=0.012, sigma=0.4,
            hiccups=HiccupModel(probability=0.05, min_delay=0.3, max_delay=1.5),
        ),
    )
    logs = TableSchema.build(
        "request_logs",
        dimensions=[
            Dimension("minute", 1440, range_size=60),
            Dimension("status", 6),  # 1xx..5xx + other
            Dimension("service", 40),
        ],
        metrics=[Metric("latency_ms")],
    )
    deployment.create_table(logs)
    print(f"request_logs sharded across "
          f"{deployment.table_fanout('request_logs')} hosts "
          f"(full fan-out, {HOSTS_PER_REGION} per region)")

    rng = np.random.default_rng(5)
    deployment.load(
        "request_logs",
        [{
            "minute": int(rng.integers(1440)),
            "status": int(rng.choice([2, 2, 2, 2, 3, 4, 5])),
            "service": int(rng.integers(40)),
            "latency_ms": float(rng.exponential(80.0)),
        } for __ in range(ROWS)],
    )
    deployment.simulator.run_until(30.0)

    error_rate_query = Query.build(
        "request_logs",
        [Aggregation(AggFunc.COUNT, "latency_ms")],
        filters=[Filter.eq("status", 5)],
    )

    modes = {
        "strict": {},
        "scuba": {"allow_partial": True},
        "scuba+timeout": {"allow_partial": True, "straggler_timeout": 0.12},
    }
    print(f"\n{PROBES} monitoring probes per mode "
          f"(p(visit failure)=0.4%, 5% hiccups):\n")
    print(f"{'mode':>14} {'answered':>9} {'avg coverage':>13} "
          f"{'p99 latency':>12}")
    for label, kwargs in modes.items():
        answered = 0
        coverage = []
        latencies = []
        for __ in range(PROBES):
            deployment.simulator.run_until(deployment.simulator.now + 0.5)
            try:
                result = deployment.query(error_rate_query, **kwargs)
            except QueryFailedError:
                continue
            answered += 1
            coverage.append(result.metadata["coverage"])
            latencies.append(result.metadata["latency"])
        p99 = np.percentile(latencies, 99) if latencies else float("nan")
        mean_coverage = np.mean(coverage) if coverage else 0.0
        print(f"{label:>14} {answered:>6}/{PROBES} {mean_coverage:>13.3f} "
              f"{p99 * 1e3:>9.0f} ms")

    print(
        "\nstrict mode drops whole queries when any of the "
        f"{deployment.table_fanout('request_logs')} hosts misbehaves; "
        "scuba mode answers everything at slightly reduced coverage; the "
        "straggler timeout additionally caps the tail. For workloads that "
        "cannot tolerate approximate answers, the paper's alternative is "
        "partial sharding — see examples/scalability_wall_study.py."
    )


if __name__ == "__main__":
    main()
