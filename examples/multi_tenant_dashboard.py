"""Multi-tenant dashboards: the workload partial sharding was built for.

The paper motivates partial sharding with multi-tenant systems storing
many small/medium tables (§II-C). This example onboards a population of
tenant tables with realistic size skew, drives a Zipf-skewed query
stream through the proxy, triggers a re-partition on the table that
outgrew its 8 partitions, and prints the fleet view SM's load balancer
works from.

Run:  python examples/multi_tenant_dashboard.py
"""

import numpy as np

from repro import CubrickDeployment, DeploymentConfig
from repro.cubrick.partitioning import PartitioningPolicy
from repro.errors import QueryFailedError
from repro.workloads.queries import QueryGenerator
from repro.workloads.tables import default_schema, generate_rows

TENANTS = 8
BIG_TENANT_ROWS = 4000
SMALL_TENANT_ROWS = 300
QUERIES = 300


def main() -> None:
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=1, regions=2, racks_per_region=3, hosts_per_rack=6,
            partitioning=PartitioningPolicy(
                max_rows_per_partition=400, min_rows_per_partition=20
            ),
        )
    )
    rng = np.random.default_rng(11)

    print("onboarding tenants...")
    schemas = []
    for i in range(TENANTS):
        schema = default_schema(f"tenant_{i}")
        deployment.create_table(schema)
        rows = BIG_TENANT_ROWS if i == 0 else SMALL_TENANT_ROWS
        deployment.load(schema.name, list(generate_rows(schema, rows, rng)))
        schemas.append(schema)
        print(f"  {schema.name}: {rows} rows, "
              f"{deployment.catalog.get(schema.name).num_partitions} partitions")

    deployment.simulator.run_until(30.0)
    deployment.start_background_maintenance(until=7200.0)

    print("\ndriving a skewed dashboard query stream...")
    generator = QueryGenerator(schemas, rng, table_skew=1.5)
    ok = failed = 0
    latencies = []
    for __ in range(QUERIES):
        deployment.simulator.run_until(deployment.simulator.now + 5.0)
        try:
            result = deployment.query(generator.next_query())
        except QueryFailedError:
            failed += 1
            continue
        ok += 1
        latencies.append(result.metadata["latency"])
    print(f"  {ok} ok / {failed} failed; "
          f"p50 {np.percentile(latencies, 50) * 1e3:.1f} ms, "
          f"p99 {np.percentile(latencies, 99) * 1e3:.1f} ms")

    print("\nchecking partition-size thresholds (dynamic re-partitioning)...")
    for schema in schemas:
        before = deployment.catalog.get(schema.name).num_partitions
        if deployment.maybe_repartition(schema.name):
            after = deployment.catalog.get(schema.name).num_partitions
            print(f"  {schema.name}: re-partitioned {before} -> {after}")
    deployment.simulator.run_until(deployment.simulator.now + 30.0)

    big = deployment.catalog.get("tenant_0")
    print(f"  tenant_0 now spans {big.num_partitions} partitions "
          f"(fan-out {deployment.table_fanout('tenant_0')} hosts)")

    print("\nfleet view (region0), as SM's balancer sees it:")
    sm = deployment.sm_servers["region0"]
    sm.collect_metrics()
    snapshot = sm.metrics.fleet_snapshot()
    for host_id, stats in sorted(snapshot.items()):
        if stats["load"] == 0:
            continue
        mib = stats["load"] / (1024 * 1024)
        print(f"  {host_id}: {mib:8.2f} MiB decompressed "
              f"({stats['utilization']:.2%} of capacity)")
    print(f"  imbalance (max/mean): "
          f"{sm.balancer.imbalance('region0'):.2f}")
    print(f"  shard migrations so far: {sm.migrations.count_by_reason()}")


if __name__ == "__main__":
    main()
