"""Quickstart: create a table, load data, run OLAP queries.

Spins up a three-region, partially-sharded Cubrick deployment on the
simulated cluster, creates a dashboard-style table, loads rows, and runs
aggregation queries through the Cubrick proxy — the same path production
clients use (admission control, region routing, retries).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CubrickDeployment, DeploymentConfig
from repro.cubrick import (
    AggFunc,
    Aggregation,
    Dimension,
    Filter,
    Metric,
    Query,
    TableSchema,
)


def main() -> None:
    deployment = CubrickDeployment(
        DeploymentConfig(seed=42, regions=3, racks_per_region=2,
                         hosts_per_rack=4)
    )
    print(f"cluster: {len(deployment.cluster)} hosts across "
          f"{len(deployment.region_names())} regions")

    schema = TableSchema.build(
        "page_views",
        dimensions=[
            Dimension("day", 30, range_size=7),
            Dimension("country", 200, range_size=25),
        ],
        metrics=[Metric("views"), Metric("time_spent")],
    )
    info = deployment.create_table(schema)
    print(f"created table {schema.name!r} with {info.num_partitions} "
          f"partitions (partial sharding: fan-out stays bounded)")

    rng = np.random.default_rng(7)
    rows = [
        {
            "day": int(rng.integers(30)),
            "country": int(rng.integers(200)),
            "views": float(rng.integers(1, 50)),
            "time_spent": float(rng.exponential(30.0)),
        }
        for __ in range(20_000)
    ]
    deployment.load("page_views", rows)
    print(f"loaded {len(rows)} rows into all {len(deployment.region_names())} "
          "regions")

    # Let the shard mappings propagate through service discovery.
    deployment.simulator.run_until(30.0)

    total = deployment.query(
        Query.build("page_views", [Aggregation(AggFunc.SUM, "views")])
    )
    print(f"\ntotal views: {total.scalar():,.0f} "
          f"(fan-out {total.metadata['fanout']}, "
          f"latency {total.metadata['latency'] * 1e3:.1f} ms, "
          f"served by {total.metadata['region']})")

    weekly = deployment.query(
        Query.build(
            "page_views",
            [Aggregation(AggFunc.SUM, "views"),
             Aggregation(AggFunc.AVG, "time_spent")],
            group_by=["day"],
            filters=[Filter.between("day", 0, 6)],
        )
    )
    print("\nfirst week, by day:")
    print(f"{'day':>4}  {'sum(views)':>12}  {'avg(time_spent)':>16}")
    for day, views, avg_time in weekly.rows:
        print(f"{day:>4}  {views:>12,.0f}  {avg_time:>16.1f}")

    top = deployment.query(
        Query.build(
            "page_views",
            [Aggregation(AggFunc.COUNT, "views")],
            filters=[Filter.isin("country", [1, 2, 3])],
        )
    )
    print(f"\nrows for countries 1-3: {top.scalar():,.0f}")
    print(f"\nproxy success ratio so far: "
          f"{deployment.proxy.success_ratio():.1%}")


if __name__ == "__main__":
    main()
