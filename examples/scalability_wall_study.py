"""Scalability-wall study: where does *your* system hit the wall?

Reproduces the paper's analytic argument interactively: given a
per-server failure probability and an SLA, where is the wall, how do the
curves look (Figures 1 and 2), and how does partial sharding change the
picture — including a live fan-out/latency experiment through the full
stack (Figure 5's mechanism).

Run:  python examples/scalability_wall_study.py
"""

import numpy as np

from repro import CubrickDeployment, DeploymentConfig, SlaPlanner
from repro.core.wall import (
    WallAnalysis,
    required_failure_probability,
    success_curve,
)
from repro.sim.latency import HiccupModel, LogNormalTailLatency
from repro.workloads.fanout_experiment import run_fanout_experiment


def ascii_curve(fanouts, values, sla, width=50) -> None:
    for n, value in zip(fanouts, values):
        bar = "#" * int(width * value)
        marker = " " if value >= sla else " <-- below SLA"
        print(f"  {n:>6} |{bar:<{width}}| {value:.3%}{marker}")


def main() -> None:
    print("=" * 70)
    print("Part 1: the wall (Figure 1)")
    print("=" * 70)
    analysis = WallAnalysis.compute(1e-4, 0.99)
    print(f"p(server failure)=0.01%, SLA=99% -> wall at "
          f"{analysis.wall_fanout} servers")
    print(f"success at the wall: {analysis.success_at_wall:.3%}; "
          f"at twice the wall: {analysis.success_at_twice_wall:.3%}\n")
    fanouts = [1, 25, 50, 100, 200, 400, 800]
    ascii_curve(fanouts, success_curve(fanouts, 1e-4), 0.99)

    print()
    print("=" * 70)
    print("Part 2: failure-probability sweep (Figure 2)")
    print("=" * 70)
    for p in (1e-5, 1e-4, 1e-3):
        planner = SlaPlanner(failure_probability=p, sla=0.99)
        print(f"p={p:g}: wall at {planner.max_safe_fanout} servers; "
              f"8-partition table headroom: {planner.headroom(8)}")
    print("\ninverse question: to run a 10,000-node full fan-out at 99%, "
          f"servers must fail with p < "
          f"{required_failure_probability(10_000, 0.99):.2e} — "
          "four nines of instantaneous availability per host")

    print()
    print("=" * 70)
    print("Part 3: the fan-out experiment, live (Figure 5)")
    print("=" * 70)
    model = LogNormalTailLatency(
        base=0.002, median=0.010, sigma=0.35,
        hiccups=HiccupModel(probability=1e-3, min_delay=0.1, max_delay=1.5),
    )
    deployment = CubrickDeployment(
        DeploymentConfig(seed=9, regions=2, racks_per_region=2,
                         hosts_per_rack=4),
        latency_model=model,
    )
    result = run_fanout_experiment(
        deployment, [1, 4, 8], queries_per_table=300, rows_per_table=64
    )
    print(f"{'fanout':>7} {'p50 (ms)':>10} {'p99 (ms)':>10} {'p99.9 (ms)':>11}")
    for row in result.rows:
        print(f"{row.fanout:>7} {row.p50 * 1e3:>10.1f} "
              f"{row.p99 * 1e3:>10.1f} {row.p999 * 1e3:>11.1f}")
    print("\nhigher fan-out samples the latency tail more often — medians "
          "barely move, p99+ explodes. Partial sharding keeps fan-out (and "
          "therefore the tail exposure) constant as the cluster grows.")


if __name__ == "__main__":
    main()
