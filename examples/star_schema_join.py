"""Star-schema analytics: distributed facts × replicated dimensions.

Interactive analytic DBMSs replicate small, frequently-joined dimension
tables to every node so joins with large distributed fact tables never
cross the network (paper §II-B). This example builds a star schema —
a sharded ``sales`` fact table joined to a replicated ``dim_stores``
table — runs top-k join queries through the proxy, and then scales the
cluster out on the fly (paper §II-C's cluster-resize question) while
queries keep flowing.

Run:  python examples/star_schema_join.py
"""

import numpy as np

from repro import CubrickDeployment, DeploymentConfig
from repro.cubrick import (
    AggFunc,
    Aggregation,
    Dimension,
    Filter,
    Join,
    Metric,
    Query,
    TableSchema,
)

STORES = 50
REGIONS_DIM = 4  # geographic regions in the dimension table
FACT_ROWS = 30_000


def main() -> None:
    deployment = CubrickDeployment(
        DeploymentConfig(seed=21, regions=2, racks_per_region=2,
                         hosts_per_rack=4)
    )

    fact = TableSchema.build(
        "sales",
        dimensions=[
            Dimension("store_id", STORES),
            Dimension("day", 30, range_size=7),
        ],
        metrics=[Metric("amount")],
    )
    dim = TableSchema.build(
        "dim_stores",
        dimensions=[
            Dimension("store_id", STORES),
            Dimension("geo", REGIONS_DIM),
            Dimension("tier", 3),
        ],
        metrics=[],
    )
    deployment.create_table(fact)
    deployment.create_table(dim, replicated=True)
    print(f"sales: {deployment.catalog.get('sales').num_partitions} "
          f"partitions (sharded); dim_stores: replicated to all "
          f"{len(deployment.cluster)} nodes")

    rng = np.random.default_rng(3)
    deployment.load(
        "dim_stores",
        [{"store_id": s, "geo": int(rng.integers(REGIONS_DIM)),
          "tier": int(rng.integers(3))} for s in range(STORES)],
    )
    deployment.load(
        "sales",
        [{"store_id": int(rng.integers(STORES)),
          "day": int(rng.integers(30)),
          "amount": float(rng.exponential(40.0))}
         for __ in range(FACT_ROWS)],
    )
    deployment.simulator.run_until(30.0)
    join = Join(table="dim_stores", fact_key="store_id", dim_key="store_id")

    print("\nrevenue by geographic region (join resolved locally on every "
          "node):")
    by_geo = deployment.query(
        Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount"),
             Aggregation(AggFunc.COUNT, "amount")],
            group_by=["dim_stores.geo"],
            joins=[join],
            order_by="sum(amount)",
        )
    )
    for geo, revenue, orders in by_geo.rows:
        print(f"  geo {int(geo)}: {revenue:>12,.0f} ({orders:,.0f} orders)")

    print("\ntop-5 premium-tier stores by revenue, last week:")
    top = deployment.query(
        Query.build(
            "sales",
            [Aggregation(AggFunc.SUM, "amount")],
            group_by=["store_id"],
            filters=[Filter.eq("dim_stores.tier", 2),
                     Filter.between("day", 23, 29)],
            joins=[join],
            order_by="sum(amount)",
            limit=5,
        )
    )
    for store, revenue in top.rows:
        print(f"  store {int(store):>3}: {revenue:>10,.0f}")
    print(f"  (latency {top.metadata['latency'] * 1e3:.1f} ms, fan-out "
          f"{top.metadata['fanout']} hosts)")

    print("\nscaling out region0 by 4 hosts (fan-out must not change)...")
    fanout_before = deployment.table_fanout("sales")
    added = deployment.add_hosts("region0", 4)
    sm = deployment.sm_servers["region0"]
    sm.collect_metrics()
    sm.run_load_balance()
    deployment.simulator.run_until(deployment.simulator.now + 60.0)
    print(f"  added {len(added)} hosts; "
          f"fan-out before={fanout_before}, after="
          f"{deployment.table_fanout('sales')}")

    check = deployment.query(
        Query.build("sales", [Aggregation(AggFunc.COUNT, "amount")])
    )
    print(f"  post-resize query: {check.scalar():,.0f} rows "
          f"(expected {FACT_ROWS:,}) via {check.metadata['region']}")

    summary = deployment.summary()
    print(f"\nfleet summary: {summary['hosts']['total']} hosts, "
          f"{len(summary['tables'])} tables, proxy success "
          f"{summary['proxy']['success_ratio']:.0%}")


if __name__ == "__main__":
    main()
