"""repro — reproduction of "Interactive Analytic DBMSs: Breaching the
Scalability Wall" (Pedreira et al., ICDE 2021).

The package implements the paper's entire stack from scratch:

* :mod:`repro.core` — the scalability-wall model, fan-out policy and the
  :class:`~repro.core.CubrickDeployment` facade (start here);
* :mod:`repro.cubrick` — the Cubrick in-memory analytic DBMS;
* :mod:`repro.shardmanager` — the Shard Manager framework (SM);
* :mod:`repro.smc` — service discovery with propagation delays;
* :mod:`repro.cluster` — hosts/racks/regions + datacenter automation;
* :mod:`repro.sim` — the deterministic discrete-event substrate;
* :mod:`repro.workloads` — workload and experiment generators.

Quickstart::

    from repro import CubrickDeployment, DeploymentConfig
    from repro.cubrick import Dimension, Metric, TableSchema, Query, \\
        Aggregation, AggFunc, Filter

    deployment = CubrickDeployment(DeploymentConfig(seed=42))
    schema = TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30), Dimension("country", 100)],
        metrics=[Metric("clicks")],
    )
    deployment.create_table(schema)
    deployment.load("events", [
        {"day": 1, "country": 5, "clicks": 10.0},
        {"day": 2, "country": 7, "clicks": 3.0},
    ])
    result = deployment.query(Query.build(
        "events", [Aggregation(AggFunc.SUM, "clicks")],
        filters=[Filter.between("day", 1, 7)],
    ))
    print(result.rows)
"""

from repro.core import (
    CubrickDeployment,
    DeploymentConfig,
    FanoutPolicy,
    ShardingMode,
    SlaPlanner,
    WallAnalysis,
    query_success_ratio,
    scalability_wall,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CubrickDeployment",
    "DeploymentConfig",
    "FanoutPolicy",
    "ShardingMode",
    "SlaPlanner",
    "WallAnalysis",
    "query_success_ratio",
    "scalability_wall",
    "ReproError",
    "__version__",
]
