"""Elastic control plane: autoscaling, online resharding, wall breach.

The paper's central finding is that an interactive DBMS hits a
*scalability wall*: with per-host mid-query failure probability ``p``
and a success SLA ``s``, no query may fan out to more than
``ln(s)/ln(1-p)`` hosts (repro.core.wall). Partial sharding decouples a
table's fan-out from fleet size — which means the fleet can grow (and
shrink) freely *as long as something keeps every table's sharding
degree on the safe side of the wall while still tracking load*.

This package is that something:

- :class:`FleetController` (fleet.py) provisions hosts through a staged
  warm-up → SM-registration pipeline and decommissions them through an
  SM-coordinated drain (every replica evacuated before deregistration).
- :class:`ReshardPlanner` (reshard.py) changes a table's partial-
  sharding degree online: a staged copy under a generation-tagged
  physical alias, verified, then atomically cut over — queries keep
  answering correctly mid-reshard.
- :class:`WallBreachController` (controller.py) closes the loop: it
  reads observability signals (full-fan-out success ratio vs the SLA,
  host utilization, scheduler queue pressure) and actuates the two
  above, capping every table's fan-out at the wall.
- :func:`run_autoscale_experiment` (demo.py) reproduces the breach: a
  managed partially-sharded deployment rides a growth ramp while
  holding the SLA; a naive full-sharding baseline on the same ramp
  collapses.
"""

from repro.autoscale.controller import (
    ControlDecision,
    ControllerSpec,
    WallBreachController,
)
from repro.autoscale.demo import AutoscaleReport, run_autoscale_experiment
from repro.autoscale.fleet import FleetController, FleetSpec, ProvisionState
from repro.autoscale.reshard import (
    ReshardOperation,
    ReshardPlanner,
    ReshardSpec,
    ReshardState,
)

__all__ = [
    "AutoscaleReport",
    "ControlDecision",
    "ControllerSpec",
    "FleetController",
    "FleetSpec",
    "ProvisionState",
    "ReshardOperation",
    "ReshardPlanner",
    "ReshardSpec",
    "ReshardState",
    "WallBreachController",
    "run_autoscale_experiment",
]
