"""The wall-breach controller: a closed loop that scales past the wall.

The scalability wall (repro.core.wall) says a query fanning out to
``n`` hosts succeeds with probability ``(1-p)^n``: past
``n* = ln(sla)/ln(1-p)`` hosts the SLA is arithmetically unreachable,
no matter how much hardware is added. *Breaching* the wall therefore
takes two coupled actuators, not one:

- **fleet size** tracks load (provision on high utilization or queue
  pressure, decommission on sustained idleness), and
- **per-table fan-out** stays capped at the wall regardless of fleet
  size — partial sharding is what makes the two independently
  controllable.

The controller closes the loop on three observability signals each
tick: the measured full-fan-out success ratio over a sliding window of
proxied queries (vs the SLA), mean registered-host utilization from the
shard-manager metrics store, and scheduler queue pressure from the
workload manager (when one is attached). The fan-out cap is primarily
analytic (``SlaPlanner.max_safe_fanout``) but *adaptive*: a measured
SLA miss tightens it below the analytic value, and sustained compliance
relaxes it back — so a mis-estimated failure probability degrades to a
conservative cap instead of a broken SLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.host import HostState
from repro.core.fanout import SlaPlanner
from repro.core.wall import PAPER_FAILURE_PROBABILITY, PAPER_SLA
from repro.errors import ConfigurationError

from repro.autoscale.fleet import FleetController
from repro.autoscale.reshard import ReshardPlanner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import CubrickDeployment


@dataclass(frozen=True)
class ControllerSpec:
    """Targets and thresholds for the control loop."""

    sla: float = PAPER_SLA
    failure_probability: float = PAPER_FAILURE_PROBABILITY
    interval: float = 30.0  # control tick period
    success_window: int = 200  # queries in the sliding success window
    min_window_samples: int = 20  # below this the signal is inconclusive
    scale_out_utilization: float = 0.70
    scale_in_utilization: float = 0.20
    queue_pressure_high: float = 0.80
    #: Error-budget burn rate (from the SLO engine) above which the
    #: fleet counts as overloaded and the fan-out cap must not relax.
    #: 2.0 = burning budget twice as fast as it accrues.
    burn_rate_high: float = 2.0
    hosts_per_step: int = 2
    min_hosts_per_region: int = 4
    cooldown: float = 120.0  # between fleet actions in one direction

    def __post_init__(self) -> None:
        if not 0 < self.sla < 1:
            raise ConfigurationError(f"sla must be in (0, 1): {self.sla}")
        if self.interval <= 0:
            raise ConfigurationError(
                f"interval must be positive: {self.interval}"
            )
        if self.hosts_per_step <= 0:
            raise ConfigurationError(
                f"hosts_per_step must be positive: {self.hosts_per_step}"
            )
        if self.scale_in_utilization >= self.scale_out_utilization:
            raise ConfigurationError(
                "scale_in_utilization must be below scale_out_utilization"
            )


@dataclass
class ControlDecision:
    """One control tick: the signals read and the actions taken."""

    time: float
    success_ratio: float
    utilization: float
    queue_pressure: float
    fanout_cap: int
    actions: list[str] = field(default_factory=list)
    burn_rate: float = 0.0


@dataclass
class WallBreachController:
    """Closed loop coupling fleet elasticity with fan-out capping."""

    deployment: "CubrickDeployment"
    fleet: FleetController
    reshard: ReshardPlanner
    spec: ControllerSpec = field(default_factory=ControllerSpec)
    # Optional queue-pressure signal, e.g. WorkloadManager.queue_pressure.
    queue_pressure_fn: Optional[Callable[[], float]] = None
    # Optional error-budget burn signal, e.g. SloEngine.burn_rate_signal:
    # sustained burn counts as overload and blocks cap relaxation.
    burn_rate_fn: Optional[Callable[[], float]] = None

    def __post_init__(self) -> None:
        self.planner = SlaPlanner(
            failure_probability=self.spec.failure_probability, sla=self.spec.sla
        )
        self.decisions: list[ControlDecision] = []
        # The adaptive cap starts at the analytic wall and is tightened
        # by measured SLA misses (never above the analytic value).
        self._cap = max(1, self.planner.max_safe_fanout)
        self._last_scale_out = float("-inf")
        self._last_scale_in = float("-inf")
        self._last_cap_change = float("-inf")
        self._cancel: Optional[Callable[[], None]] = None
        obs = self.deployment.obs
        self._ticks_counter = obs.metrics.counter("autoscale.controller.ticks")
        self._cap_gauge = obs.metrics.gauge("autoscale.controller.fanout_cap")
        self._cap_gauge.set(self._cap)

    # ------------------------------------------------------------------
    # Loop lifecycle
    # ------------------------------------------------------------------

    def start(self, *, until: Optional[float] = None) -> Callable[[], None]:
        """Begin periodic control ticks; returns a cancel function."""
        self._cancel = self.deployment.simulator.schedule_periodic(
            self.spec.interval, self.step, until=until
        )
        return self._cancel

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def windowed_success_ratio(self) -> float:
        """Success over the last ``success_window`` proxied queries.

        Returns 1.0 while the window holds too few samples to act on —
        an inconclusive signal must not trigger a tightening.
        """
        log = self.deployment.proxy.query_log
        if len(log) < self.spec.min_window_samples:
            return 1.0
        window = log[-self.spec.success_window:]
        return sum(1 for e in window if e.succeeded) / len(window)

    def mean_utilization(self) -> float:
        """Mean storage utilization across all registered hosts."""
        total = 0.0
        hosts = 0
        for sm in self.deployment.sm_servers.values():
            sm.collect_metrics()
            for host_id in sm.registered_hosts():
                total += sm.metrics.utilization(host_id)
                hosts += 1
        return total / hosts if hosts else 0.0

    def queue_pressure(self) -> float:
        if self.queue_pressure_fn is None:
            return 0.0
        return self.queue_pressure_fn()

    def burn_rate(self) -> float:
        if self.burn_rate_fn is None:
            return 0.0
        return self.burn_rate_fn()

    @property
    def fanout_cap(self) -> int:
        return self._cap

    # ------------------------------------------------------------------
    # The control tick
    # ------------------------------------------------------------------

    def step(self) -> ControlDecision:
        deployment = self.deployment
        now = deployment.simulator.now
        success = self.windowed_success_ratio()
        utilization = self.mean_utilization()
        pressure = self.queue_pressure()
        burn = self.burn_rate()
        actions: list[str] = []

        # 1. Adapt the fan-out cap to the measured success signal. Cap
        #    moves are rate-limited by the cooldown: the sliding window
        #    is sticky, and reacting to it every tick would let one bad
        #    stretch walk the cap (and every table's fan-out) to 1.
        analytic = max(1, self.planner.max_safe_fanout)
        hot_burn = burn > self.spec.burn_rate_high
        if now - self._last_cap_change >= self.spec.cooldown:
            # Budget burn tightens like an SLA miss — it is the leading
            # indicator of one — and blocks relaxation while sustained.
            if (success < self.spec.sla or hot_burn) and self._cap > 1:
                self._cap -= 1
                self._last_cap_change = now
                actions.append(f"tighten fan-out cap to {self._cap}")
            elif success >= self.spec.sla and not hot_burn and self._cap < analytic:
                self._cap += 1
                self._last_cap_change = now
                actions.append(f"relax fan-out cap to {self._cap}")
        self._cap_gauge.set(self._cap)

        # 2. Enforce the cap: narrow any table wider than it, and let
        #    load-driven widening proceed up to (never past) it.
        for table in deployment.catalog.table_names():
            info = deployment.catalog.tables[table]
            if info.replicated or info.resharding:
                continue
            if info.num_partitions > self._cap:
                self.reshard.begin(table, self._cap)
                actions.append(
                    f"narrow {table}: {info.num_partitions} -> {self._cap} "
                    "(over cap)"
                )
            else:
                op = self.reshard.evaluate(table, max_count=self._cap)
                if op is not None:
                    direction = "widen" if op.widened else "narrow"
                    actions.append(
                        f"{direction} {table}: {op.from_count} -> {op.to_count}"
                    )

        # 3. Fleet size tracks load.
        overloaded = (
            utilization > self.spec.scale_out_utilization
            or pressure > self.spec.queue_pressure_high
            or hot_burn
        )
        idle = (
            utilization < self.spec.scale_in_utilization
            and pressure < self.spec.queue_pressure_high
            and not hot_burn
        )
        if overloaded and now - self._last_scale_out >= self.spec.cooldown:
            for region in deployment.region_names():
                self.fleet.provision(region, self.spec.hosts_per_step)
                actions.append(
                    f"provision {self.spec.hosts_per_step} host(s) in {region}"
                )
            self._last_scale_out = now
        elif idle and now - self._last_scale_in >= self.spec.cooldown:
            for region in deployment.region_names():
                victim = self._scale_in_victim(region)
                if victim is not None:
                    self.fleet.decommission(victim)
                    actions.append(f"decommission {victim}")
            if any(a.startswith("decommission") for a in actions):
                self._last_scale_in = now

        decision = ControlDecision(
            time=now,
            success_ratio=success,
            utilization=utilization,
            queue_pressure=pressure,
            fanout_cap=self._cap,
            actions=actions,
            burn_rate=burn,
        )
        self.decisions.append(decision)
        self._ticks_counter.inc()
        if actions:
            deployment.obs.events.emit(
                "autoscale.controller.actions",
                success=round(success, 6),
                utilization=round(utilization, 6),
                pressure=round(pressure, 6),
                burn=round(burn, 6),
                cap=self._cap,
                actions="; ".join(actions),
            )
        return decision

    def _scale_in_victim(self, region: str) -> Optional[str]:
        """Pick the emptiest healthy host, respecting the region floor."""
        sm = self.deployment.sm_servers[region]
        registered = sm.registered_hosts()
        if len(registered) <= self.spec.min_hosts_per_region:
            return None
        draining = {
            op.host_id for op in self.fleet.pending()
            if op.kind == "decommission"
        }
        if len(registered) - len(draining) <= self.spec.min_hosts_per_region:
            return None
        candidates = [
            host_id for host_id in registered
            if host_id not in draining
            and self.deployment.cluster.host(host_id).state is HostState.HEALTHY
        ]
        if not candidates:
            return None
        # Emptiest first (cheapest drain); host id breaks ties so runs
        # are deterministic.
        return min(
            candidates,
            key=lambda h: (len(sm.shards_on_host(h)), h),
        )
