"""The wall-breach experiment: elastic control plane vs naive scaling.

Two deployments ride the same four-phase growth ramp (data volume and
query traffic both increase every phase), with the same per-host
mid-query failure probability:

- **managed** — partially sharded, run by the elastic control plane:
  the :class:`~repro.autoscale.WallBreachController` provisions hosts
  as utilization rises and lets the :class:`~repro.autoscale.ReshardPlanner`
  widen the table online (staged + verified + atomically cut over,
  under live traffic), with fan-out always capped at the wall.
- **baseline** — the naive *full sharding* design the paper warns
  about: every table spans every host, so each fleet growth step widens
  every query. Its per-query success is ``(1-p)^hosts`` — it starts
  SLA-compliant on a small fleet and arithmetically collapses as the
  fleet grows through the wall.

Both arms run single-region with a one-attempt retry budget, so the
measured success ratio *is* the full-fan-out success ratio — no
cross-region retry masks the wall. Reports are a pure function of the
seed: identical seeds render byte-identical text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.autoscale.controller import ControllerSpec, WallBreachController
from repro.autoscale.fleet import FleetController, FleetSpec
from repro.autoscale.reshard import ReshardPlanner, ReshardSpec, ReshardState
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.fanout import ShardingMode
from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import ConfigurationError, QueryFailedError

#: Per-host-visit mid-query failure probability for both arms.
FAILURE_PROBABILITY = 1e-3
#: The success SLA both arms are judged against.
SLA = 0.99
#: Hosts added to the fleet at each phase boundary.
BASELINE_HOSTS_PER_PHASE = 8


@dataclass
class PhaseStats:
    """One growth phase of one arm."""

    phase: int
    hosts: int  # SM-registered hosts when the phase ended
    partitions: int  # table fan-out when the phase ended
    queries: int
    succeeded: int

    @property
    def success_ratio(self) -> float:
        return self.succeeded / self.queries if self.queries else 1.0


@dataclass
class AutoscaleReport:
    """Deterministically renderable outcome of one wall-breach run."""

    seed: int
    sla: float
    failure_probability: float
    wall: int  # analytic max safe fan-out
    managed_phases: list[PhaseStats] = field(default_factory=list)
    baseline_phases: list[PhaseStats] = field(default_factory=list)
    managed_hosts_provisioned: int = 0
    managed_reshards: list[str] = field(default_factory=list)
    managed_fanout_cap: int = 0
    managed_control_actions: int = 0

    @property
    def managed_success(self) -> float:
        total = sum(p.queries for p in self.managed_phases)
        ok = sum(p.succeeded for p in self.managed_phases)
        return ok / total if total else 1.0

    @property
    def baseline_success(self) -> float:
        total = sum(p.queries for p in self.baseline_phases)
        ok = sum(p.succeeded for p in self.baseline_phases)
        return ok / total if total else 1.0

    @property
    def sla_met(self) -> bool:
        return self.managed_success >= self.sla

    @property
    def baseline_collapsed(self) -> bool:
        return self.baseline_success < self.sla

    def render(self) -> str:
        lines = [
            f"autoscale experiment: seed={self.seed}",
            f"  sla={self.sla:.2f} p={self.failure_probability:g} "
            f"wall={self.wall} hosts",
        ]
        for name, phases in (
            ("managed", self.managed_phases),
            ("baseline", self.baseline_phases),
        ):
            lines.append(f"  {name} (per phase):")
            for stats in phases:
                lines.append(
                    f"    phase {stats.phase}: hosts={stats.hosts:3d} "
                    f"fanout={stats.partitions:3d} "
                    f"success={stats.success_ratio:.4f} "
                    f"({stats.succeeded}/{stats.queries})"
                )
        lines.append(
            f"  managed: success={self.managed_success:.4f} "
            f"cap={self.managed_fanout_cap} "
            f"provisioned={self.managed_hosts_provisioned} "
            f"reshards=[{', '.join(self.managed_reshards)}] "
            f"actions={self.managed_control_actions}"
        )
        lines.append(f"  baseline: success={self.baseline_success:.4f}")
        managed_verdict = "SLA MET" if self.sla_met else "SLA MISSED"
        baseline_verdict = (
            "COLLAPSED" if self.baseline_collapsed else "survived"
        )
        lines.append(
            f"  verdict: managed {managed_verdict} at "
            f"{self.managed_success:.4f}; baseline {baseline_verdict} at "
            f"{self.baseline_success:.4f}"
        )
        return "\n".join(lines) + "\n"


_SCHEMA = TableSchema.build(
    "events",
    dimensions=[Dimension("day", 30, range_size=7)],
    metrics=[Metric("clicks")],
)


def _phase_rows(seed: int, phase: int, count: int) -> list[dict[str, float]]:
    """The phase's ingest batch — identical for both arms."""
    rng = np.random.default_rng((seed, phase))
    return [
        {"day": int(rng.integers(30)), "clicks": float(rng.integers(1, 100))}
        for __ in range(count)
    ]


def _build_deployment(seed: int, mode: ShardingMode) -> CubrickDeployment:
    # 8 hosts/region to start; tiny per-host memory so ingest volume
    # moves the utilization signal the controller watches.
    return CubrickDeployment(
        DeploymentConfig(
            seed=seed,
            regions=1,
            racks_per_region=4,
            hosts_per_rack=2,
            max_shards=10_000,
            mode=mode,
            partitioning=PartitioningPolicy(
                initial_partitions=2,
                max_rows_per_partition=1200,
                min_rows_per_partition=50,
                max_partitions=4,
            ),
            memory_bytes_per_host=1 << 20,
            query_failure_probability=FAILURE_PROBABILITY,
        )
    )


def _run_phase_traffic(
    deployment: CubrickDeployment,
    *,
    queries: int,
    duration: float,
) -> tuple[int, int]:
    """Submit ``queries`` evenly spaced over ``duration``; count outcomes."""
    query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
    outcomes = {"ok": 0, "failed": 0}
    spacing = duration / (queries + 1)

    def submit_one() -> None:
        try:
            deployment.proxy.submit(query)
        except QueryFailedError:
            outcomes["failed"] += 1
        else:
            outcomes["ok"] += 1

    start = deployment.simulator.now
    for i in range(queries):
        deployment.simulator.call_later((i + 1) * spacing, submit_one)
    deployment.simulator.run_until(start + duration)
    return outcomes["ok"], outcomes["ok"] + outcomes["failed"]


def _registered_hosts(deployment: CubrickDeployment) -> int:
    return min(
        len(sm.registered_hosts()) for sm in deployment.sm_servers.values()
    )


def _run_managed(
    seed: int, report: AutoscaleReport,
    *, phases: int, queries_per_phase: int, phase_duration: float,
    rows_per_phase: list[int],
) -> None:
    deployment = _build_deployment(seed, ShardingMode.PARTIAL)
    deployment.create_table(_SCHEMA, num_partitions=2)
    fleet = FleetController(
        deployment,
        FleetSpec(warmup_delay=20.0, register_stagger=5.0),
    )
    reshard = ReshardPlanner(
        deployment,
        ReshardSpec(verify_delay=10.0, cutover_delay=5.0, cleanup_grace=30.0),
    )
    controller = WallBreachController(
        deployment,
        fleet,
        reshard,
        ControllerSpec(
            sla=SLA,
            failure_probability=FAILURE_PROBABILITY,
            interval=15.0,
            # Per-host memory is 1 MiB, so these absolute storage
            # utilizations correspond to the ingest ramp's mid-point.
            scale_out_utilization=0.012,
            scale_in_utilization=0.001,
            hosts_per_step=2,
            min_hosts_per_region=8,
            cooldown=120.0,
        ),
    )
    total = phases * phase_duration
    for sm in deployment.sm_servers.values():
        sm.start(collect_interval=15.0, balance_interval=60.0, until=total)
    controller.start(until=total)

    for phase in range(phases):
        deployment.load("events", _phase_rows(seed, phase, rows_per_phase[phase]))
        ok, submitted = _run_phase_traffic(
            deployment, queries=queries_per_phase, duration=phase_duration
        )
        report.managed_phases.append(
            PhaseStats(
                phase=phase,
                hosts=_registered_hosts(deployment),
                partitions=deployment.catalog.get("events").num_partitions,
                queries=submitted,
                succeeded=ok,
            )
        )
    controller.stop()
    report.managed_hosts_provisioned = sum(
        1 for op in fleet.operations
        if op.kind == "provision" and op.state.value == "registered"
    )
    report.managed_reshards = [
        f"{op.from_count}->{op.to_count}"
        for op in reshard.operations
        if op.state is ReshardState.DONE
    ]
    report.managed_fanout_cap = controller.fanout_cap
    report.managed_control_actions = sum(
        1 for d in controller.decisions if d.actions
    )


def _run_baseline(
    seed: int, report: AutoscaleReport,
    *, phases: int, queries_per_phase: int, phase_duration: float,
    rows_per_phase: list[int],
) -> None:
    """Full sharding: the table spans the fleet, and grows with it."""
    deployment = _build_deployment(seed, ShardingMode.FULL)
    deployment.create_table(
        _SCHEMA, num_partitions=deployment.hosts_per_region
    )
    total = phases * phase_duration
    for sm in deployment.sm_servers.values():
        sm.start(collect_interval=15.0, balance_interval=60.0, until=total)

    for phase in range(phases):
        if phase > 0:
            # The fleet grows with traffic — and full sharding drags
            # every table's fan-out along with it.
            for region in deployment.region_names():
                deployment.add_hosts(region, BASELINE_HOSTS_PER_PHASE)
            deployment._repartition(
                "events", _registered_hosts(deployment)
            )
        deployment.load("events", _phase_rows(seed, phase, rows_per_phase[phase]))
        ok, submitted = _run_phase_traffic(
            deployment, queries=queries_per_phase, duration=phase_duration
        )
        report.baseline_phases.append(
            PhaseStats(
                phase=phase,
                hosts=_registered_hosts(deployment),
                partitions=deployment.catalog.get("events").num_partitions,
                queries=submitted,
                succeeded=ok,
            )
        )


def run_autoscale_experiment(
    seed: int = 0,
    *,
    phases: int = 4,
    queries_per_phase: int = 500,
    phase_duration: float = 500.0,
    rows_per_phase: Optional[list[int]] = None,
) -> AutoscaleReport:
    """Run both arms of the wall-breach experiment; return the report."""
    if phases <= 0:
        raise ConfigurationError(f"phases must be positive: {phases}")
    if queries_per_phase <= 0:
        raise ConfigurationError(
            f"queries_per_phase must be positive: {queries_per_phase}"
        )
    if rows_per_phase is None:
        rows_per_phase = [1500 * (phase + 1) for phase in range(phases)]
    if len(rows_per_phase) != phases:
        raise ConfigurationError(
            f"rows_per_phase needs {phases} entries: {rows_per_phase}"
        )
    from repro.core.wall import scalability_wall

    report = AutoscaleReport(
        seed=seed,
        sla=SLA,
        failure_probability=FAILURE_PROBABILITY,
        wall=scalability_wall(FAILURE_PROBABILITY, SLA),
    )
    _run_managed(
        seed, report,
        phases=phases, queries_per_phase=queries_per_phase,
        phase_duration=phase_duration, rows_per_phase=rows_per_phase,
    )
    _run_baseline(
        seed, report,
        phases=phases, queries_per_phase=queries_per_phase,
        phase_duration=phase_duration, rows_per_phase=rows_per_phase,
    )
    return report
