"""Fleet elasticity: staged provisioning and drain-first decommission.

Scaling the fleet is only safe because partial sharding makes fan-out
independent of fleet size (paper §II-C): a new host widens no query,
and a removed host narrows none — provided its replicas are moved, not
lost. The controller therefore treats both directions as *staged*
operations driven by the discrete-event simulator:

Provision (scale-out)::

    add host (empty, unregistered) --warm-up delay--> register with SM
                                                      (staggered)

  During warm-up the host exists in the cluster topology but reports no
  capacity: SM placement, balancing and the discovery map all ignore it,
  so a crash mid-provision is invisible to every invariant.

Decommission (scale-in)::

    start_drain --> SM drain (evacuate every replica, retried)
                --> deregister (graceful session close, no failover storm)
                --> finish_drain --> decommissioned

  Deregistration is refused by the SM while the host still holds any
  shard, so the *evacuate-before-deregister* ordering is enforced at the
  server, not just here. A host that fails mid-drain falls back to the
  normal failure path: its session expires and the SM fails over
  whatever was left, after which the decommission is abandoned.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cluster.host import HostState
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import CubrickDeployment


class ProvisionState(enum.Enum):
    """Lifecycle of one staged host operation."""

    WARMING_UP = "warming_up"
    REGISTERED = "registered"
    DRAINING = "draining"
    DECOMMISSIONED = "decommissioned"
    ABORTED = "aborted"


@dataclass(frozen=True)
class FleetSpec:
    """Timing knobs for staged fleet operations."""

    warmup_delay: float = 30.0  # provision -> first possible registration
    register_stagger: float = 5.0  # spacing between registrations in a batch
    drain_retry_interval: float = 15.0  # between drain passes
    drain_max_attempts: int = 8  # drain passes before giving up
    decommission_grace: float = 5.0  # drained -> removed from the fleet

    def __post_init__(self) -> None:
        if self.warmup_delay < 0 or self.register_stagger < 0:
            raise ConfigurationError("warm-up timings must be non-negative")
        if self.drain_retry_interval <= 0:
            raise ConfigurationError(
                f"drain_retry_interval must be positive: "
                f"{self.drain_retry_interval}"
            )
        if self.drain_max_attempts <= 0:
            raise ConfigurationError(
                f"drain_max_attempts must be positive: {self.drain_max_attempts}"
            )


@dataclass
class FleetOperation:
    """Progress record for one provision or decommission."""

    host_id: str
    kind: str  # "provision" | "decommission"
    started: float
    state: ProvisionState
    finished: Optional[float] = None
    drain_attempts: int = 0
    shards_moved: int = 0
    note: str = ""


@dataclass
class FleetController:
    """Provisions and decommissions hosts through staged pipelines."""

    deployment: "CubrickDeployment"
    spec: FleetSpec = field(default_factory=FleetSpec)

    def __post_init__(self) -> None:
        self.operations: list[FleetOperation] = []
        obs = self.deployment.obs
        self._provisioned_counter = obs.metrics.counter(
            "autoscale.fleet.hosts_provisioned"
        )
        self._decommissioned_counter = obs.metrics.counter(
            "autoscale.fleet.hosts_decommissioned"
        )
        self._aborted_counter = obs.metrics.counter(
            "autoscale.fleet.operations_aborted"
        )

    # ------------------------------------------------------------------
    # Scale-out
    # ------------------------------------------------------------------

    def provision(self, region: str, count: int,
                  *, rack: str = "rack-auto") -> list[str]:
        """Add ``count`` hosts to ``region``; register them after warm-up.

        Returns the new host ids immediately; each host joins the SM
        only once its (staggered) warm-up completes.
        """
        sim = self.deployment.simulator
        host_ids = self.deployment.add_hosts(
            region, count, rack=rack, register=False
        )
        for i, host_id in enumerate(host_ids):
            op = FleetOperation(
                host_id=host_id,
                kind="provision",
                started=sim.now,
                state=ProvisionState.WARMING_UP,
            )
            self.operations.append(op)
            delay = self.spec.warmup_delay + i * self.spec.register_stagger
            sim.call_later(
                delay, lambda o=op: self._finish_provision(o))
            self.deployment.obs.events.emit(
                "autoscale.fleet.provision_started",
                host=host_id, region=region, ready_at=sim.now + delay,
            )
        return host_ids

    def _finish_provision(self, op: FleetOperation) -> None:
        host = self.deployment.cluster.host(op.host_id)
        if host.state is not HostState.HEALTHY:
            # Crashed (or was failed by chaos) during warm-up: it never
            # registered, so nothing holds state about it. Abandon; the
            # normal repair pipeline will bring it back as a fresh host.
            self._abort(op, f"host state {host.state.value} at registration")
            return
        self.deployment.complete_host_registration(op.host_id)
        op.state = ProvisionState.REGISTERED
        op.finished = self.deployment.simulator.now
        self._provisioned_counter.inc()
        self.deployment.obs.events.emit(
            "autoscale.fleet.host_registered",
            host=op.host_id, region=host.region,
        )

    # ------------------------------------------------------------------
    # Scale-in
    # ------------------------------------------------------------------

    def decommission(self, host_id: str) -> FleetOperation:
        """Begin an SM-coordinated drain-then-remove for ``host_id``."""
        host = self.deployment.cluster.host(host_id)
        if host.state is not HostState.HEALTHY:
            raise ConfigurationError(
                f"cannot decommission {host_id}: state {host.state.value}"
            )
        sim = self.deployment.simulator
        op = FleetOperation(
            host_id=host_id,
            kind="decommission",
            started=sim.now,
            state=ProvisionState.DRAINING,
        )
        self.operations.append(op)
        # DRAINING keeps the host serving (is_available) but stops new
        # placements (accepts_new_shards is False), so the evacuation
        # only ever shrinks its shard set.
        host.start_drain()
        self.deployment.obs.events.emit(
            "autoscale.fleet.decommission_started",
            host=host_id, region=host.region,
        )
        self._drain_step(op)
        return op

    def _drain_step(self, op: FleetOperation) -> None:
        host = self.deployment.cluster.host(op.host_id)
        if host.state is not HostState.DRAINING:
            # The host failed mid-drain. Its session expiry already
            # triggered SM failover for whatever was still on it; the
            # decommission itself is abandoned.
            self._abort(op, f"host state {host.state.value} mid-drain")
            return
        sm = self.deployment.sm_servers[host.region]
        if op.host_id not in sm.registered_hosts():
            # Session expired (e.g. chaos forced it) while DRAINING:
            # failover has re-homed its shards already.
            self._abort(op, "session expired mid-drain")
            return
        op.drain_attempts += 1
        op.shards_moved += sm.drain_host(op.host_id)
        remaining = sm.shards_on_host(op.host_id)
        if remaining:
            if op.drain_attempts >= self.spec.drain_max_attempts:
                # Could not evacuate (e.g. no collision-free target).
                # Never deregister a host that still holds replicas:
                # return it to service instead of losing copies.
                host.recover()
                self._abort(
                    op,
                    f"{len(remaining)} shard(s) undrainable after "
                    f"{op.drain_attempts} attempts",
                )
                return
            self.deployment.simulator.call_later(
                self.spec.drain_retry_interval,
                lambda: self._drain_step(op))
            return
        # Empty: the SM will now accept a graceful deregistration (it
        # refuses while any shard remains), which closes the session
        # without firing the failover watchers.
        sm.deregister_host(op.host_id)
        host.finish_drain()
        self.deployment.simulator.call_later(
            self.spec.decommission_grace,
            lambda: self._finalize_decommission(op))

    def _finalize_decommission(self, op: FleetOperation) -> None:
        host = self.deployment.cluster.host(op.host_id)
        if host.state is not HostState.DRAINED:
            self._abort(op, f"host state {host.state.value} at removal")
            return
        host.decommission()
        injector = self.deployment._failure_injector
        if injector is not None:
            injector.untrack(op.host_id)
        op.state = ProvisionState.DECOMMISSIONED
        op.finished = self.deployment.simulator.now
        self._decommissioned_counter.inc()
        self.deployment.obs.events.emit(
            "autoscale.fleet.host_decommissioned",
            host=op.host_id, region=host.region,
            shards_moved=op.shards_moved,
        )

    # ------------------------------------------------------------------
    # Shared
    # ------------------------------------------------------------------

    def _abort(self, op: FleetOperation, note: str) -> None:
        op.state = ProvisionState.ABORTED
        op.finished = self.deployment.simulator.now
        op.note = note
        self._aborted_counter.inc()
        self.deployment.obs.events.emit(
            "autoscale.fleet.operation_aborted",
            host=op.host_id, operation=op.kind, reason=note,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending(self) -> list[FleetOperation]:
        """Operations still in flight."""
        return [
            op for op in self.operations
            if op.state in (ProvisionState.WARMING_UP, ProvisionState.DRAINING)
        ]

    def registered_hosts(self, region: str) -> int:
        return len(self.deployment.sm_servers[region].registered_hosts())
