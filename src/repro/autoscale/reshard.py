"""Online resharding: change a table's sharding degree without downtime.

``CubrickDeployment._repartition`` is a *stop-the-world* shuffle: it
tears the old layout down before building the new one, so a query
arriving mid-shuffle would find the table gone. That is fine for an
experiment harness, but an elastic control plane reshards *live* tables
under query traffic. This planner runs the same data shuffle as a
staged, generation-tagged state machine instead::

    STAGING   register ``table@gN`` alias, materialise shards in every
              region, copy a snapshot of the serving layout into it
              (one atomic simulator event); from the same instant every
              ingest path dual-writes both layouts.
    VERIFY    per-region row totals of the staged layout must match the
              serving layout; a mismatch aborts (staged layout is torn
              down, serving layout untouched).
    CUTOVER   one atomic catalog flip: ``serving_physical``,
              ``num_partitions`` and ``generation`` change together.
              Queries routed before the flip keep using the old layout
              (still fully intact); queries after it use the new one —
              both answer correctly, which is the mid-reshard
              correctness guarantee.
    CLEANUP   after a grace period (straggling in-flight queries), the
              old physical layout is unregistered and detached.

The planner also *decides*: ``evaluate()`` widens a table when its
hottest partition crosses the row threshold (and host capacity allows),
narrows it when utilization sags — the same thresholds as
``PartitioningPolicy``, now applied online.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cubrick.partitioning import PartitioningPolicy, plan_repartition
from repro.cubrick.sharding import generation_alias
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import CubrickDeployment


class ReshardState(enum.Enum):
    STAGING = "staging"
    VERIFYING = "verifying"
    CUT_OVER = "cut_over"
    DONE = "done"
    ABORTED = "aborted"


@dataclass(frozen=True)
class ReshardSpec:
    """Timing knobs for the staged reshard pipeline."""

    verify_delay: float = 10.0  # staging -> verification
    verify_max_attempts: int = 3  # retries when a region is unreadable
    cutover_delay: float = 5.0  # verified -> catalog flip
    cleanup_grace: float = 30.0  # flip -> old layout teardown
    capacity_headroom: float = 0.75  # fraction of hosts a table may span

    def __post_init__(self) -> None:
        if self.verify_delay < 0 or self.cutover_delay < 0:
            raise ConfigurationError("reshard delays must be non-negative")
        if self.cleanup_grace < 0:
            raise ConfigurationError(
                f"cleanup_grace must be non-negative: {self.cleanup_grace}"
            )
        if not 0 < self.capacity_headroom <= 1:
            raise ConfigurationError(
                f"capacity_headroom must be in (0, 1]: {self.capacity_headroom}"
            )


@dataclass
class ReshardOperation:
    """Progress record for one online reshard."""

    table: str
    from_count: int
    to_count: int
    old_physical: str
    new_physical: str
    started: float
    state: ReshardState = ReshardState.STAGING
    finished: Optional[float] = None
    rows_copied: int = 0
    verify_attempts: int = 0
    note: str = ""

    @property
    def widened(self) -> bool:
        return self.to_count > self.from_count


@dataclass
class ReshardPlanner:
    """Adjusts tables' partial-sharding degree online."""

    deployment: "CubrickDeployment"
    spec: ReshardSpec = field(default_factory=ReshardSpec)
    policy: Optional[PartitioningPolicy] = None

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = self.deployment.config.partitioning
        self.operations: list[ReshardOperation] = []
        obs = self.deployment.obs
        self._started_counter = obs.metrics.counter("autoscale.reshard.started")
        self._done_counter = obs.metrics.counter("autoscale.reshard.completed")
        self._aborted_counter = obs.metrics.counter("autoscale.reshard.aborted")

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------

    def evaluate(self, table: str,
                 *, max_count: Optional[int] = None) -> Optional[ReshardOperation]:
        """Start a reshard if the policy thresholds demand one.

        Widening is bounded by host capacity (every partition needs a
        collision-free host in every region) exactly like the offline
        path; undersized fleets simply defer the widen. ``max_count``
        adds an external ceiling — the wall-breach controller passes
        its fan-out cap here so load-driven widening can never push a
        table past the scalability wall.
        """
        info = self.deployment.catalog.get(table)
        if info.replicated or info.resharding:
            return None
        counts = self.deployment._partition_row_counts(table)
        if not counts:
            return None
        new_count = self.policy.next_partition_count(
            info.num_partitions, max(counts), sum(counts)
        )
        if new_count > info.num_partitions:
            new_count = min(new_count, self._capacity_bound())
            if max_count is not None:
                new_count = min(new_count, max_count)
            if new_count <= info.num_partitions:
                return None
        if new_count == info.num_partitions or new_count <= 0:
            return None
        return self.begin(table, new_count)

    def _capacity_bound(self) -> int:
        capacity = min(
            sum(
                1
                for host in self.deployment.cluster.placeable_hosts(region)
                if host.host_id in sm.registered_hosts()
            )
            for region, sm in self.deployment.sm_servers.items()
        )
        return max(1, int(capacity * self.spec.capacity_headroom))

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def begin(self, table: str, new_count: int) -> ReshardOperation:
        """STAGING: build the next-generation layout alongside serving."""
        deployment = self.deployment
        info = deployment.catalog.get(table)
        if info.replicated:
            raise ConfigurationError(f"table {table} is replicated")
        if info.resharding:
            raise ConfigurationError(
                f"table {table} is already resharding to {info.pending_physical}"
            )
        if new_count <= 0:
            raise ConfigurationError(f"new_count must be positive: {new_count}")
        if new_count == info.num_partitions:
            raise ConfigurationError(
                f"table {table} already has {new_count} partitions"
            )
        sim = deployment.simulator
        old_physical = info.physical_table
        new_physical = generation_alias(table, info.generation + 1)
        op = ReshardOperation(
            table=table,
            from_count=info.num_partitions,
            to_count=new_count,
            old_physical=old_physical,
            new_physical=new_physical,
            started=sim.now,
        )
        self.operations.append(op)
        self._started_counter.inc()

        # Everything below happens inside one simulator event, so the
        # snapshot copy and the switch-on of dual-writes are atomic with
        # respect to loads and queries: no row can slip between them.
        new_shards = deployment.directory.register_table(new_physical, new_count)
        deployment._materialize_table(new_physical, new_shards)
        rows = self._collect_rows(info, old_physical)
        plan = plan_repartition(info.schema, rows, new_count)
        for sm in deployment.sm_servers.values():
            for index in range(new_count):
                partition_rows = plan.get(index, [])
                if not partition_rows:
                    continue
                owner = sm.discovery.resolve_authoritative(new_shards[index])
                node = sm.app_server(owner)
                node.insert_into_partition(new_physical, index, partition_rows)
        op.rows_copied = len(rows)
        info.pending_physical = new_physical
        info.pending_partitions = new_count

        # The staged shards landed wherever placement chose; spread them
        # through the live migration engine before traffic cuts over.
        for sm in deployment.sm_servers.values():
            sm.collect_metrics()
            sm.run_load_balance()

        deployment.obs.events.emit(
            "autoscale.reshard.staged",
            table=table, physical=new_physical,
            from_partitions=op.from_count, to_partitions=op.to_count,
            rows=op.rows_copied,
        )
        op.state = ReshardState.VERIFYING
        sim.call_later(self.spec.verify_delay, lambda: self._verify(op))
        return op

    def _collect_rows(self, info, physical: str) -> list[dict[str, float]]:
        sm = next(iter(self.deployment.sm_servers.values()))
        shards = self.deployment.directory.shards_for_table(physical)
        rows: list[dict[str, float]] = []
        for index in range(info.num_partitions):
            owner = sm.discovery.resolve_authoritative(shards[index])
            node = sm.app_server(owner)
            rows.extend(node.partition(physical, index).all_rows())
        return rows

    def _verify(self, op: ReshardOperation) -> None:
        """VERIFY: staged layout must agree with serving, per region."""
        deployment = self.deployment
        if op.table not in deployment.catalog:
            self._abort(op, "table dropped mid-reshard", teardown=False)
            return
        info = deployment.catalog.get(op.table)
        op.verify_attempts += 1
        for region, sm in deployment.sm_servers.items():
            serving = self._region_rows(sm, op.old_physical, op.from_count)
            staged = self._region_rows(sm, op.new_physical, op.to_count)
            if serving is None or staged is None:
                # A replica owner is unreachable (failover in flight):
                # inconclusive, not wrong. Retry a bounded number of
                # times before giving up.
                if op.verify_attempts < self.spec.verify_max_attempts:
                    deployment.simulator.call_later(
                        self.spec.verify_delay, lambda: self._verify(op)
                    )
                else:
                    self._abort(op, f"region {region} unreadable during verify")
                return
            if serving != staged:
                self._abort(
                    op,
                    f"row mismatch in {region}: serving={serving} "
                    f"staged={staged}",
                )
                return
        deployment.obs.events.emit(
            "autoscale.reshard.verified",
            table=op.table, physical=op.new_physical,
            attempts=op.verify_attempts,
        )
        deployment.simulator.call_later(
            self.spec.cutover_delay, lambda: self._cutover(op)
        )
        del info  # catalog entry re-read at cutover time

    def _region_rows(self, sm, physical: str, count: int) -> Optional[int]:
        shards = self.deployment.directory.shards_for_table(physical)
        total = 0
        for index in range(count):
            owner = sm.discovery.resolve_authoritative(shards[index])
            if owner is None or owner not in sm.registered_hosts():
                return None
            node = sm.app_server(owner)
            if not node.has_partition(physical, index):
                return None
            total += node.partition(physical, index).rows
        return total

    def _cutover(self, op: ReshardOperation) -> None:
        """CUTOVER: one atomic catalog flip to the staged layout."""
        deployment = self.deployment
        if op.table not in deployment.catalog:
            self._abort(op, "table dropped mid-reshard", teardown=False)
            return
        info = deployment.catalog.get(op.table)
        if info.pending_physical != op.new_physical:
            self._abort(op, "pending layout changed under the operation")
            return
        info.serving_physical = op.new_physical
        info.num_partitions = op.to_count
        info.generation += 1
        info.pending_physical = ""
        info.pending_partitions = 0
        # Refresh the proxy's cached partition count immediately; the
        # generation tag makes straggling old-layout results harmless.
        deployment.proxy.locator.observe_result(
            op.table, op.to_count, info.generation
        )
        op.state = ReshardState.CUT_OVER
        deployment.obs.events.emit(
            "autoscale.reshard.cut_over",
            table=op.table, physical=op.new_physical,
            partitions=op.to_count, generation=info.generation,
        )
        deployment.simulator.call_later(
            self.spec.cleanup_grace, lambda: self._cleanup(op)
        )

    def _cleanup(self, op: ReshardOperation) -> None:
        """CLEANUP: tear down the old physical layout."""
        deployment = self.deployment
        self._teardown_layout(op.old_physical)
        op.state = ReshardState.DONE
        op.finished = deployment.simulator.now
        self._done_counter.inc()
        deployment.obs.events.emit(
            "autoscale.reshard.completed",
            table=op.table, physical=op.new_physical,
            partitions=op.to_count,
        )

    def _abort(self, op: ReshardOperation, note: str,
               *, teardown: bool = True) -> None:
        deployment = self.deployment
        if teardown and op.table in deployment.catalog:
            info = deployment.catalog.get(op.table)
            if info.pending_physical == op.new_physical:
                info.pending_physical = ""
                info.pending_partitions = 0
            self._teardown_layout(op.new_physical)
        op.state = ReshardState.ABORTED
        op.finished = deployment.simulator.now
        op.note = note
        self._aborted_counter.inc()
        deployment.obs.events.emit(
            "autoscale.reshard.aborted", table=op.table, reason=note
        )

    def _teardown_layout(self, physical: str) -> None:
        deployment = self.deployment
        try:
            shards = deployment.directory.shards_for_table(physical)
        except Exception:
            return
        deployment.directory.unregister_table(physical)
        deployment._detach_table(physical, shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def active(self) -> list[ReshardOperation]:
        return [
            op for op in self.operations
            if op.state in (
                ReshardState.STAGING,
                ReshardState.VERIFYING,
                ReshardState.CUT_OVER,
            )
        ]
