"""repro.chaos — deterministic fault injection and unified resilience.

The paper's scalability wall is fundamentally a *resilience* phenomenon:
query success ratio under full fan-out collapses as per-host failures
compound (§II-A). This package provides the machinery to study — and
defend — those recovery paths reproducibly:

* :mod:`repro.chaos.policies` — one resilience-policy layer (retry
  budgets, deterministic exponential backoff, per-hop timeouts, hedged
  requests, graceful degradation) shared by the Cubrick proxy, the
  region coordinator, the SM client, the migration engine and SM server.
* :mod:`repro.chaos.faults` — a declarative, DES-clock-driven
  :class:`FaultSchedule` plus the :class:`ChaosInjector` that applies it
  (host crash/hang, slow disk, tail amplification, region partition,
  datastore session expiry, SM failover republish, interrupted
  migrations), emitting every fault through the shared EventLog.
* :mod:`repro.chaos.invariants` — the :class:`InvariantChecker` that
  validates system-wide safety (single primary, discovery/SM/datastore
  agreement) after every chaos event and convergence once faults clear.
* :mod:`repro.chaos.scenarios` — named, seeded chaos scenarios and the
  ``repro chaos`` CLI runner producing byte-reproducible reports.
"""

from repro.chaos.faults import ChaosInjector, FaultKind, FaultSchedule, FaultSpec
from repro.chaos.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
)
from repro.chaos.policies import (
    DegradationPolicy,
    HedgePolicy,
    ResiliencePolicy,
    RetryPolicy,
    RetryStats,
    TimeoutPolicy,
    call_with_retries,
)
from repro.chaos.scenarios import (
    ChaosReport,
    ProbeRecord,
    list_scenarios,
    run_scenario,
)

__all__ = [
    "ChaosInjector",
    "ChaosReport",
    "DegradationPolicy",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "HedgePolicy",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "ProbeRecord",
    "ResiliencePolicy",
    "RetryPolicy",
    "RetryStats",
    "TimeoutPolicy",
    "call_with_retries",
    "list_scenarios",
    "run_scenario",
]
