"""Declarative, DES-clock-driven fault injection.

A :class:`FaultSchedule` is a plain list of :class:`FaultSpec` entries —
*what* goes wrong, *where*, *when*, and for *how long* — with no code
attached, so schedules can be built by scenarios, property-based tests
or hand-written experiments and replayed byte-identically. The
:class:`ChaosInjector` binds a schedule to a live
:class:`~repro.core.deployment.CubrickDeployment`: each fault becomes a
simulator event, every application and clearance is emitted through the
shared EventLog, and latency-shaped faults (slow disk, tail
amplification, hangs) are realised through the region coordinators'
``service_time_hook`` so they compose with the normal latency model.

Fault taxonomy (matching the paper's failure discussion and the
LinkedIn OLAP-resilience fault classes):

=====================  =============================================
``HOST_CRASH``         host down (transient or permanent) for a while
``HOST_HANG``          host up but unresponsive (adds a huge delay)
``SLOW_DISK``          one host's service times multiplied
``TAIL_AMPLIFY``       a whole region's service times multiplied
``NETWORK_PARTITION``  a region unreachable from the proxy tier
``SESSION_EXPIRY``     datastore session lost while the host is healthy
``SM_FAILOVER``        SM server instance replaced; republish storm
``MIGRATION_INTERRUPT``live migration whose target dies mid-protocol
``QUERY_STORM``        a traffic burst against one table's front door
=====================  =============================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.errors import (
    AdmissionControlError,
    CapacityExceededError,
    ConfigurationError,
    MigrationError,
    NonRetryableShardError,
    QueryFailedError,
    RegionUnavailableError,
    ShardAlreadyAssignedError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deployment import CubrickDeployment


class FaultKind(enum.Enum):
    """The supported fault classes."""

    HOST_CRASH = "host_crash"
    HOST_HANG = "host_hang"
    SLOW_DISK = "slow_disk"
    TAIL_AMPLIFY = "tail_amplify"
    NETWORK_PARTITION = "network_partition"
    SESSION_EXPIRY = "session_expiry"
    SM_FAILOVER = "sm_failover"
    MIGRATION_INTERRUPT = "migration_interrupt"
    QUERY_STORM = "query_storm"
    LEADER_CRASH = "leader_crash"


#: Kinds whose ``target`` names a region rather than a host.
REGION_TARGETED = frozenset({
    FaultKind.TAIL_AMPLIFY,
    FaultKind.NETWORK_PARTITION,
    FaultKind.SM_FAILOVER,
    FaultKind.MIGRATION_INTERRUPT,
    FaultKind.LEADER_CRASH,
})


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: kind, target, start time and shape."""

    at: float
    kind: FaultKind
    target: str  # host id, or region name for REGION_TARGETED kinds
    duration: float = 0.0
    factor: float = 1.0  # latency multiplier (SLOW_DISK / TAIL_AMPLIFY)
    permanent: bool = False  # HOST_CRASH: goes to the repair pipeline
    # NETWORK_PARTITION only: when set, the partition is *asymmetric* —
    # only traffic from ``src`` to ``target`` is cut; the reverse
    # direction keeps delivering. None = the classic full partition.
    src: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"fault time must be >= 0: {self.at}")
        if self.duration < 0:
            raise ConfigurationError(
                f"fault duration must be >= 0: {self.duration}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"latency factor must be >= 1: {self.factor}"
            )
        if not self.target:
            raise ConfigurationError("fault target must be non-empty")
        if self.src is not None and self.kind is not FaultKind.NETWORK_PARTITION:
            raise ConfigurationError(
                f"src only applies to network_partition faults: {self.kind}"
            )
        if self.src == self.target and self.src is not None:
            raise ConfigurationError(
                f"asymmetric partition src and target must differ: {self.src}"
            )

    @property
    def clears_at(self) -> Optional[float]:
        """When the fault is lifted; None for one-shot faults."""
        if self.duration > 0:
            return self.at + self.duration
        return None

    def render(self) -> str:
        parts = [f"t={self.at:.3f}", self.kind.value, self.target]
        if self.src is not None:
            parts.append(f"src={self.src}")
        if self.duration > 0:
            parts.append(f"duration={self.duration:.1f}")
        if self.factor != 1.0:
            parts.append(f"factor={self.factor:g}")
        if self.permanent:
            parts.append("permanent")
        return " ".join(parts)


@dataclass
class FaultSchedule:
    """An ordered collection of faults, with builder helpers."""

    specs: list = field(default_factory=list)

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        self.specs.append(spec)
        return self

    # Builder helpers — one per fault kind, for readable scenarios.

    def host_crash(self, at: float, host: str, *, duration: float = 60.0,
                   permanent: bool = False) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.HOST_CRASH,
                                  target=host, duration=duration,
                                  permanent=permanent))

    def host_hang(self, at: float, host: str,
                  *, duration: float = 60.0) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.HOST_HANG,
                                  target=host, duration=duration))

    def slow_disk(self, at: float, host: str, *, factor: float = 20.0,
                  duration: float = 120.0) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.SLOW_DISK,
                                  target=host, duration=duration,
                                  factor=factor))

    def tail_amplify(self, at: float, region: str, *, factor: float = 10.0,
                     duration: float = 120.0) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.TAIL_AMPLIFY,
                                  target=region, duration=duration,
                                  factor=factor))

    def network_partition(self, at: float, region: str,
                          *, duration: float = 300.0) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.NETWORK_PARTITION,
                                  target=region, duration=duration))

    def asymmetric_partition(self, at: float, src: str, dst: str,
                             *, duration: float = 300.0) -> "FaultSchedule":
        """Cut only the ``src → dst`` direction: ``dst`` still reaches
        ``src``. The half-open failure mode real networks produce —
        heartbeats arrive one way while replies vanish."""
        return self.add(FaultSpec(at=at, kind=FaultKind.NETWORK_PARTITION,
                                  target=dst, src=src, duration=duration))

    def leader_crash(self, at: float, region: str,
                     *, duration: float = 60.0) -> "FaultSchedule":
        """Crash the consensus metadata replica in ``region`` (process
        loss: volatile state gone, log survives)."""
        return self.add(FaultSpec(at=at, kind=FaultKind.LEADER_CRASH,
                                  target=region, duration=duration))

    def session_expiry(self, at: float, host: str,
                       *, duration: float = 60.0) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.SESSION_EXPIRY,
                                  target=host, duration=duration))

    def sm_failover(self, at: float, region: str) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.SM_FAILOVER,
                                  target=region))

    def migration_interrupt(self, at: float, region: str,
                            *, duration: float = 60.0) -> "FaultSchedule":
        return self.add(FaultSpec(at=at, kind=FaultKind.MIGRATION_INTERRUPT,
                                  target=region, duration=duration))

    def query_storm(self, at: float, table: str, *, qps: float = 100.0,
                    duration: float = 10.0) -> "FaultSchedule":
        """A traffic burst: ``qps`` fixed queries/s against ``table``.

        Overload is a fault class like any other (the LinkedIn OLAP
        fault taxonomy lists it alongside crashes): ``factor`` carries
        the storm rate.
        """
        return self.add(FaultSpec(at=at, kind=FaultKind.QUERY_STORM,
                                  target=table, duration=duration,
                                  factor=qps))

    # Introspection

    def sorted_specs(self) -> list:
        """Specs in application order (time, then insertion order)."""
        indexed = sorted(
            enumerate(self.specs), key=lambda pair: (pair[1].at, pair[0])
        )
        return [spec for __, spec in indexed]

    @property
    def end_time(self) -> float:
        """Virtual time by which every fault has been applied and cleared."""
        end = 0.0
        for spec in self.specs:
            end = max(end, spec.clears_at if spec.clears_at is not None
                      else spec.at)
        return end

    def shifted(self, offset: float) -> "FaultSchedule":
        """A copy with every fault time moved by ``offset`` seconds."""
        return FaultSchedule(
            specs=[replace(s, at=s.at + offset) for s in self.specs]
        )

    def __len__(self) -> int:
        return len(self.specs)


class ChaosInjector:
    """Applies a :class:`FaultSchedule` to a live deployment.

    The injector owns the latency-shaping state (per-host amplification
    factors and hang flags) and installs itself as the
    ``service_time_hook`` of every region coordinator. All faults are
    scheduled on the deployment's simulator, so they interleave
    deterministically with heartbeats, sweeps and background loops.
    """

    #: Extra delay added to every request hitting a hung host. Large
    #: enough that any sane per-hop timeout classifies it as failed.
    HANG_DELAY = 300.0

    def __init__(self, deployment: "CubrickDeployment"):
        self._deployment = deployment
        self._amplify: dict[str, float] = {}
        self._hung: set[str] = set()
        self.applied: list = []  # (time, FaultSpec, detail) tuples
        for coordinator in deployment.coordinators.values():
            coordinator.service_time_hook = self._shape_service_time

    # ------------------------------------------------------------------
    # Latency shaping
    # ------------------------------------------------------------------

    def _shape_service_time(self, host_id: str, sampled: float) -> float:
        shaped = sampled * self._amplify.get(host_id, 1.0)
        if host_id in self._hung:
            shaped += self.HANG_DELAY
        return shaped

    def amplification(self, host_id: str) -> float:
        """Current latency multiplier for a host (1.0 = unshaped)."""
        return self._amplify.get(host_id, 1.0)

    def is_hung(self, host_id: str) -> bool:
        return host_id in self._hung

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def install(self, schedule: FaultSchedule) -> None:
        """Schedule every fault (and its clearance) on the simulator."""
        simulator = self._deployment.simulator
        for spec in schedule.sorted_specs():
            if spec.at < simulator.now:
                raise ConfigurationError(
                    f"fault scheduled in the past: {spec.render()} "
                    f"(now={simulator.now})"
                )
            simulator.schedule(spec.at, lambda s=spec: self.apply(s))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, spec: FaultSpec) -> None:
        """Apply one fault immediately (normally called by the engine)."""
        handler = {
            FaultKind.HOST_CRASH: self._apply_host_crash,
            FaultKind.HOST_HANG: self._apply_host_hang,
            FaultKind.SLOW_DISK: self._apply_slow_disk,
            FaultKind.TAIL_AMPLIFY: self._apply_tail_amplify,
            FaultKind.NETWORK_PARTITION: self._apply_network_partition,
            FaultKind.SESSION_EXPIRY: self._apply_session_expiry,
            FaultKind.SM_FAILOVER: self._apply_sm_failover,
            FaultKind.MIGRATION_INTERRUPT: self._apply_migration_interrupt,
            FaultKind.QUERY_STORM: self._apply_query_storm,
            FaultKind.LEADER_CRASH: self._apply_leader_crash,
        }[spec.kind]
        detail = handler(spec)
        now = self._deployment.simulator.now
        self.applied.append((now, spec, detail))
        self._deployment.obs.events.emit(
            "repro.chaos.fault_injected",
            fault=spec.kind.value,
            target=spec.target,
            duration=spec.duration,
            factor=spec.factor,
            permanent=spec.permanent,
            detail=detail,
        )

    def _emit_cleared(self, spec: FaultSpec) -> None:
        self._deployment.obs.events.emit(
            "repro.chaos.fault_cleared",
            fault=spec.kind.value,
            target=spec.target,
        )

    def _schedule_clear(self, spec: FaultSpec, clear) -> None:
        def run_clear() -> None:
            clear()
            self._emit_cleared(spec)

        self._deployment.simulator.call_later(spec.duration, run_clear)

    # ------------------------------------------------------------------
    # Per-kind handlers
    # ------------------------------------------------------------------

    def _apply_host_crash(self, spec: FaultSpec) -> str:
        deployment = self._deployment
        deployment.automation.handle_host_failure(
            spec.target, permanent=spec.permanent
        )
        if spec.duration > 0:
            self._schedule_clear(
                spec,
                lambda: deployment.automation.handle_host_recovery(spec.target),
            )
        return "crashed"

    def _apply_host_hang(self, spec: FaultSpec) -> str:
        self._hung.add(spec.target)
        if spec.duration > 0:
            self._schedule_clear(
                spec, lambda: self._hung.discard(spec.target)
            )
        return "hung"

    def _apply_slow_disk(self, spec: FaultSpec) -> str:
        self._amplify[spec.target] = spec.factor
        if spec.duration > 0:
            self._schedule_clear(
                spec, lambda: self._amplify.pop(spec.target, None)
            )
        return f"amplified x{spec.factor:g}"

    def _apply_tail_amplify(self, spec: FaultSpec) -> str:
        hosts = [
            h.host_id
            for h in self._deployment.cluster.hosts_in_region(spec.target)
        ]
        for host_id in hosts:
            self._amplify[host_id] = spec.factor

        def clear() -> None:
            for host_id in hosts:
                self._amplify.pop(host_id, None)

        if spec.duration > 0:
            self._schedule_clear(spec, clear)
        return f"amplified {len(hosts)} hosts x{spec.factor:g}"

    def _apply_network_partition(self, spec: FaultSpec) -> str:
        cluster = self._deployment.cluster
        if spec.src is not None:
            # Asymmetric: only src → target traffic is cut. Queries still
            # reach the target region (its front door is up); what breaks
            # is the replication/consensus plane in one direction.
            cluster.set_region_link(spec.src, spec.target, False)

            def heal() -> None:
                cluster.set_region_link(spec.src, spec.target, True)
                self._emit_healed(spec)

            if spec.duration > 0:
                self._schedule_clear(spec, heal)
            return f"link {spec.src}->{spec.target} cut"
        cluster.set_region_available(spec.target, False)
        cluster.isolate_region(spec.target)

        def heal_full() -> None:
            cluster.set_region_available(spec.target, True)
            cluster.rejoin_region(spec.target)
            self._emit_healed(spec)

        if spec.duration > 0:
            self._schedule_clear(spec, heal_full)
        return "partitioned"

    def _emit_healed(self, spec: FaultSpec) -> None:
        """The heal event the invariant checker keys catch-up checks on."""
        self._deployment.obs.events.emit(
            "repro.chaos.partition_healed",
            target=spec.target,
            src=spec.src if spec.src is not None else "",
        )

    def _apply_leader_crash(self, spec: FaultSpec) -> str:
        """Crash the consensus replica in ``target``'s region."""
        metadata = getattr(self._deployment, "metadata_cluster", None)
        if metadata is None:
            return "no metadata cluster"
        was_leader = metadata.leader() == spec.target
        metadata.crash_replica(spec.target)
        if spec.duration > 0:
            self._schedule_clear(
                spec, lambda: metadata.recover_replica(spec.target)
            )
        return "leader crashed" if was_leader else "replica crashed"

    def _apply_session_expiry(self, spec: FaultSpec) -> str:
        deployment = self._deployment
        region = deployment.cluster.host(spec.target).region
        sm = deployment.sm_servers[region]
        expired = sm.datastore.expire_session_of(spec.target)
        if spec.duration > 0:
            # The application server notices the lost session and
            # re-registers after a reconnect delay.
            self._schedule_clear(
                spec, lambda: deployment._on_host_return(spec.target)
            )
        return "expired" if expired else "no live session"

    def _apply_sm_failover(self, spec: FaultSpec) -> str:
        """A new SM server instance takes over: it rebuilds its view from
        the datastore and republishes every shard mapping, producing the
        propagation storm (and stale-read windows) of a real failover."""
        sm = self._deployment.sm_servers[spec.target]
        now = self._deployment.simulator.now
        # New instance first replays the journaled shard map from the
        # metadata plane (a no-op when memory already matches it).
        rebuilt = sm.rebuild_shard_map()
        republished = 0
        for shard_id in sm.shard_ids():
            entry = sm.shard_entry(shard_id)
            owner = entry.primary() or (
                entry.replicas[0] if entry.replicas else None
            )
            if owner is None:
                continue
            sm.discovery.publish(shard_id, owner.host_id, now)
            republished += 1
        return f"republished {republished} shards, rebuilt {rebuilt}"

    def _apply_migration_interrupt(self, spec: FaultSpec) -> str:
        """Start a graceful migration, then crash its target mid-protocol.

        The mapping has already been published to the (now dead) target,
        so queries hit a down owner until the session expires and the
        failover republishes — the worst-case interrupted-migration
        window the resilience layer must absorb.
        """
        deployment = self._deployment
        sm = deployment.sm_servers[spec.target]
        for shard_id in sm.shard_ids():
            entry = sm.shard_entry(shard_id)
            if not entry.replicas:
                continue
            source_id = entry.replicas[0].host_id
            if (
                source_id not in sm.registered_hosts()
                or not deployment.cluster.host(source_id).is_available
            ):
                continue
            try:
                decision = sm.placement.choose_host(
                    shard_id,
                    size_hint=1.0,
                    region=spec.target,
                    exclude_hosts=entry.refused_hosts | entry.hosts(),
                    exclude_domains=set(),
                )
            except CapacityExceededError:
                continue
            target_id = decision.host_id
            source = sm.app_server(source_id)
            target = sm.app_server(target_id)
            try:
                sm.migrations.live_migrate(
                    shard_id, source, target, reason="manual"
                )
            except (NonRetryableShardError, ShardAlreadyAssignedError,
                    MigrationError):
                continue
            sm._record_replica_move(entry, source_id, target_id)
            # The interruption: the freshly-published target dies.
            deployment.automation.handle_host_failure(
                target_id, permanent=False
            )
            if spec.duration > 0:
                self._schedule_clear(
                    spec,
                    lambda h=target_id:
                        deployment.automation.handle_host_recovery(h),
                )
            return f"interrupted shard {shard_id} -> {target_id}"
        return "no migratable shard"

    def _apply_query_storm(self, spec: FaultSpec) -> str:
        """Fire a fixed aggregation query at a steady rate for ``duration``.

        Every arrival goes through the proxy's normal front door —
        admission control included — so an overloaded window rejects the
        excess loudly. Outcomes land in the proxy's query log and the
        shared obs counters; nothing here is random, so seeded storms
        replay byte-identically.
        """
        from repro.cubrick.query import AggFunc, Aggregation, Query

        deployment = self._deployment
        info = deployment.catalog.get(spec.target)
        query = Query.build(
            spec.target,
            [Aggregation(AggFunc.SUM, info.schema.metrics[0].name)],
        )
        count = max(1, int(spec.factor * spec.duration))
        interval = spec.duration / count

        def fire() -> None:
            try:
                deployment.proxy.submit(query)
            except (
                AdmissionControlError,
                QueryFailedError,
                RegionUnavailableError,
            ):
                pass  # rejections/failures are the storm's observable toll

        for index in range(count):
            deployment.simulator.call_later(index * interval, fire)
        return f"{count} queries at {spec.factor:g} qps"
