"""System-wide invariants validated during and after chaos runs.

Two invariant classes are distinguished, mirroring the distinction
between *safety* (must hold at every instant, even mid-failure) and
*convergence* (must hold again once faults clear and recovery settles):

Safety — checked after **every** injected fault:

* **single primary** — no shard ever has two PRIMARY replicas in one
  SM service (a double-primaried shard means split-brain writes);
* **discovery consistency** — the authoritative SMC mapping of every
  shard points at a host SM believes holds a replica;
* **SM ⊆ application servers** — every shard SM records on a host is
  actually hosted by that application server (the reverse may lag
  inside a graceful-drop grace window, which is legal);
* **SM ↔ datastore agreement** — the set of live datastore sessions
  matches the set of registered application servers.

When the deployment runs a consensus metadata cluster
(``replicated_metadata=True``), four more safety checks audit it —
all no-ops (not even counted) on legacy deployments:

* **single leader per term** — no term in the election history was won
  by two replicas;
* **no committed-entry loss** — no replica ever applied a different
  (term, command) at a committed index than the cluster ledger holds,
  and every retained committed log entry still agrees with the ledger;
* **monotonic commit index** — no replica ever attempted to move its
  commit index backwards;
* **journaled single primary** — the replicated shard-map journal
  never records two PRIMARY replicas for one shard, across any number
  of metadata-leader elections.

Convergence — checked once the schedule is exhausted and recovery has
had time to settle:

* **replica counts re-converge** — every shard has its full replica
  set on registered, available hosts and no failovers remain unplaced;
* **no orphan shards** — registered servers host only shards SM knows;
* **consensus convergence** (replicated metadata only) — after heal,
  every live replica reachable from the leader has caught up: equal
  commit index and byte-identical applied state.

Query integrity ("accepted queries never silently drop rows") is
checked per-result: a non-partial success must carry the full answer;
anything less must be labelled with ``completeness < 1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ShardMappingUnknownError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deployment import CubrickDeployment
    from repro.cubrick.query import QueryResult


@dataclass(frozen=True)
class InvariantViolation:
    """One failed invariant, with enough context to debug the run."""

    check: str
    detail: str

    def render(self) -> str:
        return f"{self.check}: {self.detail}"


@dataclass
class InvariantReport:
    """Outcome of one checker pass (deterministically renderable)."""

    time: float
    label: str
    checks_run: list = field(default_factory=list)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"[t={self.time:10.3f}] {self.label}: {status} "
            f"({len(self.checks_run)} checks, {len(self.violations)} violations)"
        ]
        for violation in self.violations:
            lines.append(f"    !! {violation.render()}")
        return "\n".join(lines)


class InvariantChecker:
    """Validates a :class:`CubrickDeployment` against the invariants above."""

    def __init__(self, deployment: "CubrickDeployment"):
        self._deployment = deployment

    # ------------------------------------------------------------------
    # Safety (valid at every instant)
    # ------------------------------------------------------------------

    def check_safety(self, label: str = "safety") -> InvariantReport:
        report = InvariantReport(
            time=self._deployment.simulator.now, label=label
        )
        self._check_single_primary(report)
        self._check_discovery_consistency(report)
        self._check_sm_subset_of_apps(report)
        self._check_sessions_match_registration(report)
        self._check_consensus_safety(report)
        self._emit(report)
        return report

    def _check_single_primary(self, report: InvariantReport) -> None:
        # Imported here, not at module level: shardmanager.server itself
        # imports the chaos policy layer, and a top-level import would
        # close that cycle during package initialisation.
        from repro.shardmanager.server import ReplicaRole

        report.checks_run.append("single_primary")
        for region, sm in sorted(self._deployment.sm_servers.items()):
            for shard_id in sm.shard_ids():
                entry = sm.shard_entry(shard_id)
                primaries = [
                    r.host_id for r in entry.replicas
                    if r.role is ReplicaRole.PRIMARY
                ]
                if len(primaries) > 1:
                    report.violations.append(InvariantViolation(
                        "single_primary",
                        f"shard {shard_id} in {region} has "
                        f"{len(primaries)} primaries: {sorted(primaries)}",
                    ))

    def _check_discovery_consistency(self, report: InvariantReport) -> None:
        report.checks_run.append("discovery_consistency")
        for region, sm in sorted(self._deployment.sm_servers.items()):
            for shard_id in sm.shard_ids():
                entry = sm.shard_entry(shard_id)
                try:
                    owner = sm.discovery.resolve_authoritative(shard_id)
                except ShardMappingUnknownError:
                    report.violations.append(InvariantViolation(
                        "discovery_consistency",
                        f"shard {shard_id} in {region} was never published",
                    ))
                    continue
                if owner is not None and owner not in entry.hosts():
                    report.violations.append(InvariantViolation(
                        "discovery_consistency",
                        f"shard {shard_id} in {region} published to "
                        f"{owner}, but replicas live on "
                        f"{sorted(entry.hosts())}",
                    ))

    def _check_sm_subset_of_apps(self, report: InvariantReport) -> None:
        report.checks_run.append("sm_matches_app_servers")
        for region, sm in sorted(self._deployment.sm_servers.items()):
            for host_id in sm.registered_hosts():
                recorded = sm.shards_on_host(host_id)
                hosted = sm.app_server(host_id).hosted_shards()
                missing = recorded - hosted
                if missing:
                    report.violations.append(InvariantViolation(
                        "sm_matches_app_servers",
                        f"{region}: SM records shards {sorted(missing)} on "
                        f"{host_id} but the server does not host them",
                    ))

    def _check_sessions_match_registration(
        self, report: InvariantReport
    ) -> None:
        report.checks_run.append("sm_matches_datastore")
        for region, sm in sorted(self._deployment.sm_servers.items()):
            live = {s.owner for s in sm.datastore.live_sessions()}
            registered = set(sm.registered_hosts())
            for owner in sorted(live - registered):
                report.violations.append(InvariantViolation(
                    "sm_matches_datastore",
                    f"{region}: datastore session for {owner} is live but "
                    f"the host is not registered with SM",
                ))
            for host_id in sorted(registered - live):
                report.violations.append(InvariantViolation(
                    "sm_matches_datastore",
                    f"{region}: {host_id} is registered with SM but holds "
                    f"no live datastore session",
                ))

    # ------------------------------------------------------------------
    # Consensus metadata safety (replicated_metadata deployments only)
    # ------------------------------------------------------------------

    def _check_consensus_safety(self, report: InvariantReport) -> None:
        cluster = getattr(self._deployment, "metadata_cluster", None)
        if cluster is None:
            return
        self._check_single_leader_per_term(report, cluster)
        self._check_no_committed_loss(report, cluster)
        self._check_monotonic_commit(report, cluster)
        self._check_journal_single_primary(report)

    def _check_single_leader_per_term(
        self, report: InvariantReport, cluster
    ) -> None:
        report.checks_run.append("consensus_single_leader_per_term")
        for term, winners in sorted(cluster.leader_history().items()):
            if len(winners) > 1:
                report.violations.append(InvariantViolation(
                    "consensus_single_leader_per_term",
                    f"term {term} won by {sorted(winners)}",
                ))

    def _check_no_committed_loss(
        self, report: InvariantReport, cluster
    ) -> None:
        report.checks_run.append("consensus_no_committed_loss")
        for conflict in cluster.commit_conflicts:
            report.violations.append(InvariantViolation(
                "consensus_no_committed_loss", conflict
            ))
        # Every committed log entry a replica still retains must carry
        # the term the ledger recorded at apply time — a later overwrite
        # of a committed index is exactly the loss Raft must prevent.
        for region in cluster.regions:
            node = cluster.replica(region)
            lo = node.log.snapshot_index
            for index in range(lo + 1, node.commit_index + 1):
                recorded = cluster.ledger.get(index)
                term = node.log.term_at(index)
                if recorded is not None and term is not None \
                        and term != recorded[0]:
                    report.violations.append(InvariantViolation(
                        "consensus_no_committed_loss",
                        f"{region}: committed index {index} holds term "
                        f"{term}, ledger recorded term {recorded[0]}",
                    ))

    def _check_monotonic_commit(
        self, report: InvariantReport, cluster
    ) -> None:
        report.checks_run.append("consensus_monotonic_commit")
        for region in cluster.regions:
            regressions = cluster.replica(region).commit_regressions
            if regressions:
                report.violations.append(InvariantViolation(
                    "consensus_monotonic_commit",
                    f"{region}: {regressions} commit-index regression(s) "
                    f"attempted",
                ))

    def _check_journal_single_primary(self, report: InvariantReport) -> None:
        from repro.shardmanager.server import ReplicaRole

        report.checks_run.append("consensus_journal_single_primary")
        primary = ReplicaRole.PRIMARY.value
        for region, sm in sorted(self._deployment.sm_servers.items()):
            prefix = sm._shardmap_prefix
            for key in sm.datastore.keys_with_prefix(prefix):
                value = sm.datastore.get(key)
                if not value:
                    continue
                primaries = [h for h, role in value if role == primary]
                if len(primaries) > 1:
                    report.violations.append(InvariantViolation(
                        "consensus_journal_single_primary",
                        f"{region}: journal entry {key} records "
                        f"{len(primaries)} primaries: {sorted(primaries)}",
                    ))

    def _check_consensus_convergence(self, report: InvariantReport) -> None:
        cluster = getattr(self._deployment, "metadata_cluster", None)
        if cluster is None:
            return
        report.checks_run.append("consensus_converged")
        leader = cluster.leader()
        if leader is None:
            report.violations.append(InvariantViolation(
                "consensus_converged",
                "no metadata leader after faults cleared",
            ))
            return
        reference = cluster.replica(leader)
        reference_state = cluster.machines[leader].snapshot()
        for region in cluster.live_regions():
            if not cluster.can_route(leader, region):
                continue  # still partitioned off: not expected to converge
            node = cluster.replica(region)
            if node.commit_index != reference.commit_index:
                report.violations.append(InvariantViolation(
                    "consensus_converged",
                    f"{region} commit index {node.commit_index} != "
                    f"leader {leader} at {reference.commit_index}",
                ))
            if cluster.machines[region].snapshot() != reference_state:
                report.violations.append(InvariantViolation(
                    "consensus_converged",
                    f"{region} applied state diverges from leader {leader}",
                ))

    # ------------------------------------------------------------------
    # Convergence (valid once faults cleared and recovery settled)
    # ------------------------------------------------------------------

    def check_convergence(self, label: str = "convergence") -> InvariantReport:
        report = InvariantReport(
            time=self._deployment.simulator.now, label=label
        )
        self._check_replicas_converged(report)
        self._check_no_orphan_shards(report)
        self._check_consensus_convergence(report)
        self._emit(report)
        return report

    def _check_replicas_converged(self, report: InvariantReport) -> None:
        report.checks_run.append("replicas_converged")
        cluster = self._deployment.cluster
        for region, sm in sorted(self._deployment.sm_servers.items()):
            if sm.unplaced_failovers:
                report.violations.append(InvariantViolation(
                    "replicas_converged",
                    f"{region}: {len(sm.unplaced_failovers)} failovers "
                    f"still unplaced: {sorted(set(sm.unplaced_failovers))}",
                ))
            expected = sm.spec.replicas_per_shard
            registered = set(sm.registered_hosts())
            for shard_id in sm.shard_ids():
                entry = sm.shard_entry(shard_id)
                if len(entry.replicas) != expected:
                    report.violations.append(InvariantViolation(
                        "replicas_converged",
                        f"shard {shard_id} in {region} has "
                        f"{len(entry.replicas)} replicas, expected {expected}",
                    ))
                for replica in entry.replicas:
                    host_ok = (
                        replica.host_id in registered
                        and cluster.host(replica.host_id).is_available
                    )
                    if not host_ok:
                        report.violations.append(InvariantViolation(
                            "replicas_converged",
                            f"shard {shard_id} in {region}: replica on "
                            f"{replica.host_id} is unavailable/unregistered",
                        ))

    def _check_no_orphan_shards(self, report: InvariantReport) -> None:
        report.checks_run.append("no_orphan_shards")
        for region, sm in sorted(self._deployment.sm_servers.items()):
            for host_id in sm.registered_hosts():
                hosted = sm.app_server(host_id).hosted_shards()
                orphans = {s for s in hosted if not sm.has_shard(s)}
                if orphans:
                    report.violations.append(InvariantViolation(
                        "no_orphan_shards",
                        f"{region}: {host_id} hosts shards "
                        f"{sorted(orphans)} unknown to SM",
                    ))

    # ------------------------------------------------------------------
    # Query integrity
    # ------------------------------------------------------------------

    def check_query_integrity(
        self,
        result: "QueryResult",
        expected_total: float,
        *,
        total: Optional[float] = None,
        label: str = "query_integrity",
    ) -> InvariantReport:
        """An accepted query must never silently drop rows.

        ``total`` is the scalar the caller derived from ``result`` (e.g.
        the grand sum of a metric); ``expected_total`` its fault-free
        value. Non-partial answers must match exactly; partial answers
        must be labelled (``partial`` flag and ``completeness < 1.0``).
        """
        report = InvariantReport(
            time=self._deployment.simulator.now, label=label
        )
        report.checks_run.append("no_silent_row_loss")
        metadata = result.metadata
        completeness = metadata.get(
            "completeness", metadata.get("coverage", 1.0)
        )
        if metadata.get("partial"):
            if completeness >= 1.0 and total is not None and total != expected_total:
                report.violations.append(InvariantViolation(
                    "no_silent_row_loss",
                    f"partial answer claims completeness {completeness} but "
                    f"total {total} != expected {expected_total}",
                ))
        else:
            if total is not None and total != expected_total:
                report.violations.append(InvariantViolation(
                    "no_silent_row_loss",
                    f"non-partial answer dropped rows: total {total} != "
                    f"expected {expected_total}",
                ))
            if completeness < 1.0:
                report.violations.append(InvariantViolation(
                    "no_silent_row_loss",
                    f"non-partial answer reports completeness {completeness}",
                ))
        self._emit(report)
        return report

    # ------------------------------------------------------------------
    # Aggregate
    # ------------------------------------------------------------------

    def check_all(self, label: str = "all") -> InvariantReport:
        """Safety plus convergence in one report (for settled systems)."""
        safety = self.check_safety(label=label)
        convergence = self.check_convergence(label=label)
        merged = InvariantReport(
            time=self._deployment.simulator.now,
            label=label,
            checks_run=safety.checks_run + convergence.checks_run,
            violations=safety.violations + convergence.violations,
        )
        return merged

    def _emit(self, report: InvariantReport) -> None:
        self._deployment.obs.events.emit(
            "repro.chaos.invariant_check",
            label=report.label,
            checks=len(report.checks_run),
            violations=len(report.violations),
            ok=report.ok,
        )
