"""Unified resilience policies: one place for all retry/timeout decisions.

Before this module existed, failure handling was scattered: the Cubrick
proxy retried once per region with no backoff, the region coordinator
had its own deadline semantics, the SM client did not retry at all, and
SM server hard-coded five placement attempts. Production OLAP fleets
(see "Enhancing OLAP Resilience at LinkedIn", PAPERS.md) centralise
these decisions so they can be tuned — and chaos-tested — coherently.

Everything here is deterministic: backoff jitter is drawn from an
injected :class:`numpy.random.Generator` (a named stream of the sim's
:class:`~repro.sim.rng.RngRegistry`), never the wall clock, so two
identically-seeded chaos runs retry at byte-identical virtual times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, TypeVar, Union

from repro.errors import (
    ConfigurationError,
    HostUnavailableError,
    QueryFailedError,
    RetryableShardError,
    ShardMappingUnknownError,
)

T = TypeVar("T")

#: Error classes every layer agrees are transient: the request may be
#: retried (against the same or a different target) within the budget.
TRANSIENT_ERRORS: tuple = (
    HostUnavailableError,
    RetryableShardError,
    ShardMappingUnknownError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget plus exponential backoff with deterministic jitter.

    ``max_attempts`` counts *total* tries including the first; ``None``
    means "derived from context" (the proxy uses one try per candidate
    region — the pre-policy behaviour).
    """

    max_attempts: Optional[int] = 3
    base_backoff: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff: float = 5.0
    # Uniform +/- fraction applied to each delay, drawn from the sim RNG.
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError(
                f"jitter_fraction out of [0, 1]: {self.jitter_fraction}"
            )

    def budget(self, default: int) -> int:
        """The attempt budget, falling back to a context-derived default."""
        return self.max_attempts if self.max_attempts is not None else default

    def backoff_delay(self, attempt: int, rng=None) -> float:
        """Delay before retry number ``attempt`` (1-based), in seconds.

        With ``rng`` supplied, the delay is jittered by a uniform factor
        in ``[1 - jitter, 1 + jitter]``. A zero base backoff draws
        nothing from the RNG, so legacy (no-backoff) policies do not
        perturb downstream random streams.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1: {attempt}")
        delay = self.base_backoff * self.backoff_multiplier ** (attempt - 1)
        delay = min(delay, self.max_backoff)
        if delay <= 0.0:
            return 0.0
        if rng is not None and self.jitter_fraction > 0.0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * float(rng.random()) - 1.0)
        return delay


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-hop timeout semantics, unified across all layers.

    A host whose (simulated) service time exceeds ``per_hop`` **counts
    as failed** — it consumes one attempt of the retry budget, exactly
    like a crashed host. This resolves the historical divergence where
    the coordinator counted a timed-out host as failed while the SM
    client kept waiting on it indefinitely.
    """

    per_hop: Optional[float] = None  # None = no per-hop bound

    def __post_init__(self) -> None:
        if self.per_hop is not None and self.per_hop <= 0:
            raise ConfigurationError(
                f"per_hop timeout must be positive: {self.per_hop}"
            )

    def is_timeout(self, elapsed: float) -> bool:
        """Whether a hop that took ``elapsed`` seconds counts as failed."""
        return self.per_hop is not None and elapsed > self.per_hop


@dataclass(frozen=True)
class HedgePolicy:
    """Hedged fan-out requests (Dean & Barroso's tail-tolerant trick).

    When a host's sampled service time exceeds ``trigger``, up to
    ``max_hedges`` duplicate requests are issued and the fastest answer
    wins — trading extra work for a shorter tail.
    """

    enabled: bool = False
    trigger: float = 0.2
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.trigger <= 0:
            raise ConfigurationError(f"hedge trigger must be positive: {self.trigger}")
        if self.max_hedges < 1:
            raise ConfigurationError(f"max_hedges must be >= 1: {self.max_hedges}")


@dataclass(frozen=True)
class DegradationPolicy:
    """Graceful degradation once the retry budget is exhausted.

    Instead of failing the query outright, the proxy re-executes it in
    partial mode (dead/slow hosts dropped) and returns the answer with
    an explicit ``metadata["completeness"]`` fraction — the Scuba-style
    accuracy-for-availability trade (paper §II-C), but *opt-in* and
    *labelled*: an accepted query never silently drops rows.
    """

    enabled: bool = False
    # Degraded answers covering less than this fraction are still failed.
    min_completeness: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_completeness <= 1.0:
            raise ConfigurationError(
                f"min_completeness out of [0, 1]: {self.min_completeness}"
            )


@dataclass(frozen=True)
class ResiliencePolicy:
    """The full bundle threaded through proxy, coordinator, SM and chaos."""

    retry: RetryPolicy = RetryPolicy()
    timeout: TimeoutPolicy = TimeoutPolicy()
    hedge: HedgePolicy = HedgePolicy()
    degradation: DegradationPolicy = DegradationPolicy()

    @classmethod
    def legacy(cls) -> "ResiliencePolicy":
        """The pre-policy behaviour: one try per region, no backoff,
        no per-hop timeout, no hedging, no degradation."""
        return cls(
            retry=RetryPolicy(max_attempts=None, base_backoff=0.0,
                              jitter_fraction=0.0),
        )

    @classmethod
    def resilient(
        cls,
        *,
        max_attempts: int = 6,
        per_hop_timeout: Optional[float] = 2.0,
        hedge: bool = True,
        degrade: bool = True,
        min_completeness: float = 0.25,
    ) -> "ResiliencePolicy":
        """A production-shaped policy for chaos runs: bounded budget,
        backoff, per-hop timeouts, hedging and labelled degradation."""
        return cls(
            retry=RetryPolicy(max_attempts=max_attempts),
            timeout=TimeoutPolicy(per_hop=per_hop_timeout),
            hedge=HedgePolicy(enabled=hedge),
            degradation=DegradationPolicy(
                enabled=degrade, min_completeness=min_completeness
            ),
        )


@dataclass
class RetryStats:
    """Bookkeeping for one policy-governed operation."""

    attempts: int = 0
    timeouts: int = 0
    backoff_total: float = 0.0
    errors: list = field(default_factory=list)  # stringified, in order

    def record_error(self, error: BaseException) -> None:
        self.errors.append(f"{type(error).__name__}: {error}")


RetryablePredicate = Union[
    Tuple[type, ...], Callable[[BaseException], bool]
]


def _is_retryable(error: BaseException, retryable: RetryablePredicate) -> bool:
    if callable(retryable) and not isinstance(retryable, tuple):
        return bool(retryable(error))
    if isinstance(error, QueryFailedError):
        # QueryFailedError carries its own retryability verdict.
        return error.retryable and isinstance(error, retryable)
    return isinstance(error, retryable)


def call_with_retries(
    fn: Callable[[int], T],
    *,
    policy: ResiliencePolicy,
    rng=None,
    retryable: RetryablePredicate = TRANSIENT_ERRORS,
    on_retry: Optional[Callable[[int, float], None]] = None,
) -> Tuple[T, RetryStats]:
    """Run ``fn(attempt)`` under the policy's retry budget.

    ``fn`` receives the 1-based attempt number. Transient errors (per
    ``retryable`` — a class tuple or predicate) consume budget and are
    retried after a deterministic backoff; everything else propagates
    immediately. ``on_retry(attempt, delay)`` lets callers *spend* the
    backoff delay (e.g. advance the virtual clock); by default it is
    only accounted in the returned :class:`RetryStats`.

    Returns ``(result, stats)``; re-raises the final error when the
    budget runs out.
    """
    budget = policy.retry.budget(default=1)
    stats = RetryStats()
    last_error: Optional[BaseException] = None
    for attempt in range(1, budget + 1):
        stats.attempts = attempt
        try:
            return fn(attempt), stats
        except BaseException as exc:  # noqa: BLE001 - classified below
            if not _is_retryable(exc, retryable):
                raise
            stats.record_error(exc)
            last_error = exc
            if attempt < budget:
                delay = policy.retry.backoff_delay(attempt, rng)
                stats.backoff_total += delay
                if on_retry is not None:
                    on_retry(attempt, delay)
    assert last_error is not None
    raise last_error
