"""Named chaos scenarios and the seeded scenario harness.

``run_scenario(name, seed)`` builds a small three-region deployment,
loads a table, installs the scenario's :class:`FaultSchedule`, and
drives the DES clock through every fault. After each fault it probes
the system with a resilient-policy query and checks the safety
invariants; once the schedule clears and recovery settles it checks the
convergence invariants. The returned :class:`ChaosReport` renders to a
byte-identical string for identical ``(name, seed)`` pairs — the
property the CI determinism gate diffs.

All imports of the deployment layer are deferred into function bodies:
``repro.core.deployment`` imports the coordinator/proxy, which import
the chaos policy layer, so a module-level import here would close an
import cycle during package initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.chaos.faults import ChaosInjector, FaultSchedule
from repro.chaos.invariants import InvariantChecker, InvariantReport
from repro.chaos.policies import ResiliencePolicy
from repro.errors import (
    AdmissionControlError,
    ConfigurationError,
    QueryFailedError,
    RegionUnavailableError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deployment import CubrickDeployment

#: Virtual time the deployment settles before the first fault.
WARMUP = 30.0
#: First fault time.
FAULT_START = 40.0
#: Virtual time allowed after the last fault clears for failovers,
#: reconnects and unplaced-failover retries to converge.
SETTLE = 300.0


@dataclass(frozen=True)
class Scenario:
    """One named chaos scenario: a schedule builder plus metadata."""

    name: str
    description: str
    build: Callable[["CubrickDeployment", float], FaultSchedule]
    # Run on a consensus-replicated-metadata deployment (repro.consensus):
    # the consensus safety invariants activate and the faults may target
    # the metadata plane itself.
    replicated: bool = False


@dataclass
class ProbeRecord:
    """One resilient-policy query issued during (or around) the chaos."""

    time: float
    label: str
    outcome: str  # ok | degraded | failed:<ErrorType>
    attempts: int = 0
    completeness: float = 1.0
    total: float = 0.0
    expected_total: float = 0.0
    integrity_ok: bool = True

    def render(self) -> str:
        return (
            f"[t={self.time:10.3f}] {self.label}: {self.outcome} "
            f"attempts={self.attempts} "
            f"completeness={self.completeness:.4f} "
            f"total={self.total:.1f}/{self.expected_total:.1f} "
            f"integrity={'OK' if self.integrity_ok else 'VIOLATED'}"
        )


@dataclass
class ChaosReport:
    """The full outcome of one scenario run (deterministically renderable)."""

    scenario: str
    seed: int
    faults: list = field(default_factory=list)  # rendered FaultSpec strings
    probes: list = field(default_factory=list)  # ProbeRecord
    invariants: list = field(default_factory=list)  # InvariantReport
    sla: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            all(r.ok for r in self.invariants)
            and all(p.integrity_ok for p in self.probes)
        )

    def render(self) -> str:
        lines = [f"chaos scenario: {self.scenario} (seed={self.seed})"]
        lines.append("faults:")
        for fault in self.faults:
            lines.append(f"  - {fault}")
        lines.append("probes:")
        for probe in self.probes:
            lines.append(f"  {probe.render()}")
        lines.append("invariants:")
        for report in self.invariants:
            for line in report.render().splitlines():
                lines.append(f"  {line}")
        lines.append("sla:")
        for key, value in self.sla.items():
            if isinstance(value, float):
                lines.append(f"  {key}={value:.4f}")
            else:
                lines.append(f"  {key}={value}")
        lines.append(f"verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Scenario library
# ----------------------------------------------------------------------

def _owner_hosts(deployment: "CubrickDeployment", region: str) -> list[str]:
    """Hosts owning shards in a region (deterministic order)."""
    sm = deployment.sm_servers[region]
    owners: list[str] = []
    for shard_id in sm.shard_ids():
        owner = sm.discovery.resolve_authoritative(shard_id)
        if owner is not None and owner not in owners:
            owners.append(owner)
    return owners


def _build_host_crash(deployment, t0: float) -> FaultSchedule:
    owners = _owner_hosts(deployment, "region0")
    schedule = FaultSchedule()
    schedule.host_crash(t0, owners[0], duration=120.0)
    if len(owners) > 1:
        schedule.host_crash(t0 + 10.0, owners[1], duration=120.0)
    return schedule


def _build_crash_storm(deployment, t0: float) -> FaultSchedule:
    # One owner per region, each owning a *different* shard: with an
    # in-memory store, crashing every region's copy of the same shard
    # inside the failure-detection window destroys all replicas at once
    # and no failover can recover the data. Distinct shards keep a
    # healthy cross-region donor available for each failover while the
    # three failovers still overlap in time.
    schedule = FaultSchedule()
    for index, (offset, region) in enumerate(
        zip((0.0, 15.0, 30.0), sorted(deployment.sm_servers))
    ):
        owners = _owner_hosts(deployment, region)
        schedule.host_crash(
            t0 + offset, owners[index % len(owners)], duration=120.0
        )
    return schedule


def _build_host_hang(deployment, t0: float) -> FaultSchedule:
    owners = _owner_hosts(deployment, "region0")
    return FaultSchedule().host_hang(t0, owners[0], duration=90.0)


def _build_slow_disk(deployment, t0: float) -> FaultSchedule:
    owners = _owner_hosts(deployment, "region0")
    return FaultSchedule().slow_disk(
        t0, owners[0], factor=500.0, duration=120.0
    )


def _build_tail_amplify(deployment, t0: float) -> FaultSchedule:
    return FaultSchedule().tail_amplify(
        t0, "region0", factor=200.0, duration=120.0
    )


def _build_region_partition(deployment, t0: float) -> FaultSchedule:
    return FaultSchedule().network_partition(t0, "region0", duration=300.0)


def _build_session_expiry(deployment, t0: float) -> FaultSchedule:
    owners = _owner_hosts(deployment, "region0")
    return FaultSchedule().session_expiry(t0, owners[0], duration=60.0)


def _build_sm_failover(deployment, t0: float) -> FaultSchedule:
    owners = _owner_hosts(deployment, "region0")
    schedule = FaultSchedule()
    schedule.sm_failover(t0, "region0")
    schedule.host_crash(t0 + 5.0, owners[0], duration=90.0)
    return schedule


def _build_migration_interrupt(deployment, t0: float) -> FaultSchedule:
    return FaultSchedule().migration_interrupt(t0, "region0", duration=60.0)


def _build_scale_in_crash(deployment, t0: float) -> FaultSchedule:
    # Elastic control plane under fire: a shard-owning host is being
    # decommissioned (drained, deregistered, awaiting removal) and a
    # fresh host is warming up towards SM registration when BOTH crash.
    # The decommission and the provision must each abort cleanly, the
    # repair pipeline must return both hosts to service, and the
    # single-primary / replica-reconvergence invariants must hold
    # throughout — no shard may be lost to the interrupted drain.
    from repro.autoscale.fleet import FleetController, FleetSpec

    fleet = FleetController(
        deployment,
        # Long grace/warm-up windows so both staged operations are still
        # in flight when the crashes land.
        FleetSpec(warmup_delay=30.0, decommission_grace=30.0),
    )
    victim = _owner_hosts(deployment, "region0")[0]
    fleet.decommission(victim)
    warming = fleet.provision("region0", 1)[0]
    schedule = FaultSchedule()
    schedule.host_crash(t0, victim, duration=90.0)
    schedule.host_crash(t0 + 10.0, warming, duration=120.0)
    return schedule


def _build_metadata_leader_crash(deployment, t0: float) -> FaultSchedule:
    # Kill the bootstrap metadata leader, let a successor win, then kill
    # the successor's region too: two elections back to back, with the
    # consensus safety invariants (single leader per term, no committed
    # loss) checked after each.
    schedule = FaultSchedule()
    schedule.leader_crash(t0, "region0", duration=60.0)
    schedule.leader_crash(t0 + 90.0, "region1", duration=60.0)
    return schedule


def _build_asymmetric_partition(deployment, t0: float) -> FaultSchedule:
    # Half-open link: region0's messages to region1 vanish while
    # region1 → region0 still delivers. Queries keep flowing (no region
    # is down); the metadata plane must replicate around the cut and
    # catch region1 up after the heal event.
    return FaultSchedule().asymmetric_partition(
        t0, "region0", "region1", duration=120.0
    )


def _build_overload_storm(deployment, t0: float) -> FaultSchedule:
    # Overload is the fault: cap the admission window at a realistic
    # serving rate, then storm the front door at ~2.5x that rate. The
    # excess is rejected loudly (visible in the SLA stats and the
    # repro.obs counters); probes issued mid-storm may themselves be
    # rejected — a loud failure, never a silent wrong answer — and the
    # recovered probe shows the window draining back to normal.
    deployment.proxy.admission.max_qps = 60.0
    return FaultSchedule().query_storm(t0, "events", qps=150.0, duration=10.0)


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "host-crash",
            "two shard-owning hosts in region0 crash and recover",
            _build_host_crash,
        ),
        Scenario(
            "crash-storm",
            "one shard-owning host crashes in every region, staggered",
            _build_crash_storm,
        ),
        Scenario(
            "host-hang",
            "a shard-owning host hangs (up but unresponsive) for 90s",
            _build_host_hang,
        ),
        Scenario(
            "slow-disk",
            "one host's service times amplified 500x for two minutes",
            _build_slow_disk,
        ),
        Scenario(
            "tail-amplify",
            "all of region0's service times amplified 200x",
            _build_tail_amplify,
        ),
        Scenario(
            "region-partition",
            "region0 unreachable from the proxy tier for five minutes",
            _build_region_partition,
        ),
        Scenario(
            "session-expiry",
            "a healthy host loses its datastore session (false positive)",
            _build_session_expiry,
        ),
        Scenario(
            "sm-failover",
            "SM server instance replaced (republish storm), then a crash",
            _build_sm_failover,
        ),
        Scenario(
            "migration-interrupt",
            "a live migration's target dies mid-protocol",
            _build_migration_interrupt,
        ),
        Scenario(
            "scale-in-crash",
            "a decommissioning host and a warming-up host both crash "
            "mid-operation; both staged operations abort cleanly",
            _build_scale_in_crash,
        ),
        Scenario(
            "overload-storm",
            "a 2.5x-saturation query storm against a capped admission window",
            _build_overload_storm,
        ),
        Scenario(
            "metadata-leader-crash",
            "the consensus metadata leader crashes twice; elections re-form "
            "a quorum without losing a committed entry",
            _build_metadata_leader_crash,
            replicated=True,
        ),
        Scenario(
            "asymmetric-partition",
            "a one-way region0->region1 link cut; replication routes "
            "around it and catches up after the heal",
            _build_asymmetric_partition,
            replicated=True,
        ),
    )
}


def list_scenarios() -> list[tuple[str, str]]:
    """(name, description) pairs, in deterministic order."""
    return [(name, SCENARIOS[name].description) for name in sorted(SCENARIOS)]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def _make_rows(schema, count: int, seed: int) -> list[dict]:
    generator = np.random.default_rng(seed)
    rows = []
    for __ in range(count):
        row = {}
        for dim in schema.dimensions:
            row[dim.name] = int(generator.integers(dim.cardinality))
        for metric in schema.metrics:
            row[metric.name] = float(generator.integers(1, 100))
        rows.append(row)
    return rows


def build_chaos_deployment(seed: int, *, replicated: bool = False):
    """A small, loaded three-region deployment for chaos runs.

    Returns ``(deployment, expected_total)`` where ``expected_total`` is
    the ground-truth ``sum(clicks)`` computed from the loaded rows —
    independent of the query path being chaos-tested.
    ``replicated=True`` puts the shard maps in the consensus-replicated
    metadata store (home region region0).
    """
    from repro.core.deployment import CubrickDeployment, DeploymentConfig
    from repro.cubrick.schema import Dimension, Metric, TableSchema

    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=seed,
            regions=3,
            racks_per_region=2,
            hosts_per_rack=3,
            max_shards=10_000,
            replicated_metadata=replicated,
            home_region="region0" if replicated else None,
        )
    )
    schema = TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30, range_size=7)],
        metrics=[Metric("clicks")],
    )
    deployment.create_table(schema, num_partitions=3)
    rows = _make_rows(schema, 300, seed)
    deployment.load("events", rows)
    expected_total = float(sum(row["clicks"] for row in rows))
    return deployment, expected_total


def _probe_query():
    from repro.cubrick.query import AggFunc, Aggregation, Query

    return Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])


def _probe(
    deployment: "CubrickDeployment",
    checker: InvariantChecker,
    policy: ResiliencePolicy,
    expected_total: float,
    label: str,
) -> ProbeRecord:
    now = deployment.simulator.now
    query = _probe_query()
    try:
        result = deployment.proxy.submit(query, policy=policy)
    except (
        AdmissionControlError,
        QueryFailedError,
        RegionUnavailableError,
    ) as exc:
        # A *failed* query never returned rows, so it cannot violate the
        # no-silent-row-loss invariant; it only hurts the SLA stats.
        return ProbeRecord(
            time=now,
            label=label,
            outcome=f"failed:{type(exc).__name__}",
            expected_total=expected_total,
        )
    metadata = result.metadata
    total = float(result.rows[0][-1]) if result.rows else 0.0
    completeness = metadata.get(
        "completeness", metadata.get("coverage", 1.0)
    )
    integrity = checker.check_query_integrity(
        result, expected_total, total=total, label=f"integrity:{label}"
    )
    return ProbeRecord(
        time=now,
        label=label,
        outcome="degraded" if metadata.get("degraded") else "ok",
        attempts=int(metadata.get("attempts", 0)),
        completeness=float(completeness),
        total=total,
        expected_total=expected_total,
        integrity_ok=integrity.ok,
    )


def run_scenario(
    name: str,
    seed: int = 0,
    *,
    policy: Optional[ResiliencePolicy] = None,
) -> ChaosReport:
    """Run one named scenario end to end; returns its :class:`ChaosReport`."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown chaos scenario {name!r} (known: {known})"
        ) from None
    if policy is None:
        policy = ResiliencePolicy.resilient()

    deployment, expected_total = build_chaos_deployment(
        seed, replicated=scenario.replicated
    )
    report = ChaosReport(scenario=name, seed=seed)
    checker = InvariantChecker(deployment)
    injector = ChaosInjector(deployment)

    horizon = FAULT_START + 24 * 3600.0
    deployment.start_background_maintenance(
        collect_interval=30.0, balance_interval=60.0, until=horizon
    )
    deployment.simulator.run_until(WARMUP)

    report.probes.append(
        _probe(deployment, checker, policy, expected_total, "baseline")
    )
    report.invariants.append(checker.check_safety(label="baseline"))

    schedule = scenario.build(deployment, FAULT_START)
    specs = schedule.sorted_specs()
    injector.install(schedule)

    for spec in specs:
        deployment.simulator.run_until(spec.at + 1.0)
        report.probes.append(
            _probe(
                deployment,
                checker,
                policy,
                expected_total,
                f"during:{spec.kind.value}",
            )
        )
        report.invariants.append(
            checker.check_safety(label=f"after:{spec.kind.value}")
        )

    deployment.simulator.run_until(schedule.end_time + SETTLE)
    report.probes.append(
        _probe(deployment, checker, policy, expected_total, "recovered")
    )
    report.invariants.append(checker.check_all(label="converged"))

    report.faults = [spec.render() for spec in specs]
    proxy = deployment.proxy
    report.sla = {
        "queries": len(proxy.query_log),
        "success_ratio": proxy.success_ratio(),
        "degraded_ratio": proxy.degraded_ratio(),
        "min_completeness": min(
            (p.completeness for p in report.probes), default=1.0
        ),
        "faults_injected": len(injector.applied),
    }
    deployment.obs.events.emit(
        "repro.chaos.scenario_finished",
        scenario=name,
        seed=seed,
        ok=report.ok,
        probes=len(report.probes),
    )
    return report
