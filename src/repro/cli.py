"""Command-line interface: run the paper's analyses from a shell.

Usage::

    python -m repro.cli wall --failure-probability 1e-4 --sla 0.99
    python -m repro.cli curve --fanouts 1,10,100,1000
    python -m repro.cli fanout-experiment --fanouts 1,4,8 --queries 200
    python -m repro.cli collisions --tables 500 --max-shards 300000
    python -m repro.cli smc-delay --samples 100000
    python -m repro.cli sql "SELECT sum(clicks) FROM events GROUP BY day"
    python -m repro.cli explain "SELECT count(*) FROM events JOIN \\
        dim_users ON events.user_id = dim_users.user_id"

Each subcommand prints the corresponding paper figure's series as text.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.wall import (
    WallAnalysis,
    required_failure_probability,
    success_curve,
)
from repro.cubrick.partitioning import PartitioningPolicy
from repro.cubrick.sharding import MonotonicHashMapper, analyze_collisions
from repro.smc.tree import PropagationTree
from repro.workloads.fanout_experiment import run_fanout_experiment
from repro.workloads.tables import TenantWorkload, expected_partitions


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def cmd_wall(args: argparse.Namespace) -> int:
    analysis = WallAnalysis.compute(args.failure_probability, args.sla)
    print(f"failure probability : {analysis.failure_probability:g}")
    print(f"SLA                 : {analysis.sla:.2%}")
    print(f"scalability wall    : {analysis.wall_fanout} servers")
    print(f"success at wall     : {analysis.success_at_wall:.4%}")
    print(f"success at 2x wall  : {analysis.success_at_twice_wall:.4%}")
    return 0


def cmd_curve(args: argparse.Namespace) -> int:
    values = success_curve(args.fanouts, args.failure_probability)
    print(f"{'fanout':>8}  {'success':>10}  meets {args.sla:.0%} SLA")
    for fanout, value in zip(args.fanouts, values):
        meets = "yes" if value >= args.sla else "NO"
        print(f"{fanout:>8}  {value:>10.4%}  {meets}")
    return 0


def cmd_required_reliability(args: argparse.Namespace) -> int:
    p = required_failure_probability(args.fanout, args.sla)
    print(f"to run fan-out {args.fanout} at {args.sla:.2%} success, "
          f"per-server failure probability must be below {p:.3e}")
    return 0


def _fanout_deployment(args: argparse.Namespace) -> CubrickDeployment:
    return CubrickDeployment(
        DeploymentConfig(
            seed=args.seed, regions=2, racks_per_region=2,
            hosts_per_rack=max(4, max(args.fanouts) // 4),
        )
    )


def cmd_fanout_experiment(args: argparse.Namespace) -> int:
    deployment = _fanout_deployment(args)
    result = run_fanout_experiment(
        deployment, args.fanouts, queries_per_table=args.queries
    )
    # Percentiles come from the telemetry histograms (retained samples,
    # interpolated readout), not a side-channel latency list.
    print(f"{'fanout':>7} {'queries':>8} {'p50ms':>8} {'p95ms':>8} "
          f"{'p99ms':>8} {'maxms':>8}")
    for row in result.rows:
        histogram = deployment.obs.metrics.get(
            "workloads.fanout.latency_seconds", fanout=row.fanout
        )
        readout = histogram.readout()
        print(f"{row.fanout:>7} {readout['count']:>8} "
              f"{readout['p50'] * 1e3:>8.1f} {readout['p95'] * 1e3:>8.1f} "
              f"{readout['p99'] * 1e3:>8.1f} {readout['max'] * 1e3:>8.1f}")
    failures = sum(result.failed_queries.values())
    if failures:
        print(f"failed queries: {failures}")
    if args.obs_json:
        deployment.obs.dump(args.obs_json)
        print(f"telemetry written to {args.obs_json}")
    return 0


def _print_span(span: dict, depth: int = 0) -> None:
    indent = "  " * depth
    labels = " ".join(
        f"{k}={v}" for k, v in sorted(span.get("labels", {}).items())
    )
    duration_ms = span["duration"] * 1e3
    print(f"{indent}{span['name']} {duration_ms:8.2f} ms"
          + (f"  [{labels}]" if labels else ""))
    for child in span.get("children", []):
        _print_span(child, depth + 1)


def cmd_obs(args: argparse.Namespace) -> int:
    """Run a seeded fanout workload and print its telemetry."""
    deployment = _fanout_deployment(args)
    result = run_fanout_experiment(
        deployment, args.fanouts, queries_per_table=args.queries
    )
    obs = deployment.obs

    print(f"== metrics ({len(obs.metrics)} instruments) ==")
    for entry in obs.metrics.snapshot():
        labels = " ".join(
            f"{k}={v}" for k, v in sorted(entry["labels"].items())
        )
        key = f"{entry['name']}" + (f"{{{labels}}}" if labels else "")
        if entry["type"] in ("counter", "gauge"):
            print(f"  {key} = {entry['value']:g}")
        elif entry["count"] == 0:
            print(f"  {key} count=0")
        else:
            print(f"  {key} count={entry['count']} "
                  f"p50={entry['p50']:.6f} p95={entry['p95']:.6f} "
                  f"p99={entry['p99']:.6f}")

    print(f"\n== slowest traces (top {args.top} per kind, "
          f"{obs.tracer.finished_traces} finished) ==")
    by_name: dict[str, list] = {}
    for span in obs.tracer.slowest():
        by_name.setdefault(span.name, []).append(span)
    for name in sorted(by_name):
        for span in by_name[name][:args.top]:
            _print_span(span.to_dict())

    events = obs.events
    print(f"\n== events ({events.emitted} emitted, "
          f"{events.dropped} dropped) ==")
    if events.dropped:
        print(f"  !! ring overflow: {events.dropped} event(s) dropped "
              "(counted in repro.obs.events_dropped)")
    for line in events.to_jsonl(args.events).splitlines():
        print(f"  {line}")

    failures = sum(result.failed_queries.values())
    if failures:
        print(f"\nfailed queries: {failures}")
    if args.json:
        obs.dump(args.json)
        print(f"\ntelemetry written to {args.json}")
    return 0


def _print_stage_table(stages: dict, wall: Optional[float] = None) -> None:
    """One stage-breakdown table: self time (+share of wall), volumes."""
    total = wall if wall is not None else sum(
        s.self_time for s in stages.values()
    )
    print(f"    {'stage':<28} {'self':>10}  {'share':>6} "
          f"{'spans':>6} {'rows':>9}")
    ordered = sorted(
        stages.values(), key=lambda s: (-s.self_time, s.stage)
    )
    for stats in ordered:
        share = stats.self_time / total if total > 0 else 0.0
        print(f"    {stats.stage:<28} {stats.self_time * 1e3:>8.2f}ms "
              f"{share:>6.1%} {stats.spans:>6} {stats.rows_scanned:>9}")


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a seeded overload storm end to end.

    Runs the managed overload demo with the SLO engine attached on the
    DES clock, then prints the top-N queries by wall time with
    per-stage self-time breakdowns (stage self-times sum to each
    query's wall time), stage and per-tenant aggregates, the
    error-budget ledger and the burn-rate alert timeline. Output is
    byte-identical for identical seeds; ``--flame``/``--prom``/
    ``--spans`` write the flamegraph collapsed stacks, Prometheus text
    and OTLP-ish span dump to files.
    """
    from repro.obs import Profiler, prometheus_text, spans_jsonl
    from repro.obs.export import write_text
    from repro.workloads.loadgen import run_profiled_overload

    report, deployment, __, engine = run_profiled_overload(
        args.seed,
        policy=args.policy,
        saturation=args.saturation,
        duration=args.duration,
    )
    obs = deployment.obs
    profiler = Profiler(obs)
    profiles = profiler.profiles()

    print(f"storm: {report.rate:.1f} qps for {report.duration:.1f}s "
          f"({report.saturation:g}x), admitted success ratio "
          f"{report.success_ratio:.4f}, drained "
          f"{'yes' if report.drained else 'NO'}")
    print(f"\n== query profiles: {len(profiles)} traced queries retained "
          f"(seed={args.seed} policy={args.policy} "
          f"saturation={args.saturation:g}x) ==")
    ranked = sorted(profiles, key=lambda p: (-p.wall_time, p.trace_id))
    for profile in ranked[:args.top]:
        print(f"\n  trace {profile.trace_id}: table={profile.table} "
              f"tenant={profile.tenant} outcome={profile.outcome} "
              f"wall={profile.wall_time * 1e3:.2f}ms "
              f"(stages sum to {profile.self_time_total * 1e3:.2f}ms)")
        _print_stage_table(profile.stages, profile.wall_time)

    print("\n== stage totals (all retained queries) ==")
    _print_stage_table(profiler.by_stage(profiles))

    print("\n== per-tenant stage totals ==")
    for tenant, stages in profiler.by_tenant(profiles).items():
        wall = sum(s.self_time for s in stages.values())
        print(f"  {tenant} ({wall * 1e3:.2f}ms attributed)")
        _print_stage_table(stages)

    print("\n== error-budget ledger ==")
    print(engine.render_ledger(), end="")

    print("\n== burn-rate alerts ==")
    timeline = engine.alert_timeline()
    print(timeline if timeline else "  (no alert transitions)\n", end="")

    dropped = obs.events.dropped
    if dropped:
        print(f"\n!! event ring overflow: {dropped} event(s) dropped")

    if args.flame:
        write_text(args.flame, profiler.folded(profiles))
        print(f"\nflamegraph collapsed stacks written to {args.flame}")
    if args.prom:
        write_text(args.prom, prometheus_text(obs.metrics))
        print(f"prometheus text written to {args.prom}")
    if args.spans:
        write_text(args.spans, spans_jsonl(obs))
        print(f"span dump written to {args.spans}")
    return 0


def cmd_collisions(args: argparse.Namespace) -> int:
    workload = TenantWorkload.generate(args.tables, seed=args.seed)
    policy = PartitioningPolicy()
    population = {
        spec.name: expected_partitions(spec.rows, policy)
        for spec in workload.specs
    }
    rng = np.random.default_rng(args.seed)
    mapper = MonotonicHashMapper(max_shards=args.max_shards)
    used = set()
    for table, count in population.items():
        used.update(mapper.shards_of(table, count))
    shard_to_host = {
        shard: f"host{rng.integers(args.hosts):04d}" for shard in sorted(used)
    }
    reportage = analyze_collisions(population, mapper, shard_to_host)
    print(f"tables                      : {reportage.tables}")
    print(f"shard collisions            : "
          f"{reportage.shard_collision_fraction:.2%}")
    print(f"cross-table partition coll. : {reportage.cross_table_fraction:.2%}")
    print(f"same-table partition coll.  : {reportage.same_table_fraction:.2%}")
    return 0


def _sql_demo_deployment(seed: int, rows: int) -> CubrickDeployment:
    """A seeded demo deployment for the ``sql``/``explain`` commands.

    Three tables exercise every join strategy: ``events(day[30],
    country[50], user_id[400]; clicks, cost)`` is the sharded fact;
    ``dim_users(user_id[400], tier[4]; weight)`` is sharded too (so
    joining it needs a broadcast or partitioned-hash plan); ``dim_geo``
    is a replicated country attribute table answered node-locally.
    """
    deployment = CubrickDeployment(
        DeploymentConfig(seed=seed, regions=2, racks_per_region=2,
                         hosts_per_rack=3)
    )
    from repro.cubrick.schema import Dimension, Metric, TableSchema

    deployment.create_table(TableSchema.build(
        "events",
        dimensions=[Dimension("day", 30, range_size=7),
                    Dimension("country", 50, range_size=10),
                    Dimension("user_id", 400, range_size=50)],
        metrics=[Metric("clicks"), Metric("cost")],
    ))
    deployment.create_table(TableSchema.build(
        "dim_users",
        dimensions=[Dimension("user_id", 400, range_size=50),
                    Dimension("tier", 4, range_size=1)],
        metrics=[Metric("weight")],
    ))
    deployment.create_table(
        TableSchema.build(
            "dim_geo",
            dimensions=[Dimension("country", 50, range_size=10),
                        Dimension("region", 8, range_size=1)],
            metrics=[Metric("population")],
        ),
        replicated=True,
    )
    rng = np.random.default_rng(seed)
    deployment.load(
        "events",
        [{
            "day": int(rng.integers(30)),
            "country": min(int(rng.zipf(1.5)) - 1, 49),
            "user_id": int(rng.integers(400)),
            "clicks": float(rng.integers(1, 20)),
            "cost": float(rng.exponential(2.0)),
        } for __ in range(rows)],
    )
    deployment.load(
        "dim_users",
        [{
            "user_id": user_id,
            "tier": user_id % 4,
            "weight": 1.0,
        } for user_id in range(400)],
    )
    deployment.load(
        "dim_geo",
        [{
            "country": country,
            "region": country % 8,
            "population": float(1000 + country),
        } for country in range(50)],
    )
    deployment.simulator.run_until(60.0)
    return deployment


def cmd_sql(args: argparse.Namespace) -> int:
    """Run SQL against a freshly built demo deployment.

    The fact table is ``events(day[30], country[50], user_id[400],
    clicks, cost)`` with Zipf-skewed synthetic rows, plus a *sharded*
    ``dim_users`` join table and a *replicated* ``dim_geo`` one —
    enough to explore the dialect and every join strategy:

        python -m repro.cli sql \\
            "SELECT sum(clicks) FROM events GROUP BY day LIMIT 5"
    """
    deployment = _sql_demo_deployment(args.seed, args.rows)
    result = deployment.sql(args.sql)
    print("  ".join(result.columns))
    for row in result.rows:
        print("  ".join(
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ))
    strategies = result.metadata.get("join_strategies")
    print(f"-- {len(result.rows)} row(s), "
          f"latency {result.metadata['latency'] * 1e3:.1f} ms, "
          f"fan-out {result.metadata['fanout']}"
          + (f", region {result.metadata['region']}"
             if "region" in result.metadata else "")
          + (f", joins {strategies}" if strategies else ""))
    if args.obs_json:
        deployment.obs.dump(args.obs_json)
        print(f"telemetry written to {args.obs_json}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the deterministic EXPLAIN text for a statement.

    Plans against the same demo deployment as the ``sql`` command
    without executing anything; byte-identical for identical
    ``(seed, rows, statement)``.

        python -m repro.cli explain \\
            "SELECT count(*) FROM events WHERE day < 7"
    """
    deployment = _sql_demo_deployment(args.seed, args.rows)
    print(deployment.explain(args.sql, optimize=not args.no_optimize),
          end="")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a named chaos scenario and print its invariant/SLA report.

    The report is byte-identical for identical ``(scenario, seed)``
    pairs — the CI determinism gate runs this twice and diffs.
    """
    from repro.chaos import list_scenarios, run_scenario

    if args.list:
        for name, description in list_scenarios():
            print(f"{name:<20} {description}")
        return 0
    if args.scenario is None:
        print("error: --scenario is required (or use --list)",
              file=sys.stderr)
        return 2
    report = run_scenario(args.scenario, seed=args.seed)
    print(report.render(), end="")
    return 0 if report.ok else 1


def cmd_overload(args: argparse.Namespace) -> int:
    """Run the overload-vs-SLA experiment and print its report(s).

    With ``--policy both`` (the default) the same seeded storm is run
    against the managed and legacy policies back to back — the paper's
    trade made visible: shed explicitly and defend the SLA for what you
    admitted, or admit everything and collapse it for everyone. Reports
    are byte-identical for identical seeds — the CI determinism gate
    runs this twice and diffs.
    """
    from repro.workloads.loadgen import run_overload_experiment

    policies = (
        ["managed", "legacy"] if args.policy == "both" else [args.policy]
    )
    ok = True
    for index, policy in enumerate(policies):
        report = run_overload_experiment(
            args.seed,
            policy=policy,
            saturation=args.saturation,
            duration=args.duration,
        )
        if index:
            print()
        print(report.render(), end="")
        if policy == "managed" and not report.sla_met:
            ok = False
    return 0 if ok else 1


def cmd_autoscale(args: argparse.Namespace) -> int:
    """Run the wall-breach experiment and print its report.

    The managed arm (elastic control plane: staged provisioning, online
    resharding, fan-out capped at the wall) and the naive full-sharding
    baseline ride the same seeded growth ramp. Exit status is non-zero
    unless the managed arm held the SLA *and* the baseline collapsed —
    the paper's wall made operational. Reports are byte-identical for
    identical seeds.
    """
    from repro.autoscale import run_autoscale_experiment

    report = run_autoscale_experiment(
        args.seed,
        phases=args.phases,
        queries_per_phase=args.queries,
    )
    print(report.render(), end="")
    return 0 if report.sla_met and report.baseline_collapsed else 1


def cmd_regionfail(args: argparse.Namespace) -> int:
    """Run the region-failure experiment and print its report.

    The managed arm (three regions, consensus-replicated metadata,
    home-region query preference) and a single-region baseline ride the
    same traffic while the home region fully partitions mid-run. Exit
    status is non-zero unless the managed arm held the windowed SLA
    through the partition, the baseline collapsed, *and* every consensus
    safety invariant held through the elections. Reports are
    byte-identical for identical seeds.
    """
    from repro.consensus.demo import run_regionfail_experiment

    report = run_regionfail_experiment(
        args.seed,
        duration=args.duration,
        queries=args.queries,
    )
    print(report.render(), end="")
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the simulated fleet over TCP until SIGTERM.

    Builds the standard serving deployment (seeded, warmed up under the
    virtual clock), binds the asyncio gateway, installs SIGTERM/SIGINT
    handlers for graceful drain, and blocks until drained. The fleet
    build is byte-reproducible; only the serving itself runs on the
    wall clock.
    """
    import asyncio

    from repro.serve import ServeGateway, build_serving_deployment

    async def _serve() -> int:
        serving = build_serving_deployment(args.seed)
        gateway = ServeGateway(
            serving,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            metrics_path=args.metrics,
        )
        host, port = await gateway.start()
        gateway.install_signal_handlers()
        print(f"repro serve: listening on {host}:{port} "
              f"(seed={args.seed}); SIGTERM drains gracefully",
              flush=True)
        await gateway.serve_forever()
        snapshot = gateway.snapshot()
        print(f"drained: {snapshot['responses_total']} responses, "
              f"{snapshot['protocol_errors']} protocol errors")
        return 0

    return asyncio.run(_serve())


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Run the closed-loop serving benchmark and write BENCH_serve.json.

    Boots the gateway in-process on a loopback port, drives it with N
    concurrent closed-loop asyncio clients (Zipf tenant skew, fixed
    per-tenant dashboards) and reports sustained QPS, p50/p95/p99,
    admission rejects and cache hit rate.
    """
    import asyncio

    from repro.serve import render_report, run_bench_async, write_report

    report = asyncio.run(
        run_bench_async(
            clients=args.clients,
            duration=args.duration,
            seed=args.seed,
            tenants=args.tenants,
            think_time=args.think_time,
        )
    )
    print(render_report(report), end="")
    if args.json:
        write_report(report, args.json)
        print(f"report written to {args.json}")
    ok = report["ok"] > 0 and report["protocol_errors"] == 0
    return 0 if ok else 1


def cmd_smc_delay(args: argparse.Namespace) -> int:
    tree = PropagationTree()
    rng = np.random.default_rng(args.seed)
    delays = tree.sample_delays(rng, args.samples)
    for percentile in (50, 90, 99, 99.9):
        print(f"p{percentile:<5} {np.percentile(delays, percentile):6.2f} s")
    print(f"mean   {delays.mean():6.2f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Breaching the Scalability Wall' "
                    "(ICDE 2021): run the paper's analyses from a shell.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    wall = sub.add_parser("wall", help="locate the scalability wall (Fig 1)")
    wall.add_argument("--failure-probability", type=float, default=1e-4)
    wall.add_argument("--sla", type=float, default=0.99)
    wall.set_defaults(func=cmd_wall)

    curve = sub.add_parser("curve", help="success-ratio curve (Figs 1-2)")
    curve.add_argument("--failure-probability", type=float, default=1e-4)
    curve.add_argument("--sla", type=float, default=0.99)
    curve.add_argument(
        "--fanouts", type=_parse_int_list,
        default=[1, 10, 50, 100, 200, 500, 1000],
    )
    curve.set_defaults(func=cmd_curve)

    required = sub.add_parser(
        "required-reliability",
        help="failure probability needed for a fan-out to meet an SLA",
    )
    required.add_argument("--fanout", type=int, required=True)
    required.add_argument("--sla", type=float, default=0.99)
    required.set_defaults(func=cmd_required_reliability)

    fanout = sub.add_parser(
        "fanout-experiment",
        help="integrated latency-vs-fanout run (Fig 5)",
    )
    fanout.add_argument("--fanouts", type=_parse_int_list, default=[1, 4, 8])
    fanout.add_argument("--queries", type=int, default=200)
    fanout.add_argument("--seed", type=int, default=0)
    fanout.add_argument(
        "--obs-json", metavar="PATH", default=None,
        help="write the full telemetry export (JSON) to PATH",
    )
    fanout.set_defaults(func=cmd_fanout_experiment)

    obs = sub.add_parser(
        "obs",
        help="run a seeded workload and print its telemetry "
             "(metrics, traces, events)",
    )
    obs.add_argument("--fanouts", type=_parse_int_list, default=[1, 4, 8])
    obs.add_argument("--queries", type=int, default=200)
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--top", type=int, default=3,
                     help="slowest traces to print per trace kind")
    obs.add_argument("--events", type=int, default=20,
                     help="recent structured events to print")
    obs.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full telemetry export (JSON) to PATH",
    )
    obs.set_defaults(func=cmd_obs)

    profile = sub.add_parser(
        "profile",
        help="profile a seeded overload storm: per-stage breakdowns, "
             "SLO error budgets, flamegraph/Prometheus/span exports",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--policy", choices=("managed", "legacy"), default="managed"
    )
    profile.add_argument("--saturation", type=float, default=5.0,
                         help="arrival rate as a multiple of capacity")
    profile.add_argument("--duration", type=float, default=20.0,
                         help="storm duration in virtual seconds")
    profile.add_argument("--top", type=int, default=5,
                         help="queries to break down, slowest first")
    profile.add_argument("--flame", metavar="PATH", default=None,
                         help="write flamegraph collapsed stacks to PATH")
    profile.add_argument("--prom", metavar="PATH", default=None,
                         help="write the Prometheus text export to PATH")
    profile.add_argument("--spans", metavar="PATH", default=None,
                         help="write the OTLP-ish span dump (JSONL) to PATH")
    profile.set_defaults(func=cmd_profile)

    collisions = sub.add_parser(
        "collisions", help="collision census (Fig 4a)"
    )
    collisions.add_argument("--tables", type=int, default=500)
    collisions.add_argument("--max-shards", type=int, default=300_000)
    collisions.add_argument("--hosts", type=int, default=500)
    collisions.add_argument("--seed", type=int, default=0)
    collisions.set_defaults(func=cmd_collisions)

    for name in ("sql", "demo-sql"):  # demo-sql: backward-compat alias
        demo = sub.add_parser(
            name,
            help="run SQL against a synthetic demo deployment "
                 "(sharded fact + sharded and replicated join tables)",
        )
        demo.add_argument("sql", help="the SQL statement to execute")
        demo.add_argument("--rows", type=int, default=5000)
        demo.add_argument("--seed", type=int, default=0)
        demo.add_argument(
            "--obs-json", metavar="PATH", default=None,
            help="write the full telemetry export (JSON) to PATH",
        )
        demo.set_defaults(func=cmd_sql)

    explain = sub.add_parser(
        "explain",
        help="print the deterministic EXPLAIN for a SQL statement "
             "against the demo deployment (no execution)",
    )
    explain.add_argument("sql", help="the SQL statement to explain")
    explain.add_argument("--rows", type=int, default=5000)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--no-optimize", action="store_true",
        help="skip optional rewrite rules (pushdown, pruning, "
             "hash-join selection)",
    )
    explain.set_defaults(func=cmd_explain)

    chaos = sub.add_parser(
        "chaos",
        help="run a named fault-injection scenario and print the "
             "invariant/SLA report",
    )
    chaos.add_argument("--scenario", default=None,
                       help="scenario name (see --list)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--list", action="store_true",
                       help="list available scenarios and exit")
    chaos.set_defaults(func=cmd_chaos)

    overload = sub.add_parser(
        "overload",
        help="run a seeded overload storm against the managed and "
             "legacy workload-management policies",
    )
    overload.add_argument(
        "--policy", choices=("managed", "legacy", "both"), default="both"
    )
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument("--saturation", type=float, default=5.0,
                          help="arrival rate as a multiple of capacity")
    overload.add_argument("--duration", type=float, default=20.0,
                          help="storm duration in virtual seconds")
    overload.set_defaults(func=cmd_overload)

    autoscale = sub.add_parser(
        "autoscale",
        help="run the wall-breach experiment: elastic control plane vs "
             "naive full-sharding baseline on the same growth ramp",
    )
    autoscale.add_argument("--seed", type=int, default=0)
    autoscale.add_argument("--phases", type=int, default=4)
    autoscale.add_argument("--queries", type=int, default=500,
                           help="queries per growth phase")
    autoscale.set_defaults(func=cmd_autoscale)

    regionfail = sub.add_parser(
        "regionfail",
        help="run the region-failure experiment: consensus metadata + "
             "cross-region failover vs a single-region baseline",
    )
    regionfail.add_argument("--seed", type=int, default=0)
    regionfail.add_argument("--duration", type=float, default=600.0,
                            help="traffic duration in virtual seconds")
    regionfail.add_argument("--queries", type=int, default=600,
                            help="queries spread over the traffic window")
    regionfail.set_defaults(func=cmd_regionfail)

    serve = sub.add_parser(
        "serve",
        help="serve the simulated fleet over TCP (length-prefixed JSON "
             "protocol; SIGTERM drains gracefully)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7432,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="per-connection in-flight request window")
    serve.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the Prometheus text export to PATH on drain",
    )
    serve.set_defaults(func=cmd_serve)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="closed-loop serving benchmark: N concurrent clients with "
             "Zipf tenant skew against an in-process gateway",
    )
    bench_serve.add_argument("--clients", type=int, default=200)
    bench_serve.add_argument("--duration", type=float, default=10.0,
                             help="measurement window in real seconds")
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument("--tenants", type=int, default=6)
    bench_serve.add_argument("--think-time", type=float, default=0.0,
                             help="per-client pause between requests")
    bench_serve.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable report (BENCH_serve.json) to PATH",
    )
    bench_serve.set_defaults(func=cmd_bench_serve)

    smc = sub.add_parser("smc-delay", help="SMC propagation delays (Fig 4c)")
    smc.add_argument("--samples", type=int, default=100_000)
    smc.add_argument("--seed", type=int, default=0)
    smc.set_defaults(func=cmd_smc_delay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into something that closed early (e.g. head).
        return 0


if __name__ == "__main__":
    sys.exit(main())
