"""Cluster substrate: hosts, racks, regions and datacenter automation.

This package models the physical fleet the paper's Cubrick deployment runs
on: thousands of hosts grouped into racks, racks grouped into regions
(Cubrick runs three regions, each holding a full copy of every table —
paper §IV-D), plus the datacenter-automation workflows of §IV-G (drains,
decommissions, repair pipeline, disaster exercises).
"""

from repro.cluster.host import Host, HostState
from repro.cluster.topology import Cluster, Rack, Region
from repro.cluster.automation import (
    AutomationRequest,
    DatacenterAutomation,
    MaintenanceKind,
)

__all__ = [
    "Host",
    "HostState",
    "Rack",
    "Region",
    "Cluster",
    "DatacenterAutomation",
    "AutomationRequest",
    "MaintenanceKind",
]
