"""Datacenter automation (paper §IV-G).

Large fleets see a constant stream of *planned* maintenance — server
decommissions, rack moves, power/network work, disaster-preparedness
exercises — on top of unplanned hardware failures. The paper stresses
that SM provides a centralized control plane for these requests and runs
safety checks before approving them:

  (a) the request must not compromise the application's fault-tolerance
      model (e.g. never take two replicas of a shard down at once),
  (b) it must not conflict with in-flight load-balancing operations, and
  (c) enough capacity must remain once the request completes.

This module implements that control plane against the simulated cluster.
Permanent failures flow through the repair pipeline, which is what
Figure 4f counts ("hosts sent to repair per day").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.host import HostState
from repro.cluster.topology import Cluster
from repro.sim.engine import DAY, Simulator


class MaintenanceKind(enum.Enum):
    """Why a host (or larger domain) needs to leave production."""

    REPAIR = "repair"  # unplanned permanent hardware failure
    DECOMMISSION = "decommission"
    RACK_MAINTENANCE = "rack_maintenance"
    POWER_MAINTENANCE = "power_maintenance"
    DISASTER_EXERCISE = "disaster_exercise"


@dataclass
class AutomationRequest:
    """One maintenance request handled by the control plane."""

    time: float
    kind: MaintenanceKind
    host_ids: list[str]
    approved: bool
    reason: str = ""
    completed_at: Optional[float] = None


@dataclass
class SafetyPolicy:
    """Safety checks applied before approving a maintenance request."""

    # Minimum fraction of the fleet that must stay available after the
    # request completes (check (c) in the paper).
    min_available_fraction: float = 0.7
    # Maximum hosts a single request may take down at once.
    max_hosts_per_request: int = 50

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_available_fraction <= 1.0:
            raise ValueError(
                f"min_available_fraction out of range: {self.min_available_fraction}"
            )
        if self.max_hosts_per_request <= 0:
            raise ValueError("max_hosts_per_request must be positive")


class DatacenterAutomation:
    """Centralized maintenance control plane integrated with SM.

    The automation calls ``on_drain(host_id)`` before taking a host out
    (giving SM a chance to migrate shards away gracefully) and
    ``on_return(host_id)`` when it comes back. Unplanned permanent
    failures skip the drain (the host is already gone) and are recorded
    directly into the repair pipeline.
    """

    def __init__(
        self,
        simulator: Simulator,
        cluster: Cluster,
        *,
        policy: SafetyPolicy | None = None,
        on_drain: Optional[Callable[[str], None]] = None,
        on_return: Optional[Callable[[str], None]] = None,
    ):
        self._simulator = simulator
        self._cluster = cluster
        self._policy = policy if policy is not None else SafetyPolicy()
        self._on_drain = on_drain
        self._on_return = on_return
        self.requests: list[AutomationRequest] = []
        self.repair_log: list[tuple[float, str]] = []  # (time, host_id)

    # ------------------------------------------------------------------
    # Safety checks
    # ------------------------------------------------------------------

    def _passes_safety_checks(self, host_ids: list[str]) -> tuple[bool, str]:
        if len(host_ids) > self._policy.max_hosts_per_request:
            return False, (
                f"request touches {len(host_ids)} hosts, limit is "
                f"{self._policy.max_hosts_per_request}"
            )
        total = len(self._cluster)
        available_now = len(self._cluster.available_hosts())
        remaining = available_now - len(host_ids)
        if total and remaining / total < self._policy.min_available_fraction:
            return False, (
                f"would leave {remaining}/{total} hosts available, below the "
                f"{self._policy.min_available_fraction:.0%} floor"
            )
        return True, ""

    # ------------------------------------------------------------------
    # Planned maintenance
    # ------------------------------------------------------------------

    def request_maintenance(
        self,
        kind: MaintenanceKind,
        host_ids: list[str],
        *,
        duration: float = DAY,
    ) -> AutomationRequest:
        """Submit a planned maintenance request; drain approved hosts.

        Returns the request record; ``approved`` is False if a safety
        check failed (the paper's check (a)/(c) behaviour), in which case
        nothing is drained.
        """
        ok, reason = self._passes_safety_checks(host_ids)
        request = AutomationRequest(
            time=self._simulator.now,
            kind=kind,
            host_ids=list(host_ids),
            approved=ok,
            reason=reason,
        )
        self.requests.append(request)
        if not ok:
            return request
        for host_id in host_ids:
            host = self._cluster.host(host_id)
            host.start_drain()
            if self._on_drain is not None:
                self._on_drain(host_id)
            host.finish_drain()

        def complete() -> None:
            request.completed_at = self._simulator.now
            for hid in host_ids:
                host = self._cluster.host(hid)
                if kind is MaintenanceKind.DECOMMISSION:
                    host.decommission()
                else:
                    host.recover()
                    if self._on_return is not None:
                        self._on_return(hid)

        self._simulator.call_later(duration, complete)
        return request

    # ------------------------------------------------------------------
    # Unplanned failures (wired to the FailureInjector)
    # ------------------------------------------------------------------

    def handle_host_failure(self, host_id: str, permanent: bool) -> None:
        """React to an unplanned host failure."""
        host = self._cluster.host(host_id)
        host.fail(permanent=permanent)
        if permanent:
            self.repair_log.append((self._simulator.now, host_id))

    def handle_host_recovery(self, host_id: str) -> None:
        """A failed host returned to service (repaired or restarted)."""
        host = self._cluster.host(host_id)
        host.recover()
        if self._on_return is not None:
            self._on_return(host_id)

    # ------------------------------------------------------------------
    # Reporting (Figure 4f)
    # ------------------------------------------------------------------

    def repairs_per_day(self, horizon_days: int) -> list[int]:
        """Hosts sent to repair in each simulated day (Figure 4f series)."""
        if horizon_days <= 0:
            raise ValueError(f"horizon_days must be positive: {horizon_days}")
        buckets = [0] * horizon_days
        for time, _host_id in self.repair_log:
            day = int(time // DAY)
            if 0 <= day < horizon_days:
                buckets[day] += 1
        return buckets

    def hosts_in_repair(self) -> int:
        return sum(
            1 for h in self._cluster.hosts() if h.state is HostState.REPAIR
        )
