"""Host model: capacity, hardware generation and lifecycle state.

Hosts carry the attributes Shard Manager's load balancer cares about
(paper §III-A3): a *capacity* in the application's chosen load-balancing
metric (memory bytes for Cubrick generations 1-2, SSD bytes for
generation 3), which may differ between hosts (heterogeneous fleets) and
may be re-exported over time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

GIB = 1024 ** 3


class HostState(enum.Enum):
    """Lifecycle of a host as seen by Shard Manager and automation."""

    HEALTHY = "healthy"
    FAILED = "failed"  # transient failure; will recover
    DRAINING = "draining"  # automation asked for the host to be emptied
    DRAINED = "drained"  # empty, safe for maintenance
    REPAIR = "repair"  # permanent failure; in the repair pipeline
    DECOMMISSIONED = "decommissioned"  # removed from the fleet


@dataclass
class Host:
    """One server in the fleet."""

    host_id: str
    region: str
    rack: str
    memory_bytes: int = 256 * GIB
    ssd_bytes: int = 2048 * GIB
    hardware_generation: int = 1
    state: HostState = HostState.HEALTHY
    # Capacity as exported to SM, in the active load-balancing metric.
    # None means "use the default derivation" (e.g. 90% of memory).
    exported_capacity: int | None = None
    tags: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.ssd_bytes <= 0:
            raise ValueError(
                f"host {self.host_id}: capacities must be positive "
                f"(memory={self.memory_bytes}, ssd={self.ssd_bytes})"
            )

    @property
    def is_available(self) -> bool:
        """Whether the host can serve shards right now."""
        return self.state in (HostState.HEALTHY, HostState.DRAINING)

    @property
    def accepts_new_shards(self) -> bool:
        """Whether SM may place *new* shards here (draining hosts refuse)."""
        return self.state is HostState.HEALTHY

    def fail(self, *, permanent: bool) -> None:
        """Transition into a failure state."""
        self.state = HostState.REPAIR if permanent else HostState.FAILED

    def recover(self) -> None:
        """Return from a failure or maintenance into service."""
        self.state = HostState.HEALTHY

    def start_drain(self) -> None:
        self.state = HostState.DRAINING

    def finish_drain(self) -> None:
        self.state = HostState.DRAINED

    def decommission(self) -> None:
        self.state = HostState.DECOMMISSIONED

    def failure_domain(self, spread: str) -> str:
        """Identity of this host's failure domain at the given spread level.

        ``spread`` is one of ``"host"``, ``"rack"`` or ``"region"`` —
        SM lets applications choose how replicas must be spread
        (paper §III-A1).
        """
        if spread == "host":
            return self.host_id
        if spread == "rack":
            return f"{self.region}/{self.rack}"
        if spread == "region":
            return self.region
        raise ValueError(f"unknown spread domain: {spread!r}")
