"""Cluster topology: regions contain racks, racks contain hosts.

Cubrick's production deployment spans three regions, each storing a full
copy of all tables (paper §IV-D); queries never cross regions. The
topology object is the shared source of truth for host lookup, available
capacity and failure-domain grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.cluster.host import GIB, Host, HostState
from repro.errors import HostNotFoundError


@dataclass
class Rack:
    """A rack of hosts — one of SM's possible failure domains."""

    name: str
    region: str
    host_ids: list[str] = field(default_factory=list)


@dataclass
class Region:
    """A region/datacenter — Cubrick's replication and failure boundary."""

    name: str
    rack_names: list[str] = field(default_factory=list)
    available: bool = True  # regions can be drained wholesale (code pushes)


class Cluster:
    """The fleet: host registry plus region/rack grouping."""

    def __init__(self) -> None:
        self._hosts: dict[str, Host] = {}
        self._racks: dict[str, Rack] = {}
        self._regions: dict[str, Region] = {}
        # Directional inter-region links that are currently cut. A pair
        # (src, dst) here means traffic *from* src *to* dst is dropped;
        # the reverse direction is tracked independently, which is what
        # makes asymmetric partitions expressible.
        self._region_links_down: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        """Register a host, creating its rack/region entries as needed."""
        if host.host_id in self._hosts:
            raise ValueError(f"duplicate host id: {host.host_id}")
        self._hosts[host.host_id] = host
        region = self._regions.get(host.region)
        if region is None:
            region = Region(name=host.region)
            self._regions[host.region] = region
        rack_key = f"{host.region}/{host.rack}"
        rack = self._racks.get(rack_key)
        if rack is None:
            rack = Rack(name=host.rack, region=host.region)
            self._racks[rack_key] = rack
            region.rack_names.append(rack_key)
        rack.host_ids.append(host.host_id)
        return host

    @classmethod
    def build(
        cls,
        *,
        regions: int = 3,
        racks_per_region: int = 10,
        hosts_per_rack: int = 10,
        memory_bytes: int = 256 * GIB,
        ssd_bytes: int = 2048 * GIB,
    ) -> "Cluster":
        """Build a uniform cluster: ``regions × racks × hosts`` topology."""
        if regions <= 0 or racks_per_region <= 0 or hosts_per_rack <= 0:
            raise ValueError("cluster dimensions must be positive")
        cluster = cls()
        for r in range(regions):
            region_name = f"region{r}"
            for k in range(racks_per_region):
                rack_name = f"rack{k:03d}"
                for h in range(hosts_per_rack):
                    host_id = f"{region_name}-{rack_name}-host{h:03d}"
                    cluster.add_host(
                        Host(
                            host_id=host_id,
                            region=region_name,
                            rack=rack_name,
                            memory_bytes=memory_bytes,
                            ssd_bytes=ssd_bytes,
                        )
                    )
        return cluster

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def host(self, host_id: str) -> Host:
        try:
            return self._hosts[host_id]
        except KeyError:
            raise HostNotFoundError(f"unknown host: {host_id}") from None

    def __contains__(self, host_id: str) -> bool:
        return host_id in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)

    def hosts(self) -> Iterator[Host]:
        """All hosts, in insertion order (deterministic)."""
        return iter(self._hosts.values())

    def host_ids(self) -> list[str]:
        return list(self._hosts)

    def regions(self) -> list[Region]:
        return list(self._regions.values())

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise HostNotFoundError(f"unknown region: {name}") from None

    def region_names(self) -> list[str]:
        return list(self._regions)

    def hosts_in_region(self, region: str) -> list[Host]:
        return [h for h in self._hosts.values() if h.region == region]

    def hosts_in_rack(self, region: str, rack: str) -> list[Host]:
        key = f"{region}/{rack}"
        rack_obj = self._racks.get(key)
        if rack_obj is None:
            raise HostNotFoundError(f"unknown rack: {key}")
        return [self._hosts[hid] for hid in rack_obj.host_ids]

    def available_hosts(self, region: str | None = None) -> list[Host]:
        """Hosts that can serve traffic (optionally within one region)."""
        hosts: Iterable[Host] = self._hosts.values()
        if region is not None:
            hosts = (h for h in hosts if h.region == region)
        return [
            h
            for h in hosts
            if h.is_available and self._regions[h.region].available
        ]

    def placeable_hosts(self, region: str | None = None) -> list[Host]:
        """Hosts eligible to receive *new* shards."""
        return [h for h in self.available_hosts(region) if h.accepts_new_shards]

    # ------------------------------------------------------------------
    # Fleet statistics
    # ------------------------------------------------------------------

    def count_by_state(self) -> dict[HostState, int]:
        counts: dict[HostState, int] = {state: 0 for state in HostState}
        for host in self._hosts.values():
            counts[host.state] += 1
        return counts

    def set_region_available(self, region: str, available: bool) -> None:
        """Drain or restore an entire region (disaster exercise, code push)."""
        self.region(region).available = available

    # ------------------------------------------------------------------
    # Inter-region links (consensus / replication plane)
    # ------------------------------------------------------------------

    def set_region_link(self, src: str, dst: str, up: bool) -> None:
        """Cut or restore the directional link ``src → dst``."""
        self.region(src)
        self.region(dst)
        if up:
            self._region_links_down.discard((src, dst))
        else:
            self._region_links_down.add((src, dst))

    def region_link_up(self, src: str, dst: str) -> bool:
        """Can traffic currently flow from ``src`` to ``dst``?"""
        return (src, dst) not in self._region_links_down

    def isolate_region(self, region: str) -> None:
        """Cut both directions of every link touching ``region``."""
        for other in self._regions:
            if other != region:
                self.set_region_link(region, other, False)
                self.set_region_link(other, region, False)

    def rejoin_region(self, region: str) -> None:
        """Restore every link touching ``region``."""
        for other in self._regions:
            if other != region:
                self.set_region_link(region, other, True)
                self.set_region_link(other, region, True)

    def cut_region_links(self) -> list[tuple[str, str]]:
        """Currently-cut directional links, sorted (for reports)."""
        return sorted(self._region_links_down)
