"""Consensus-replicated metadata: a Raft-style log on the DES clock.

The paper's fleet spans three regions; this package gives the shard-map
metadata the availability story that deployment implies. One replica
per region runs a Raft-style protocol (seeded randomized elections,
majority-quorum commit, term-checked leadership, snapshot + log
compaction) over a partitionable directional-link transport, and
:class:`ReplicatedDatastore` exposes the familiar Datastore interface
on top — writes through the log, leased or quorum reads, region-local
sessions. Everything runs on the simulated clock, so seeded runs are
byte-identical and chaos faults (region partitions, leader crashes)
compose with the rest of the harness.
"""

from repro.consensus.group import KvStateMachine, MetadataCluster
from repro.consensus.log import LogEntry, RaftLog
from repro.consensus.node import (
    CANDIDATE,
    ELECTION_TIMEOUT,
    FOLLOWER,
    HEARTBEAT_INTERVAL,
    LEADER,
    LEASE_DURATION,
    RaftNode,
)
from repro.consensus.store import ReplicatedDatastore
from repro.consensus.transport import (
    MESSAGE_DELAY,
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
    Message,
    RequestVote,
    RequestVoteReply,
    Transport,
)

__all__ = [
    "AppendEntries",
    "AppendEntriesReply",
    "CANDIDATE",
    "ELECTION_TIMEOUT",
    "FOLLOWER",
    "HEARTBEAT_INTERVAL",
    "InstallSnapshot",
    "InstallSnapshotReply",
    "KvStateMachine",
    "LEADER",
    "LEASE_DURATION",
    "LogEntry",
    "MESSAGE_DELAY",
    "Message",
    "MetadataCluster",
    "RaftLog",
    "RaftNode",
    "ReplicatedDatastore",
    "RequestVote",
    "RequestVoteReply",
    "Transport",
]
