"""The region-failure experiment: consensus metadata + cross-region reads.

Two deployments ride the same traffic timeline and the same fault — a
full partition of the client's home region mid-traffic:

- **managed** — three regions with the consensus-replicated metadata
  plane (:class:`~repro.consensus.MetadataCluster`) and the proxy's
  home-region preference. When the home region partitions away, queries
  fail over to replica regions, the metadata quorum elects a new leader
  among the survivors, and the windowed success ratio never dips below
  the SLA.
- **baseline** — the same system squeezed into a single region. The
  partition takes its only region away; every query in the window fails
  and the success ratio flatlines until the heal.

Both arms are pure functions of the seed: identical seeds render
byte-identical reports (the CI determinism gate diffs two runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.faults import ChaosInjector, FaultSchedule
from repro.chaos.invariants import InvariantChecker
from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.cubrick.query import AggFunc, Aggregation, Query
from repro.cubrick.schema import Dimension, Metric, TableSchema
from repro.errors import (
    ConfigurationError,
    QueryFailedError,
    RegionUnavailableError,
)

#: The windowed success SLA the managed arm must hold through the fault.
SLA = 0.99
#: Success-ratio window width (seconds of virtual time).
WINDOW = 30.0
#: Virtual time both arms settle before traffic starts (bootstrap
#: election, SM heartbeats, first maintenance pass).
WARMUP = 30.0
#: Virtual time after traffic ends for catch-up replication to settle
#: before the convergence invariants are checked.
SETTLE = 120.0


@dataclass
class WindowStats:
    """One success-ratio window of one arm."""

    index: int
    start: float
    queries: int = 0
    succeeded: int = 0
    partitioned: bool = False  # overlaps the injected partition

    @property
    def success_ratio(self) -> float:
        return self.succeeded / self.queries if self.queries else 1.0


@dataclass
class RegionFailReport:
    """Deterministically renderable outcome of one regionfail run."""

    seed: int
    sla: float
    window: float
    partition_start: float  # absolute virtual time
    partition_duration: float
    home_region: str = "region0"
    managed_windows: list[WindowStats] = field(default_factory=list)
    baseline_windows: list[WindowStats] = field(default_factory=list)
    leader_timeline: list[str] = field(default_factory=list)
    invariant_lines: list[str] = field(default_factory=list)
    invariants_ok: bool = True
    cross_region_served: int = 0
    elections_won: int = 0
    log_commits: int = 0
    parked_writes: int = 0
    quorum_read_fallbacks: int = 0

    @staticmethod
    def _min_window(windows: list[WindowStats]) -> float:
        ratios = [w.success_ratio for w in windows if w.queries]
        return min(ratios) if ratios else 1.0

    @property
    def managed_min_window(self) -> float:
        return self._min_window(self.managed_windows)

    @property
    def baseline_min_window(self) -> float:
        return self._min_window(self.baseline_windows)

    @property
    def sla_met(self) -> bool:
        return self.managed_min_window >= self.sla

    @property
    def baseline_collapsed(self) -> bool:
        return self.baseline_min_window < self.sla

    @property
    def ok(self) -> bool:
        return self.sla_met and self.baseline_collapsed and self.invariants_ok

    def _window_lines(self, windows: list[WindowStats]) -> list[str]:
        lines = []
        for w in windows:
            flag = " [partitioned]" if w.partitioned else ""
            lines.append(
                f"    window {w.index:2d} [t={w.start:7.1f}] "
                f"success={w.success_ratio:.4f} "
                f"({w.succeeded}/{w.queries}){flag}"
            )
        return lines

    def render(self) -> str:
        lines = [
            f"regionfail experiment: seed={self.seed}",
            f"  sla={self.sla:.2f} window={self.window:.0f}s "
            f"partition=[{self.partition_start:.1f},"
            f"{self.partition_start + self.partition_duration:.1f}) "
            f"region={self.home_region}",
            f"  managed (3 regions, consensus metadata, "
            f"home={self.home_region}):",
        ]
        lines.extend(self._window_lines(self.managed_windows))
        lines.append(
            f"  managed: min-window={self.managed_min_window:.4f} "
            f"cross_region={self.cross_region_served} "
            f"elections_won={self.elections_won} "
            f"commits={self.log_commits} "
            f"parked_writes={self.parked_writes} "
            f"quorum_fallbacks={self.quorum_read_fallbacks}"
        )
        lines.append("  metadata leader timeline:")
        for entry in self.leader_timeline:
            lines.append(f"    {entry}")
        lines.append("  invariants:")
        lines.extend(f"    {line}" for line in self.invariant_lines)
        lines.append("  baseline (1 region):")
        lines.extend(self._window_lines(self.baseline_windows))
        lines.append(f"  baseline: min-window={self.baseline_min_window:.4f}")
        managed_verdict = "SLA HELD" if self.sla_met else "SLA BROKEN"
        baseline_verdict = (
            "COLLAPSED" if self.baseline_collapsed else "survived"
        )
        lines.append(
            f"  verdict: managed {managed_verdict} at "
            f"{self.managed_min_window:.4f}; baseline {baseline_verdict} at "
            f"{self.baseline_min_window:.4f}; invariants "
            f"{'PASS' if self.invariants_ok else 'FAIL'}"
        )
        return "\n".join(lines) + "\n"


_SCHEMA = TableSchema.build(
    "events",
    dimensions=[Dimension("day", 30, range_size=7)],
    metrics=[Metric("clicks")],
)


def _rows(seed: int, count: int) -> list[dict[str, float]]:
    rng = np.random.default_rng((seed, 1))
    return [
        {"day": int(rng.integers(30)), "clicks": float(rng.integers(1, 100))}
        for __ in range(count)
    ]


def _build(seed: int, *, regions: int, replicated: bool) -> CubrickDeployment:
    deployment = CubrickDeployment(
        DeploymentConfig(
            seed=seed,
            regions=regions,
            racks_per_region=2,
            hosts_per_rack=2,
            max_shards=10_000,
            replicated_metadata=replicated,
            home_region="region0",
        )
    )
    deployment.create_table(_SCHEMA, num_partitions=3)
    deployment.load("events", _rows(seed, 300))
    return deployment


def _run_traffic(
    deployment: CubrickDeployment,
    *,
    start: float,
    duration: float,
    queries: int,
    partition_at: float,
    partition_duration: float,
) -> list[WindowStats]:
    """Submit evenly spaced queries; bucket outcomes into windows."""
    query = Query.build("events", [Aggregation(AggFunc.SUM, "clicks")])
    count = int(np.ceil(duration / WINDOW))
    windows = [
        WindowStats(index=i, start=start + i * WINDOW) for i in range(count)
    ]
    for w in windows:
        w.partitioned = (
            w.start < partition_at + partition_duration
            and w.start + WINDOW > partition_at
        )

    def submit_one() -> None:
        now = deployment.simulator.now
        index = min(int((now - start) / WINDOW), count - 1)
        windows[index].queries += 1
        try:
            deployment.proxy.submit(query)
        except (QueryFailedError, RegionUnavailableError):
            pass
        else:
            windows[index].succeeded += 1

    spacing = duration / (queries + 1)
    for i in range(queries):
        deployment.simulator.call_later(
            start + (i + 1) * spacing - deployment.simulator.now, submit_one
        )
    return windows


def _sum_counter(deployment: CubrickDeployment, name: str,
                 label: str, values: list[str]) -> int:
    metrics = deployment.obs.metrics
    return int(sum(
        metrics.counter(name, **{label: value}).value for value in values
    ))


def _run_managed(
    seed: int, report: RegionFailReport,
    *, duration: float, queries: int,
) -> None:
    deployment = _build(seed, regions=3, replicated=True)
    horizon = WARMUP + duration + SETTLE
    deployment.start_background_maintenance(
        collect_interval=30.0, balance_interval=60.0, until=horizon
    )
    checker = InvariantChecker(deployment)
    injector = ChaosInjector(deployment)
    schedule = FaultSchedule().network_partition(
        report.partition_start, report.home_region,
        duration=report.partition_duration,
    )
    injector.install(schedule)
    deployment.simulator.run_until(WARMUP)
    report.managed_windows = _run_traffic(
        deployment,
        start=WARMUP, duration=duration, queries=queries,
        partition_at=report.partition_start,
        partition_duration=report.partition_duration,
    )

    invariants = []
    mid = report.partition_start + report.partition_duration / 2.0
    heal = report.partition_start + report.partition_duration
    deployment.simulator.run_until(mid)
    invariants.append(checker.check_safety(label="mid-partition"))
    deployment.simulator.run_until(heal + 5.0)
    invariants.append(checker.check_safety(label="after-heal"))
    deployment.simulator.run_until(WARMUP + duration + SETTLE)
    invariants.append(checker.check_all(label="converged"))

    report.invariant_lines = [
        line for inv in invariants for line in inv.render().splitlines()
    ]
    report.invariants_ok = all(inv.ok for inv in invariants)

    cluster = deployment.metadata_cluster
    report.leader_timeline = [
        f"term {term}: {', '.join(sorted(winners))}"
        for term, winners in sorted(cluster.leader_history().items())
    ]
    regions = deployment.region_names()
    report.cross_region_served = int(
        deployment.obs.metrics.counter(
            "cubrick.proxy.cross_region_served"
        ).value
    )
    report.elections_won = _sum_counter(
        deployment, "consensus.elections.won", "replica", regions
    )
    report.log_commits = _sum_counter(
        deployment, "consensus.log.commits", "replica", regions
    )
    report.parked_writes = _sum_counter(
        deployment, "consensus.store.parked_writes", "region", regions
    )
    report.quorum_read_fallbacks = _sum_counter(
        deployment, "consensus.quorum_read_fallbacks", "region", regions
    )


def _run_baseline(
    seed: int, report: RegionFailReport,
    *, duration: float, queries: int,
) -> None:
    """One region, no failover path: the partition takes everything."""
    deployment = _build(seed, regions=1, replicated=False)
    horizon = WARMUP + duration + SETTLE
    deployment.start_background_maintenance(
        collect_interval=30.0, balance_interval=60.0, until=horizon
    )
    injector = ChaosInjector(deployment)
    schedule = FaultSchedule().network_partition(
        report.partition_start, report.home_region,
        duration=report.partition_duration,
    )
    injector.install(schedule)
    deployment.simulator.run_until(WARMUP)
    report.baseline_windows = _run_traffic(
        deployment,
        start=WARMUP, duration=duration, queries=queries,
        partition_at=report.partition_start,
        partition_duration=report.partition_duration,
    )
    deployment.simulator.run_until(WARMUP + duration + SETTLE)


def run_regionfail_experiment(
    seed: int = 0,
    *,
    duration: float = 600.0,
    queries: int = 600,
    partition_at: float = 150.0,
    partition_duration: float = 240.0,
) -> RegionFailReport:
    """Run both arms of the region-failure experiment; return the report.

    ``partition_at`` is relative to traffic start (after warm-up); the
    partition must begin and end inside the traffic window so both the
    failover and the recovery are measured.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive: {duration}")
    if queries <= 0:
        raise ConfigurationError(f"queries must be positive: {queries}")
    if not 0 < partition_at < duration:
        raise ConfigurationError(
            f"partition_at must fall inside (0, {duration}): {partition_at}"
        )
    if partition_duration <= 0 or partition_at + partition_duration >= duration:
        raise ConfigurationError(
            f"partition [{partition_at}, "
            f"{partition_at + partition_duration}) must end before "
            f"traffic does ({duration})"
        )
    report = RegionFailReport(
        seed=seed,
        sla=SLA,
        window=WINDOW,
        partition_start=WARMUP + partition_at,
        partition_duration=partition_duration,
    )
    _run_managed(seed, report, duration=duration, queries=queries)
    _run_baseline(seed, report, duration=duration, queries=queries)
    return report
