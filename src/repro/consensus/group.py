"""A replication group: one consensus replica per region, plus safety books.

:class:`MetadataCluster` owns the transport, the per-region
:class:`~repro.consensus.node.RaftNode` replicas, and a per-region
applied state machine (a deterministic KV map). It also keeps the
*committed ledger* — every (index, term, command) any replica has ever
applied — which is what the chaos invariant checker audits: a committed
index whose (term, command) differs between replicas is a
committed-entry loss, the one thing consensus must never allow.

Link control is directional: ``cut_link("region0", "region1")`` stops
region0's messages from reaching region1 while the reverse direction
still delivers — the asymmetric-partition fault. A full region
partition cuts both directions of every link touching the region.
An optional external ``link_up`` predicate composes in (the deployment
wires the cluster topology's region-link state here so chaos faults act
on one source of truth).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ConfigurationError, QuorumUnavailableError
from repro.obs import Observability
from repro.sim.engine import Simulator

from repro.consensus.log import LogEntry
from repro.consensus.node import (
    ELECTION_TIMEOUT,
    HEARTBEAT_INTERVAL,
    LEADER,
    RaftNode,
)
from repro.consensus.transport import Transport


class KvStateMachine:
    """The applied state of one replica: a deterministic KV map.

    Commands are tuples: ``("set", key, value)``, ``("delete", key)``
    and ``("noop",)``. Values must be treated as immutable — snapshots
    share them by reference across replicas.
    """

    def __init__(self) -> None:
        self.data: dict[str, Any] = {}

    def apply(self, command: tuple) -> None:
        op = command[0]
        if op == "set":
            self.data[command[1]] = command[2]
        elif op == "delete":
            self.data.pop(command[1], None)
        elif op != "noop":
            raise ConfigurationError(f"unknown consensus command: {command!r}")

    def snapshot(self) -> tuple:
        return tuple(sorted(self.data.items()))

    def install(self, state: Any) -> None:
        self.data = dict(state or ())

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def keys_with_prefix(self, prefix: str) -> list[str]:
        return sorted(k for k in self.data if k.startswith(prefix))


class MetadataCluster:
    """One consensus replica per region over a partitionable transport."""

    def __init__(
        self,
        simulator: Simulator,
        regions: list[str],
        rng_for: Callable[[str], Any],
        *,
        obs: Optional[Observability] = None,
        link_up: Optional[Callable[[str, str], bool]] = None,
        bootstrap_leader: Optional[str] = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        election_timeout: tuple[float, float] = ELECTION_TIMEOUT,
        compaction_threshold: int = 64,
    ) -> None:
        if not regions:
            raise ConfigurationError("consensus group needs at least one region")
        if bootstrap_leader is not None and bootstrap_leader not in regions:
            raise ConfigurationError(
                f"bootstrap leader {bootstrap_leader!r} not in {regions}"
            )
        self._simulator = simulator
        self.regions = list(regions)
        self.obs = obs if obs is not None else Observability()
        self._external_link_up = link_up
        self._links_down: set[tuple[str, str]] = set()
        self.transport = Transport(
            simulator, link_up=self._link_ok, obs=self.obs
        )
        self.machines: dict[str, KvStateMachine] = {
            r: KvStateMachine() for r in self.regions
        }
        # Safety books audited by the invariant checker.
        self.ledger: dict[int, tuple[int, tuple]] = {}
        self.commit_conflicts: list[str] = []
        self._quorum_reads = self.obs.metrics.counter("consensus.quorum_reads")

        self.nodes: dict[str, RaftNode] = {}
        for region in self.regions:
            first_timeout = None
            if region == bootstrap_leader:
                # Shortest possible first timeout: the designated region
                # deterministically wins the bootstrap election.
                first_timeout = election_timeout[0] * 0.5
            machine = self.machines[region]
            self.nodes[region] = RaftNode(
                region,
                self.regions,
                simulator,
                self.transport,
                rng_for(region),
                apply_fn=lambda entry, r=region: self._apply(r, entry),
                snapshot_fn=machine.snapshot,
                install_fn=machine.install,
                obs=self.obs,
                heartbeat_interval=heartbeat_interval,
                election_timeout=election_timeout,
                compaction_threshold=compaction_threshold,
                first_timeout=first_timeout,
            )

    # ------------------------------------------------------------------
    # Apply pipeline + committed ledger
    # ------------------------------------------------------------------

    def _apply(self, region: str, entry: LogEntry) -> None:
        self.machines[region].apply(entry.command)
        recorded = self.ledger.get(entry.index)
        if recorded is None:
            self.ledger[entry.index] = (entry.term, entry.command)
        elif recorded != (entry.term, entry.command):
            self.commit_conflicts.append(
                f"index {entry.index}: {region} applied "
                f"(t{entry.term}, {entry.command!r}) but ledger holds "
                f"(t{recorded[0]}, {recorded[1]!r})"
            )

    @property
    def max_committed_index(self) -> int:
        return max(self.ledger, default=0)

    # ------------------------------------------------------------------
    # Topology control (chaos hooks)
    # ------------------------------------------------------------------

    def _link_ok(self, src: str, dst: str) -> bool:
        if (src, dst) in self._links_down:
            return False
        if self._external_link_up is not None:
            return bool(self._external_link_up(src, dst))
        return True

    def cut_link(self, src: str, dst: str) -> None:
        """Cut the directional link ``src → dst`` only."""
        self._links_down.add((src, dst))

    def restore_link(self, src: str, dst: str) -> None:
        self._links_down.discard((src, dst))

    def partition_region(self, region: str) -> None:
        """Isolate ``region`` completely (both directions, all peers)."""
        for other in self.regions:
            if other != region:
                self.cut_link(region, other)
                self.cut_link(other, region)

    def heal_region(self, region: str) -> None:
        for other in self.regions:
            if other != region:
                self.restore_link(region, other)
                self.restore_link(other, region)

    def crash_replica(self, region: str) -> None:
        self.nodes[region].crash()

    def recover_replica(self, region: str) -> None:
        self.nodes[region].restart()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def replica(self, region: str) -> RaftNode:
        return self.nodes[region]

    def live_regions(self) -> list[str]:
        return [r for r in self.regions if not self.nodes[r].crashed]

    def leaders(self) -> list[str]:
        """Every replica currently acting as leader (transiently > 1
        during partitions; at most one per *term*, which is the actual
        safety property)."""
        return [
            r for r in self.regions
            if not self.nodes[r].crashed and self.nodes[r].role == LEADER
        ]

    def leader(self) -> Optional[str]:
        """The acting leader with the highest term, if any."""
        leaders = self.leaders()
        if not leaders:
            return None
        return max(leaders, key=lambda r: (self.nodes[r].current_term, r))

    def leader_history(self) -> dict[int, list[str]]:
        """term → replicas that won an election in that term."""
        history: dict[int, list[str]] = {}
        for region in self.regions:
            for term in self.nodes[region].terms_won:
                history.setdefault(term, []).append(region)
        return history

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def propose(self, command: tuple, *, region: Optional[str] = None):
        """Propose through ``region``'s replica (or the acting leader).

        Returns the assigned log index, or None when the contacted
        replica is not (or no replica is) a leader right now.
        """
        if region is None:
            region = self.leader()
            if region is None:
                return None
        return self.nodes[region].propose(command)

    def _reachable_regions(self, src: str) -> list[str]:
        """Regions whose replica ``src`` could complete an RPC with now
        (link up in both directions, replica process alive)."""
        out = []
        for region in self.regions:
            if self.nodes[region].crashed:
                continue
            if region == src:
                out.append(region)
                continue
            if self._link_ok(src, region) and self._link_ok(region, src):
                out.append(region)
        return out

    def can_route(self, src: str, dst: str) -> bool:
        """Can ``src`` complete an RPC with ``dst`` right now (links up
        both ways, destination replica alive)?"""
        if self.nodes[dst].crashed:
            return False
        if src == dst:
            return not self.nodes[src].crashed
        return self._link_ok(src, dst) and self._link_ok(dst, src)

    def quorum_read(self, src: str, key: str, default: Any = None) -> Any:
        """Read ``key`` from the freshest replica of a reachable majority.

        Modeled as a same-tick snapshot gather (the transport delay is
        charged to replication, not reads — read latency lives in the
        query path's own latency model). Raises
        :class:`QuorumUnavailableError` when ``src`` cannot assemble a
        majority.
        """
        freshest = self._quorum_freshest(src)
        return self.machines[freshest].get(key, default)

    def quorum_keys_with_prefix(self, src: str, prefix: str) -> list[str]:
        freshest = self._quorum_freshest(src)
        return self.machines[freshest].keys_with_prefix(prefix)

    def _quorum_freshest(self, src: str) -> str:
        reachable = self._reachable_regions(src)
        majority = len(self.regions) // 2 + 1
        if src not in reachable or len(reachable) < majority:
            raise QuorumUnavailableError(
                f"{src} reaches only {len(reachable)}/{len(self.regions)} "
                f"replicas (majority={majority})"
            )
        self._quorum_reads.inc()
        # Freshest commit wins; region name breaks ties deterministically.
        return min(
            reachable,
            key=lambda r: (-self.nodes[r].commit_index, r),
        )

    def run_until_leader(self, deadline: float) -> Optional[str]:
        """Test helper: advance the simulator until a leader exists."""
        step = 0.5
        while self._simulator.now < deadline:
            if self.leader() is not None:
                return self.leader()
            self._simulator.run_until(
                min(deadline, self._simulator.now + step)
            )
        return self.leader()
