"""The replicated log: entries, terms, snapshots and compaction.

One :class:`RaftLog` lives inside every consensus replica. Entries are
``(index, term, command)`` triples; commands are plain tuples (e.g.
``("set", key, value)``) so logs compare and render deterministically.
Indexes are 1-based as in the Raft paper; index 0 is the empty prefix.

Compaction folds an applied prefix into a snapshot: the log keeps
``snapshot_index``/``snapshot_term`` plus an opaque ``snapshot_state``
(the state machine's own serialisation) and drops the covered entries.
A leader whose follower has fallen behind the snapshot horizon ships
the snapshot instead of replaying compacted entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LogEntry:
    """One replicated command, stamped with the term that proposed it."""

    index: int
    term: int
    command: tuple

    def render(self) -> str:
        return f"[{self.index}@t{self.term}] {self.command!r}"


class RaftLog:
    """An append-only command log with snapshot-based compaction."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []  # entries after the snapshot
        self.snapshot_index = 0
        self.snapshot_term = 0
        self.snapshot_state: Any = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def last_index(self) -> int:
        if self._entries:
            return self._entries[-1].index
        return self.snapshot_index

    @property
    def last_term(self) -> int:
        if self._entries:
            return self._entries[-1].term
        return self.snapshot_term

    def term_at(self, index: int) -> Optional[int]:
        """Term of the entry at ``index``; None when unknown (compacted
        away or beyond the end). ``snapshot_index`` itself is known."""
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        if index < self.snapshot_index or index > self.last_index:
            return None
        return self._entries[index - self.snapshot_index - 1].term

    def entry(self, index: int) -> LogEntry:
        offset = index - self.snapshot_index - 1
        if offset < 0 or offset >= len(self._entries):
            raise ConfigurationError(
                f"log index {index} outside retained range "
                f"({self.snapshot_index}, {self.last_index}]"
            )
        return self._entries[offset]

    def entries_from(self, index: int) -> list[LogEntry]:
        """All retained entries with ``entry.index >= index``."""
        offset = max(0, index - self.snapshot_index - 1)
        return list(self._entries[offset:])

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append_new(self, term: int, command: tuple) -> LogEntry:
        """Leader-side append: stamp the next index with ``term``."""
        entry = LogEntry(index=self.last_index + 1, term=term, command=command)
        self._entries.append(entry)
        return entry

    def overwrite_from(self, entries: list[LogEntry]) -> int:
        """Follower-side append (AppendEntries): graft ``entries``.

        Entries already present with matching terms are kept (idempotent
        re-delivery); the first conflicting index truncates the suffix —
        the Raft log-matching repair. Returns the number of entries
        actually written.
        """
        written = 0
        for entry in entries:
            if entry.index <= self.snapshot_index:
                continue  # already folded into the snapshot
            existing_term = self.term_at(entry.index)
            if existing_term == entry.term:
                continue
            if existing_term is not None:
                # Conflict: drop the divergent suffix, then append.
                keep = entry.index - self.snapshot_index - 1
                del self._entries[keep:]
            self._entries.append(entry)
            written += 1
        return written

    def compact(self, upto: int, state: Any) -> int:
        """Fold every entry at or below ``upto`` into the snapshot.

        ``state`` is the state machine's serialisation at ``upto``.
        Returns the number of entries dropped.
        """
        if upto <= self.snapshot_index:
            return 0
        term = self.term_at(upto)
        if term is None:
            raise ConfigurationError(
                f"cannot compact to unknown index {upto} "
                f"(last={self.last_index})"
            )
        dropped = upto - self.snapshot_index
        del self._entries[:dropped]
        self.snapshot_index = upto
        self.snapshot_term = term
        self.snapshot_state = state
        return dropped

    def install_snapshot(self, index: int, term: int, state: Any) -> None:
        """Replace the log prefix with a leader-shipped snapshot."""
        if index <= self.snapshot_index:
            return
        if self.term_at(index) == term:
            # We already hold the covered prefix: just compact to it.
            self.compact(index, state)
            return
        # Snapshot is ahead of (or conflicts with) our log: reset.
        self._entries = []
        self.snapshot_index = index
        self.snapshot_term = term
        self.snapshot_state = state

    def __repr__(self) -> str:
        return (
            f"RaftLog(snapshot={self.snapshot_index}@t{self.snapshot_term}, "
            f"entries={len(self._entries)}, last={self.last_index})"
        )
