"""One consensus replica: Raft roles, elections, replication, leases.

Each region runs one :class:`RaftNode` on the shared DES clock. The
protocol is Raft as published: randomized election timeouts (drawn from
a seeded per-replica RNG stream, so elections are deterministic for a
given seed), term-checked RequestVote/AppendEntries, majority-quorum
commit with the leader-term restriction (§5.4.2 — a leader only counts
replicas for entries of its own term), a no-op entry appended on
election so the new leader's commit index advances immediately, and
snapshot shipping for followers that fell behind the compaction
horizon.

Two things are deliberately simulation-grade:

* **Leader leases** gate local reads: the leader serves a read from its
  applied state only while a majority acked an AppendEntries within
  ``lease_duration`` (< minimum election timeout, so a deposed leader's
  lease always expires before a successor can win).
* **Crash/restart** models a process loss: volatile state (role, vote
  tallies, commit index) resets; the persistent state (term, vote, log,
  snapshot) survives, exactly the durability contract of Raft's stable
  storage.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.obs import Observability
from repro.sim.engine import Simulator

from repro.consensus.log import LogEntry, RaftLog
from repro.consensus.transport import (
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
    Message,
    RequestVote,
    RequestVoteReply,
    Transport,
)

HEARTBEAT_INTERVAL = 1.0
ELECTION_TIMEOUT = (3.0, 6.0)
#: Leader lease must expire before any successor can be elected.
LEASE_DURATION = 2.5
#: Compact once this many applied entries are retained in the log.
COMPACTION_THRESHOLD = 64
#: Max entries shipped per AppendEntries (bounds catch-up burst size).
MAX_BATCH = 50

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class RaftNode:
    """A single replica of the replicated metadata log."""

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        simulator: Simulator,
        transport: Transport,
        rng: np.random.Generator,
        *,
        apply_fn: Callable[[LogEntry], None],
        snapshot_fn: Callable[[], object],
        install_fn: Callable[[object], None],
        obs: Optional[Observability] = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        election_timeout: tuple[float, float] = ELECTION_TIMEOUT,
        lease_duration: float = LEASE_DURATION,
        compaction_threshold: int = COMPACTION_THRESHOLD,
        first_timeout: Optional[float] = None,
    ) -> None:
        self.node_id = node_id
        self.peers = sorted(p for p in peers if p != node_id)
        self.majority = (len(self.peers) + 1) // 2 + 1
        self._simulator = simulator
        self._transport = transport
        self._rng = rng
        self._apply_fn = apply_fn
        self._snapshot_fn = snapshot_fn
        self._install_fn = install_fn
        self.obs = obs if obs is not None else Observability()
        self._heartbeat_interval = heartbeat_interval
        self._election_timeout = election_timeout
        self.lease_duration = lease_duration
        self._compaction_threshold = compaction_threshold
        self._first_timeout = first_timeout

        # Persistent state (survives crash/restart).
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log = RaftLog()

        # Volatile state.
        self.role = FOLLOWER
        self.leader_hint: Optional[str] = None
        self.commit_index = 0
        self.last_applied = 0
        self.crashed = False
        self._votes: set[str] = set()
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._ack_times: dict[str, float] = {}
        self._election_event = None
        self._heartbeat_event = None

        # Safety bookkeeping surfaced to the invariant checker.
        self.commit_regressions = 0
        self.terms_won: list[int] = []

        transport.register(node_id, self.handle)
        labels = {"replica": node_id}
        metrics = self.obs.metrics
        self._appends_counter = metrics.counter("consensus.log.appends", **labels)
        self._commits_counter = metrics.counter("consensus.log.commits", **labels)
        self._elections_counter = metrics.counter(
            "consensus.elections.started", **labels
        )
        self._wins_counter = metrics.counter("consensus.elections.won", **labels)
        self._term_counter = metrics.counter("consensus.term_changes", **labels)
        self._snapshot_counter = metrics.counter(
            "consensus.snapshots.installed", **labels
        )
        self._compactions_counter = metrics.counter(
            "consensus.log.compactions", **labels
        )
        self._reset_election_timer(first=True)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _draw_timeout(self) -> float:
        lo, hi = self._election_timeout
        return float(self._rng.uniform(lo, hi))

    def _reset_election_timer(self, *, first: bool = False) -> None:
        if self._election_event is not None:
            self._election_event.cancel()
        if first and self._first_timeout is not None:
            timeout = self._first_timeout
        else:
            timeout = self._draw_timeout()
        self._election_event = self._simulator.call_later(
            timeout, self._on_election_timeout
        )

    def _stop_heartbeat(self) -> None:
        if self._heartbeat_event is not None:
            self._heartbeat_event.cancel()
            self._heartbeat_event = None

    def _on_election_timeout(self) -> None:
        if self.crashed or self.role == LEADER:
            return
        self._start_election()

    def _heartbeat_tick(self) -> None:
        if self.crashed or self.role != LEADER:
            return
        self._broadcast_entries()
        self._heartbeat_event = self._simulator.call_later(
            self._heartbeat_interval, self._heartbeat_tick
        )

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------

    def _bump_term(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            self._term_counter.inc()
            self.obs.events.emit(
                "consensus.term_change", replica=self.node_id, term=term
            )

    def _step_down(self, term: int) -> None:
        self._bump_term(term)
        if self.role != FOLLOWER:
            self.role = FOLLOWER
            self._stop_heartbeat()
        self._votes.clear()
        self._reset_election_timer()

    def _start_election(self) -> None:
        self.role = CANDIDATE
        self._bump_term(self.current_term + 1)
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self.leader_hint = None
        self._elections_counter.inc()
        self.obs.events.emit(
            "consensus.election.started",
            replica=self.node_id,
            term=self.current_term,
        )
        self._reset_election_timer()
        if self.majority == 1:
            self._become_leader()
            return
        for peer in self.peers:
            self._transport.send(RequestVote(
                src=self.node_id,
                dst=peer,
                term=self.current_term,
                last_log_index=self.log.last_index,
                last_log_term=self.log.last_term,
            ))

    def _become_leader(self) -> None:
        self.role = LEADER
        self.leader_hint = self.node_id
        self.terms_won.append(self.current_term)
        self._wins_counter.inc()
        self.obs.events.emit(
            "consensus.election.won",
            replica=self.node_id,
            term=self.current_term,
        )
        next_index = self.log.last_index + 1
        self._next_index = {p: next_index for p in self.peers}
        self._match_index = {p: 0 for p in self.peers}
        self._ack_times = {}
        # The no-op commits the new leader's term immediately (§5.4.2:
        # entries from prior terms only commit transitively through it).
        self.log.append_new(self.current_term, ("noop",))
        self._appends_counter.inc()
        self._advance_commit()
        self._broadcast_entries()
        self._stop_heartbeat()
        self._heartbeat_event = self._simulator.call_later(
            self._heartbeat_interval, self._heartbeat_tick
        )

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def propose(self, command: tuple) -> Optional[int]:
        """Append ``command`` if leader; returns its log index, else None."""
        if self.crashed or self.role != LEADER:
            return None
        entry = self.log.append_new(self.current_term, command)
        self._appends_counter.inc()
        self._advance_commit()  # single-replica groups commit instantly
        self._broadcast_entries()
        return entry.index

    def has_lease(self, now: float) -> bool:
        """Can this leader serve a local read without a quorum round-trip?"""
        if self.crashed or self.role != LEADER:
            return False
        if self.majority == 1:
            return True
        acks = sorted(
            (self._ack_times.get(p, -float("inf")) for p in self.peers),
            reverse=True,
        )
        # Self counts as one ack "now"; the (majority-1)-th freshest peer
        # ack closes the quorum.
        quorum_ack = acks[self.majority - 2]
        return now - quorum_ack <= self.lease_duration

    def crash(self) -> None:
        """Lose the process: volatile state gone, persistent state kept."""
        self.crashed = True
        self.role = FOLLOWER
        self.leader_hint = None
        self._votes.clear()
        self._next_index = {}
        self._match_index = {}
        self._ack_times = {}
        self._stop_heartbeat()
        if self._election_event is not None:
            self._election_event.cancel()
            self._election_event = None

    def restart(self) -> None:
        """Come back as a follower; state machine resets to the snapshot
        and re-applies as the commit index re-advances."""
        if not self.crashed:
            return
        self.crashed = False
        self.role = FOLLOWER
        self.commit_index = self.log.snapshot_index
        self.last_applied = self.log.snapshot_index
        self._install_fn(self.log.snapshot_state)
        self._reset_election_timer()

    # ------------------------------------------------------------------
    # Replication (leader side)
    # ------------------------------------------------------------------

    def _broadcast_entries(self) -> None:
        for peer in self.peers:
            self._replicate_to(peer)

    def _replicate_to(self, peer: str) -> None:
        next_index = self._next_index.get(peer, self.log.last_index + 1)
        if next_index <= self.log.snapshot_index:
            self._transport.send(InstallSnapshot(
                src=self.node_id,
                dst=peer,
                term=self.current_term,
                snapshot_index=self.log.snapshot_index,
                snapshot_term=self.log.snapshot_term,
                snapshot_state=self.log.snapshot_state,
            ))
            return
        prev_index = next_index - 1
        prev_term = self.log.term_at(prev_index) or 0
        entries = tuple(self.log.entries_from(next_index)[:MAX_BATCH])
        self._transport.send(AppendEntries(
            src=self.node_id,
            dst=peer,
            term=self.current_term,
            prev_log_index=prev_index,
            prev_log_term=prev_term,
            entries=entries,
            leader_commit=self.commit_index,
        ))

    def _advance_commit(self) -> None:
        """Commit the highest current-term index a majority stores."""
        new_commit = self.commit_index
        for index in range(self.commit_index + 1, self.log.last_index + 1):
            if self.log.term_at(index) != self.current_term:
                continue
            stored = 1 + sum(
                1 for p in self.peers if self._match_index.get(p, 0) >= index
            )
            if stored >= self.majority:
                new_commit = index
        if new_commit > self.commit_index:
            self._set_commit(new_commit)

    def _set_commit(self, commit: int) -> None:
        if commit < self.commit_index:
            # Never regress; count the attempt for the invariant checker.
            self.commit_regressions += 1
            return
        self.commit_index = commit
        self._apply_committed()

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            index = self.last_applied + 1
            if index <= self.log.snapshot_index:
                # Covered by an installed snapshot; state already reset.
                self.last_applied = self.log.snapshot_index
                continue
            entry = self.log.entry(index)
            self._apply_fn(entry)
            self.last_applied = index
            self._commits_counter.inc()
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        retained = self.last_applied - self.log.snapshot_index
        if retained >= self._compaction_threshold:
            self.log.compact(self.last_applied, self._snapshot_fn())
            self._compactions_counter.inc()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle(self, message: Message) -> None:
        if self.crashed:
            return
        if message.term > self.current_term:
            self._step_down(message.term)
        if isinstance(message, RequestVote):
            self._on_request_vote(message)
        elif isinstance(message, RequestVoteReply):
            self._on_vote_reply(message)
        elif isinstance(message, AppendEntries):
            self._on_append_entries(message)
        elif isinstance(message, AppendEntriesReply):
            self._on_append_reply(message)
        elif isinstance(message, InstallSnapshot):
            self._on_install_snapshot(message)
        elif isinstance(message, InstallSnapshotReply):
            self._on_snapshot_reply(message)

    def _log_up_to_date(self, message: RequestVote) -> bool:
        if message.last_log_term != self.log.last_term:
            return message.last_log_term > self.log.last_term
        return message.last_log_index >= self.log.last_index

    def _on_request_vote(self, message: RequestVote) -> None:
        granted = (
            message.term == self.current_term
            and self.voted_for in (None, message.src)
            and self._log_up_to_date(message)
        )
        if granted:
            self.voted_for = message.src
            self._reset_election_timer()
        self._transport.send(RequestVoteReply(
            src=self.node_id,
            dst=message.src,
            term=self.current_term,
            granted=granted,
        ))

    def _on_vote_reply(self, message: RequestVoteReply) -> None:
        if (
            self.role != CANDIDATE
            or message.term != self.current_term
            or not message.granted
        ):
            return
        self._votes.add(message.src)
        if len(self._votes) >= self.majority:
            self._become_leader()

    def _on_append_entries(self, message: AppendEntries) -> None:
        if message.term < self.current_term:
            self._transport.send(AppendEntriesReply(
                src=self.node_id,
                dst=message.src,
                term=self.current_term,
                success=False,
                match_index=0,
            ))
            return
        # Valid leader for this term: follow it.
        if self.role != FOLLOWER:
            self._step_down(message.term)
        self.leader_hint = message.src
        self._reset_election_timer()

        prev = message.prev_log_index
        if prev > self.log.snapshot_index and self.log.term_at(prev) != message.prev_log_term:
            # Log mismatch: ask the leader to back off. The hint is the
            # highest index we could possibly match.
            hint = min(prev - 1, self.log.last_index)
            self._transport.send(AppendEntriesReply(
                src=self.node_id,
                dst=message.src,
                term=self.current_term,
                success=False,
                match_index=max(hint, self.log.snapshot_index),
            ))
            return
        self.log.overwrite_from(list(message.entries))
        match = prev + len(message.entries)
        match = max(match, self.log.snapshot_index)
        if message.leader_commit > self.commit_index:
            self._set_commit(min(message.leader_commit, match))
        self._transport.send(AppendEntriesReply(
            src=self.node_id,
            dst=message.src,
            term=self.current_term,
            success=True,
            match_index=match,
        ))

    def _on_append_reply(self, message: AppendEntriesReply) -> None:
        if self.role != LEADER or message.term != self.current_term:
            return
        peer = message.src
        if message.success:
            self._ack_times[peer] = self._simulator.now
            if message.match_index > self._match_index.get(peer, 0):
                self._match_index[peer] = message.match_index
            self._next_index[peer] = self._match_index[peer] + 1
            self._advance_commit()
            if self._next_index[peer] <= self.log.last_index:
                self._replicate_to(peer)  # keep streaming the backlog
        else:
            current = self._next_index.get(peer, self.log.last_index + 1)
            self._next_index[peer] = max(
                1, min(current - 1, message.match_index + 1)
            )
            self._replicate_to(peer)

    def _on_install_snapshot(self, message: InstallSnapshot) -> None:
        if message.term < self.current_term:
            return
        if self.role != FOLLOWER:
            self._step_down(message.term)
        self.leader_hint = message.src
        self._reset_election_timer()
        if message.snapshot_index > self.log.snapshot_index:
            self.log.install_snapshot(
                message.snapshot_index,
                message.snapshot_term,
                message.snapshot_state,
            )
            self._install_fn(message.snapshot_state)
            self.commit_index = max(self.commit_index, message.snapshot_index)
            self.last_applied = message.snapshot_index
            self._snapshot_counter.inc()
            self._apply_committed()  # re-apply any retained suffix
        self._transport.send(InstallSnapshotReply(
            src=self.node_id,
            dst=message.src,
            term=self.current_term,
            match_index=self.log.snapshot_index,
        ))

    def _on_snapshot_reply(self, message: InstallSnapshotReply) -> None:
        if self.role != LEADER or message.term != self.current_term:
            return
        peer = message.src
        self._ack_times[peer] = self._simulator.now
        if message.match_index > self._match_index.get(peer, 0):
            self._match_index[peer] = message.match_index
        self._next_index[peer] = self._match_index[peer] + 1
        self._advance_commit()
        if self._next_index[peer] <= self.log.last_index:
            self._replicate_to(peer)

    def __repr__(self) -> str:
        return (
            f"RaftNode({self.node_id}, {self.role}, term={self.current_term}, "
            f"commit={self.commit_index}, last={self.log.last_index}"
            f"{', crashed' if self.crashed else ''})"
        )
