"""`ReplicatedDatastore`: the Datastore interface over the consensus log.

Drop-in replacement for :class:`~repro.shardmanager.datastore.Datastore`
— same constructor shape, same session/ephemeral/watch semantics — but
persistent keys are backed by the region's consensus replica instead of
a process-local dict:

* ``set``/``delete`` **propose** through the replicated log. If the
  local replica leads, the proposal is appended directly; otherwise it
  is forwarded to the acting leader when the round-trip link is up.
  When no leader is reachable (partition, election in progress) the
  write parks in an ordered pending buffer drained by a periodic retry
  — the SM server's own in-memory state keeps it operational while
  persistence catches up, which is exactly a journal's contract.
  Writes therefore become visible to reads only once *committed* (a few
  hundred virtual milliseconds later), never lost once acked by a
  majority.
* ``get``/``keys_with_prefix`` serve from the local applied state under
  a **leader lease**, else fall back to a **quorum read** (freshest
  reachable majority replica). When no majority is reachable the read
  degrades to the local applied state — stale but available — and the
  ``consensus.quorum_read_fallbacks`` counter records it.
* Sessions, heartbeats, watches and ephemeral keys stay region-local
  (they are liveness signals about *this* region's hosts; replicating
  them would let a partitioned peer expire sessions it cannot observe).
"""

from __future__ import annotations

from typing import Any

from repro.obs import Observability
from repro.sim.engine import Simulator
from repro.shardmanager.datastore import Datastore

from repro.consensus.group import MetadataCluster
from repro.consensus.node import LEADER
from repro.errors import QuorumUnavailableError

_MISSING = object()

#: How often parked writes retry finding a reachable leader.
PENDING_RETRY_INTERVAL = 1.0


class ReplicatedDatastore(Datastore):
    """Region-local front end to the replicated metadata log."""

    def __init__(
        self,
        simulator: Simulator,
        cluster: MetadataCluster,
        region: str,
        *,
        session_timeout: float = 30.0,
        check_interval: float = 5.0,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(
            simulator,
            session_timeout=session_timeout,
            check_interval=check_interval,
            obs=obs,
        )
        self.cluster = cluster
        self.region = region
        self._pending: list[tuple] = []  # ordered, not yet proposed
        labels = {"region": region}
        self._proposal_counter = self.obs.metrics.counter(
            "consensus.store.proposals", **labels
        )
        self._parked_counter = self.obs.metrics.counter(
            "consensus.store.parked_writes", **labels
        )
        self._fallback_counter = self.obs.metrics.counter(
            "consensus.quorum_read_fallbacks", **labels
        )
        self._leased_counter = self.obs.metrics.counter(
            "consensus.store.leased_reads", **labels
        )
        self._cancel_drain = simulator.schedule_periodic(
            PENDING_RETRY_INTERVAL, self._drain_pending
        )

    # ------------------------------------------------------------------
    # Write path: propose through the log
    # ------------------------------------------------------------------

    @property
    def _node(self):
        return self.cluster.nodes[self.region]

    @property
    def _machine(self):
        return self.cluster.machines[self.region]

    def _try_propose(self, command: tuple) -> bool:
        node = self._node
        if node.crashed:
            return False
        if node.role == LEADER:
            proposed = node.propose(command) is not None
        else:
            target = self.cluster.leader()
            if target is None or not self.cluster.can_route(
                self.region, target
            ):
                return False
            proposed = self.cluster.propose(command, region=target) is not None
        if proposed:
            self._proposal_counter.inc()
        return proposed

    def _submit(self, command: tuple) -> None:
        # Order preservation: while anything is parked, new writes must
        # queue behind it rather than jump ahead.
        if self._pending or not self._try_propose(command):
            self._pending.append(command)
            self._parked_counter.inc()

    def _drain_pending(self) -> None:
        while self._pending:
            if not self._try_propose(self._pending[0]):
                return
            self._pending.pop(0)

    @property
    def pending_writes(self) -> int:
        return len(self._pending)

    def set(self, key: str, value: Any) -> None:
        self._submit(("set", key, value))

    def delete(self, key: str) -> None:
        self._submit(("delete", key))
        self._data.pop(key, None)  # the key may be a local ephemeral

    # ------------------------------------------------------------------
    # Read path: leased local, quorum, or degraded-local
    # ------------------------------------------------------------------

    def _replicated_get(self, key: str) -> Any:
        node = self._node
        if not node.crashed and node.has_lease(self._simulator.now):
            self._leased_counter.inc()
            return self._machine.get(key, _MISSING)
        try:
            return self.cluster.quorum_read(self.region, key, _MISSING)
        except QuorumUnavailableError:
            self._fallback_counter.inc()
            return self._machine.get(key, _MISSING)

    def get(self, key: str, default: Any = None) -> Any:
        value = self._replicated_get(key)
        if value is not _MISSING:
            return value
        return self._data.get(key, default)

    def keys_with_prefix(self, prefix: str) -> list[str]:
        node = self._node
        if not node.crashed and node.has_lease(self._simulator.now):
            self._leased_counter.inc()
            replicated = self._machine.keys_with_prefix(prefix)
        else:
            try:
                replicated = self.cluster.quorum_keys_with_prefix(
                    self.region, prefix
                )
            except QuorumUnavailableError:
                self._fallback_counter.inc()
                replicated = self._machine.keys_with_prefix(prefix)
        local = [k for k in self._data if k.startswith(prefix)]
        return sorted(set(replicated) | set(local))

    def shutdown(self) -> None:
        self._cancel_drain()
        super().shutdown()
