"""Message passing between consensus replicas on the DES clock.

Replicas never call each other directly: every RPC is a frozen message
dataclass handed to the :class:`Transport`, which delivers it after a
fixed cross-region delay **iff the directional link is up at send
time**. Reachability is a caller-supplied ``link_up(src, dst)``
predicate so the same transport serves standalone consensus tests (a
dict of cut links) and full deployments (the cluster topology's
region-link state, which the chaos injector manipulates). Directional
links make asymmetric partitions (A→B cut while B→A delivers) a
first-class fault.

Delivery order is deterministic: the simulator orders same-time events
by schedule sequence, and sends happen in replica-id order everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs import Observability
from repro.sim.engine import Simulator

from repro.consensus.log import LogEntry

#: One-way message latency between regions (seconds of virtual time).
MESSAGE_DELAY = 0.05


@dataclass(frozen=True)
class Message:
    """Base class: every consensus RPC names its endpoints and term."""

    src: str
    dst: str
    term: int


@dataclass(frozen=True)
class RequestVote(Message):
    last_log_index: int = 0
    last_log_term: int = 0


@dataclass(frozen=True)
class RequestVoteReply(Message):
    granted: bool = False


@dataclass(frozen=True)
class AppendEntries(Message):
    """Heartbeat and log replication in one RPC, as in Raft."""

    prev_log_index: int = 0
    prev_log_term: int = 0
    entries: tuple[LogEntry, ...] = field(default_factory=tuple)
    leader_commit: int = 0


@dataclass(frozen=True)
class AppendEntriesReply(Message):
    success: bool = False
    match_index: int = 0


@dataclass(frozen=True)
class InstallSnapshot(Message):
    snapshot_index: int = 0
    snapshot_term: int = 0
    snapshot_state: object = None


@dataclass(frozen=True)
class InstallSnapshotReply(Message):
    match_index: int = 0


__all_messages__ = (
    RequestVote,
    RequestVoteReply,
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
)


class Transport:
    """Delivers messages between registered replicas with a fixed delay.

    A message is dropped (never delivered, counted in
    ``consensus.transport.dropped``) when the directional ``src → dst``
    link is down at send time — the DES analogue of a packet entering a
    partitioned network. Messages already in flight when a partition
    starts still arrive: cutting a link is not retroactive.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        delay: float = MESSAGE_DELAY,
        link_up: Optional[Callable[[str, str], bool]] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self._simulator = simulator
        self._delay = delay
        self._link_up = link_up if link_up is not None else (lambda s, d: True)
        self.obs = obs if obs is not None else Observability()
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._sent = self.obs.metrics.counter("consensus.transport.sent")
        self._dropped = self.obs.metrics.counter("consensus.transport.dropped")

    def register(self, replica_id: str,
                 handler: Callable[[Message], None]) -> None:
        self._handlers[replica_id] = handler

    def replica_ids(self) -> list[str]:
        return sorted(self._handlers)

    def reachable(self, src: str, dst: str) -> bool:
        """Is the directional link ``src → dst`` currently up?"""
        return bool(self._link_up(src, dst))

    def send(self, message: Message) -> None:
        """Deliver ``message`` after the transport delay, or drop it."""
        if message.dst not in self._handlers:
            self._dropped.inc()
            return
        if not self.reachable(message.src, message.dst):
            self._dropped.inc()
            return
        self._sent.inc()
        handler = self._handlers[message.dst]
        self._simulator.call_later(
            self._delay, lambda m=message: handler(m)
        )
