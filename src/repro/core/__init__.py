"""Core: the paper's primary contribution.

The analytic scalability-wall model (Figures 1-2), the fan-out policy
that distinguishes fully- from partially-sharded tables, and the
:class:`CubrickDeployment` facade wiring the entire system together.
"""

from repro.core.deployment import CubrickDeployment, DeploymentConfig
from repro.core.fanout import FanoutPolicy, ShardingMode, SlaPlanner
from repro.core.wall import (
    PAPER_FAILURE_PROBABILITY,
    PAPER_SLA,
    WallAnalysis,
    monte_carlo_success_ratio,
    query_success_ratio,
    required_failure_probability,
    scalability_wall,
    success_curve,
)

__all__ = [
    "CubrickDeployment",
    "DeploymentConfig",
    "FanoutPolicy",
    "ShardingMode",
    "SlaPlanner",
    "PAPER_FAILURE_PROBABILITY",
    "PAPER_SLA",
    "WallAnalysis",
    "monte_carlo_success_ratio",
    "query_success_ratio",
    "required_failure_probability",
    "scalability_wall",
    "success_curve",
]
