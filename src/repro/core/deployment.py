"""CubrickDeployment: the end-to-end wired system.

This facade assembles the full paper architecture on the simulated
substrate: a multi-region cluster, one primary-only SM service per
region (paper §IV-D), a CubrickNode per host, regional query
coordinators, and the Cubrick proxy in front. It exposes the operations
a Cubrick user sees — create table, load, query — plus the operational
levers the experiments exercise (failure injection, drains,
re-partitioning, background maintenance).

Every region stores a full copy of every table; queries execute in a
single region and are retried cross-region by the proxy on retryable
failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.automation import DatacenterAutomation
from repro.cluster.host import GIB, Host
from repro.cluster.topology import Cluster
from repro.core.fanout import FanoutPolicy, ShardingMode
from repro.cubrick.coordinator import RegionCoordinator
from repro.cubrick.loadbalance import (
    LoadBalanceGeneration,
    make_exporter,
)
from repro.cubrick.locator import CachedRandom
from repro.cubrick.node import CubrickNode
from repro.cubrick.partitioning import (
    PartitioningPolicy,
    partition_of,
    plan_repartition,
)
from repro.cubrick.proxy import CubrickProxy
from repro.cubrick.query import Query, QueryResult
from repro.cubrick.schema import Catalog, TableInfo, TableSchema
from repro.cubrick.sharding import (
    MonotonicHashMapper,
    ShardDirectory,
    ShardMapper,
    generation_alias,
)
from repro.errors import ConfigurationError, TableNotFoundError
from repro.obs import Observability
from repro.sched.cache import QueryResultCache
from repro.sched.queue import NodeSlots
from repro.shardmanager.server import SMServer
from repro.shardmanager.spec import ServiceSpec
from repro.sim.engine import Simulator
from repro.sim.failures import BernoulliFailureModel, FailureInjector, MtbfFailureModel
from repro.sim.latency import LatencyModel, LogNormalTailLatency
from repro.sim.rng import RngRegistry
from repro.smc.registry import ServiceDiscovery


@dataclass(frozen=True)
class DeploymentConfig:
    """Knobs for building a deployment."""

    regions: int = 3
    racks_per_region: int = 4
    hosts_per_rack: int = 4
    seed: int = 0
    max_shards: int = 100_000
    mode: ShardingMode = ShardingMode.PARTIAL
    partitioning: PartitioningPolicy = PartitioningPolicy()
    memory_bytes_per_host: int = 4 * GIB
    ssd_bytes_per_host: int = 32 * GIB
    lb_generation: LoadBalanceGeneration = LoadBalanceGeneration.GEN2_DECOMPRESSED
    # Per-host-visit probability of a mid-query failure (Figure 1 model);
    # 0 disables sampled failures (host-down failures still apply).
    query_failure_probability: float = 0.0
    # Execution lanes per host (repro.sched.NodeSlots): scans at a busy
    # host wait for a free lane, so per-node queueing delay appears in
    # query latency. None = legacy unbounded concurrency.
    executor_slots_per_host: Optional[int] = None
    # Proxy result-cache entries; 0 disables caching (legacy behaviour).
    result_cache_capacity: int = 0
    # Consensus-replicated metadata (repro.consensus): every region's SM
    # stores its shard map in a Raft-replicated datastore instead of a
    # process-local dict, so metadata survives a full region partition.
    # Off by default: legacy deployments are byte-identical.
    replicated_metadata: bool = False
    # The region client traffic originates from: the proxy prefers it
    # and fails over to replica regions when it is partitioned; the
    # metadata cluster bootstraps its first leader there.
    home_region: Optional[str] = None

    def __post_init__(self) -> None:
        if self.regions <= 0:
            raise ConfigurationError(f"regions must be positive: {self.regions}")


class CubrickDeployment:
    """A full multi-region, partially-sharded Cubrick installation."""

    def __init__(
        self,
        config: Optional[DeploymentConfig] = None,
        *,
        latency_model: Optional[LatencyModel] = None,
        mapper: Optional[ShardMapper] = None,
    ):
        self.config = config if config is not None else DeploymentConfig()
        cfg = self.config
        self.simulator = Simulator()
        # One shared telemetry hub for the whole deployment, stamped with
        # virtual time so exports are deterministic across seeded runs.
        self.obs = Observability(clock=lambda: self.simulator.now)
        self.simulator.attach_observability(self.obs)
        self.rngs = RngRegistry(cfg.seed)
        self.cluster = Cluster.build(
            regions=cfg.regions,
            racks_per_region=cfg.racks_per_region,
            hosts_per_rack=cfg.hosts_per_rack,
            memory_bytes=cfg.memory_bytes_per_host,
            ssd_bytes=cfg.ssd_bytes_per_host,
        )
        self.catalog = Catalog()
        self.mapper = mapper if mapper is not None else MonotonicHashMapper(
            cfg.max_shards
        )
        self.directory = ShardDirectory(self.mapper)
        self.fanout_policy = FanoutPolicy(
            mode=cfg.mode, partitioning=cfg.partitioning
        )
        self.latency_model = (
            latency_model if latency_model is not None else LogNormalTailLatency()
        )
        failure_model = (
            BernoulliFailureModel(cfg.query_failure_probability)
            if cfg.query_failure_probability > 0
            else None
        )

        region_names = self.cluster.region_names()
        if cfg.home_region is not None and cfg.home_region not in region_names:
            raise ConfigurationError(
                f"home_region {cfg.home_region!r} not in {region_names}"
            )
        # Optional consensus-backed metadata plane: one replica per
        # region over the topology's directional region links, with the
        # home region (or the first region) as the bootstrap leader.
        self.metadata_cluster = None
        if cfg.replicated_metadata:
            from repro.consensus import MetadataCluster

            self.metadata_cluster = MetadataCluster(
                self.simulator,
                region_names,
                lambda r: self.rngs.stream(f"consensus:{r}"),
                obs=self.obs,
                link_up=self.cluster.region_link_up,
                bootstrap_leader=cfg.home_region or region_names[0],
            )

        self.sm_servers: dict[str, SMServer] = {}
        self.nodes: dict[str, CubrickNode] = {}
        coordinators: dict[str, RegionCoordinator] = {}
        for region in region_names:
            spec = ServiceSpec(name=f"cubrick-{region}", max_shards=cfg.max_shards)
            discovery = ServiceDiscovery(
                rng=self.rngs.stream(f"smc:{region}"), obs=self.obs
            )
            datastore = None
            if self.metadata_cluster is not None:
                from repro.consensus import ReplicatedDatastore

                datastore = ReplicatedDatastore(
                    self.simulator, self.metadata_cluster, region,
                    obs=self.obs,
                )
            sm = SMServer(
                spec, self.simulator, self.cluster,
                region=region, datastore=datastore,
                discovery=discovery, obs=self.obs,
            )
            self.sm_servers[region] = sm
            for host in self.cluster.hosts_in_region(region):
                node = self._new_node(host.host_id, host.memory_bytes,
                                      host.ssd_bytes)
                self.nodes[host.host_id] = node
                sm.register_host(node)
            coordinators[region] = RegionCoordinator(
                region,
                sm,
                self.catalog,
                self.directory,
                latency_model=self.latency_model,
                failure_model=failure_model,
                rng=self.rngs.stream(f"coordinator:{region}"),
                obs=self.obs,
                node_slots=cfg.executor_slots_per_host,
            )
        self.coordinators = coordinators
        # Failover data recovery crosses regions (paper §IV-D): when a
        # shard's only in-region copy dies, the new owner copies data
        # from a healthy server in a different region.
        for region, sm in self.sm_servers.items():
            sm.recovery_provider = self._make_recovery_provider(region)
        self.proxy = CubrickProxy(
            coordinators,
            home_region=cfg.home_region,
            locator=CachedRandom(),
            rng=self.rngs.stream("proxy"),
            obs=self.obs,
        )
        if cfg.result_cache_capacity > 0:
            self.proxy.result_cache = QueryResultCache(cfg.result_cache_capacity)
        self.automation = DatacenterAutomation(
            self.simulator,
            self.cluster,
            on_drain=self._drain_host,
            on_return=self._on_host_return,
        )
        self._failure_injector: Optional[FailureInjector] = None

    def _new_node(self, host_id: str, memory_bytes: int,
                  ssd_bytes: int) -> CubrickNode:
        """Construct one CubrickNode with the deployment's standard wiring."""
        node = CubrickNode(
            host_id,
            self.catalog,
            self.directory,
            memory_bytes=memory_bytes,
            ssd_bytes=ssd_bytes,
            exporter=make_exporter(self.config.lb_generation),
            decay_rng=self.rngs.stream(f"decay:{host_id}"),
            allow_ssd_eviction=(
                self.config.lb_generation is LoadBalanceGeneration.GEN3_SSD
            ),
            obs=self.obs,
        )
        if self.config.executor_slots_per_host is not None:
            node.execution_slots = NodeSlots(self.config.executor_slots_per_host)
        return node

    def _make_recovery_provider(self, region: str):
        def provider(shard_id: int):
            for other_region, sm in self.sm_servers.items():
                if other_region == region or not sm.has_shard(shard_id):
                    continue
                owner = sm.discovery.resolve_authoritative(shard_id)
                if (
                    owner is not None
                    and owner in sm.registered_hosts()
                    and self.cluster.host(owner).is_available
                ):
                    return sm.app_server(owner)
            return None

        return provider

    # ------------------------------------------------------------------
    # Sizing helpers
    # ------------------------------------------------------------------

    @property
    def hosts_per_region(self) -> int:
        return self.config.racks_per_region * self.config.hosts_per_rack

    def region_names(self) -> list[str]:
        return self.cluster.region_names()

    # ------------------------------------------------------------------
    # Table lifecycle
    # ------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema,
        *,
        num_partitions: Optional[int] = None,
        expected_rows: Optional[int] = None,
        replicated: bool = False,
    ) -> TableInfo:
        """Create a table in every region.

        The partition count defaults to the fan-out policy's decision:
        8 for partially-sharded tables (growing with ``expected_rows``),
        the whole region for fully-sharded ones.

        ``replicated=True`` creates a small dimension table fully copied
        to every node instead of sharded — the standard treatment for
        tables frequently joined against distributed ones (paper §II-B).
        """
        if replicated:
            info = self.catalog.create(schema, num_partitions=1,
                                       replicated=True)
            for node in self.nodes.values():
                node.store_replicated(schema.name)
            self._record_table_created(info)
            return info
        if num_partitions is None:
            num_partitions = self.fanout_policy.partitions_for_new_table(
                self.hosts_per_region, expected_rows=expected_rows
            )
        info = self.catalog.create(schema, num_partitions=num_partitions)
        shards = self.directory.register_table(schema.name, num_partitions)
        try:
            self._materialize_table(schema.name, shards)
        except Exception:
            self.directory.unregister_table(schema.name)
            self.catalog.drop(schema.name)
            raise
        self._record_table_created(info)
        return info

    def _record_table_created(self, info: TableInfo) -> None:
        self.obs.metrics.counter("cubrick.deployment.tables_created").inc()
        self.obs.events.emit(
            "cubrick.deployment.table_created",
            table=info.schema.name,
            partitions=info.num_partitions,
            replicated=info.replicated,
        )

    def _materialize_table(self, table: str, shards: list[int]) -> None:
        """Create the table's shards/partitions in every region's SM."""
        for sm in self.sm_servers.values():
            for index, shard in enumerate(shards):
                if sm.has_shard(shard):
                    # Cross-table partition collision: the shard already
                    # exists; attach the new partition where it lives.
                    owner = sm.discovery.resolve_authoritative(shard)
                    node = sm.app_server(owner)
                    node.attach_partition(shard, table, index)
                else:
                    sm.create_shard(shard, size_hint=1.0)

    def physical_table(self, name: str) -> str:
        """Physical name of the table's serving layout (reshard-aware)."""
        return self.catalog.get(name).physical_table

    def drop_table(self, name: str) -> None:
        """Drop a table everywhere; empty shards are released from SM."""
        info = self.catalog.get(name)
        if info.replicated:
            for node in self.nodes.values():
                node.drop_replicated(name)
            self.catalog.drop(name)
            return
        for physical in {info.physical_table} | (
            {info.pending_physical} if info.resharding else set()
        ):
            shards = self.directory.shards_for_table(physical)
            self.directory.unregister_table(physical)
            self._detach_table(physical, shards)
        self.catalog.drop(name)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, table: str, rows: list[dict[str, float]]) -> int:
        """Load rows into every region (three full copies, §IV-D).

        Replicated tables are copied to *every node* in the cluster.
        """
        info = self.catalog.get(table)
        schema = info.schema
        self.obs.metrics.counter(
            "cubrick.deployment.rows_loaded", table=table
        ).inc(len(rows))
        if info.replicated:
            for node in self.nodes.values():
                node.insert_into_replicated(table, rows)
            info.bump_ingest()
            return len(rows)
        self._load_into_layout(
            info.physical_table, schema, info.num_partitions, rows
        )
        if info.resharding:
            # Dual-write: a staged reshard keeps the pending layout in
            # sync with every ingest, so the cutover needs no catch-up.
            self._load_into_layout(
                info.pending_physical, schema, info.pending_partitions, rows
            )
        # New rows are visible: invalidate cached answers via the key.
        info.bump_ingest()
        return len(rows)

    def _load_into_layout(
        self,
        physical: str,
        schema: TableSchema,
        num_partitions: int,
        rows: list[dict[str, float]],
    ) -> None:
        """Insert rows into one physical layout in every region."""
        by_partition: dict[int, list[dict[str, float]]] = {}
        for row in rows:
            index = partition_of(schema, row, num_partitions)
            by_partition.setdefault(index, []).append(row)
        shards = self.directory.shards_for_table(physical)
        for sm in self.sm_servers.values():
            for index, partition_rows in by_partition.items():
                owner = sm.discovery.resolve_authoritative(shards[index])
                node = sm.app_server(owner)
                node.insert_into_partition(physical, index, partition_rows)

    def planner_context(self, *, optimize: bool = True):
        """A :class:`~repro.sql.PlannerContext` over this catalog.

        The statistics callback reports live total row counts for
        sharded tables (the broadcast vs. partitioned-hash signal) and
        ``None`` where counts are unavailable (e.g. replicated tables).
        """
        from repro.sql import PlannerContext

        def stats(table: str) -> Optional[int]:
            try:
                return self.total_rows(table)
            except Exception:
                return None

        return PlannerContext(
            catalog=self.catalog, stats=stats, optimize=optimize
        )

    def sql(self, statement: str, **query_kwargs) -> QueryResult:
        """Plan and execute one SQL statement.

        >>> deployment.sql("SELECT sum(clicks) FROM events LIMIT 5")

        The statement runs through the full :mod:`repro.sql` pipeline:
        parse, catalog-aware logical planning with the rewrite-rule
        pipeline, then physical lowering (proxy fan-out, broadcast join
        or partitioned-hash join depending on the tables involved).
        ``query_kwargs`` (``allow_partial``/``straggler_timeout``/
        ``deadline``) apply to proxy fan-out plans.
        """
        from repro.sql import build_physical, execute_plan, parse, plan

        stmt = parse(statement)
        logical = plan(stmt, self.planner_context(), source=statement)
        physical = build_physical(logical)
        return execute_plan(physical, self.proxy, **query_kwargs)

    def compile_sql(self, statement: str) -> Query:
        """Compile one single-table SELECT into a :class:`Query`.

        The managed admission path (:class:`~repro.sched.WorkloadManager`,
        and the serving gateway in front of it) schedules ``Query``
        objects, so SQL submitted there is compiled up front — errors
        (syntax, unknown table) surface at submission time, before the
        query consumes a queue slot.
        """
        from repro.cubrick.sql import parse_query

        query = parse_query(statement)
        self.catalog.get(query.table)  # raises TableNotFoundError early
        return query

    def explain(self, statement: str, *, optimize: bool = True) -> str:
        """Deterministic EXPLAIN text for one SQL statement.

        Pure planning — nothing executes. ``optimize=False`` skips the
        optional rewrite rules (pushdown, pruning, hash-join selection)
        so their effect can be diffed against the default plan.
        """
        from repro.sql import explain as sql_explain

        return sql_explain(statement, self.planner_context(optimize=optimize))

    def loader(self, table: str, *, batch_rows: int = 1000):
        """A :class:`~repro.cubrick.loader.StreamingLoader` for a table."""
        from repro.cubrick.loader import StreamingLoader

        return StreamingLoader(self, table, batch_rows=batch_rows)

    def workload_manager(self, policy=None):
        """A :class:`~repro.sched.WorkloadManager` in front of this proxy."""
        from repro.sched.manager import WorkloadManager

        return WorkloadManager(self, policy=policy)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(
        self,
        query: Query,
        *,
        allow_partial: bool = False,
        straggler_timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Submit a query through the Cubrick proxy.

        ``allow_partial``/``straggler_timeout`` select the Scuba-style
        accuracy-for-availability mode; ``deadline`` hedges slow regions
        (see :meth:`repro.cubrick.proxy.CubrickProxy.submit`).
        """
        return self.proxy.submit(
            query,
            allow_partial=allow_partial,
            straggler_timeout=straggler_timeout,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # Re-partitioning (paper §IV-B)
    # ------------------------------------------------------------------

    def maybe_repartition(self, table: str) -> bool:
        """Grow/shrink the table's partition count if thresholds demand.

        Returns True when a re-partition (with full data shuffle across
        all regions) was executed.
        """
        info = self.catalog.get(table)
        counts = self._partition_row_counts(table)
        if not counts:
            return False
        new_count = self.config.partitioning.next_partition_count(
            info.num_partitions, max(counts), sum(counts)
        )
        if new_count > info.num_partitions:
            # Growth is bounded by the smallest region: every partition
            # needs its own collision-free host (shard collisions are
            # refused), so a table can never have more partitions than
            # hosts. Defer the re-partition until capacity exists.
            capacity = min(
                sum(
                    1
                    for host in self.cluster.placeable_hosts(region)
                    if host.host_id in sm.registered_hosts()
                )
                for region, sm in self.sm_servers.items()
            )
            # Leave headroom: hosts may fail between this check and the
            # shuffle, and a table occupying every host leaves failovers
            # with no collision-free target.
            new_count = min(new_count, max(1, int(capacity * 0.75)))
            if new_count <= info.num_partitions:
                return False  # not enough hosts yet; try again later
        if new_count <= 0 or new_count == info.num_partitions:
            return False
        self._repartition(table, new_count)
        return True

    def _partition_row_counts(self, table: str) -> list[int]:
        """Row counts per partition, read from the first region."""
        info = self.catalog.get(table)
        physical = info.physical_table
        sm = next(iter(self.sm_servers.values()))
        shards = self.directory.shards_for_table(physical)
        counts = []
        for index in range(info.num_partitions):
            owner = sm.discovery.resolve_authoritative(shards[index])
            node = sm.app_server(owner)
            counts.append(node.partition(physical, index).rows)
        return counts

    def _repartition(self, table: str, new_count: int) -> None:
        info = self.catalog.get(table)
        schema = info.schema
        old_physical = info.physical_table
        # Collect all rows once, from the first region's copy.
        sm = next(iter(self.sm_servers.values()))
        shards = self.directory.shards_for_table(old_physical)
        rows: list[dict[str, float]] = []
        for index in range(info.num_partitions):
            owner = sm.discovery.resolve_authoritative(shards[index])
            node = sm.app_server(owner)
            rows.extend(node.partition(old_physical, index).all_rows())

        plan = plan_repartition(schema, rows, new_count)

        # Tear down the old layout and build the new one in all regions.
        self.directory.unregister_table(old_physical)
        self._detach_table(old_physical, shards)

        old_count = info.num_partitions
        new_physical = generation_alias(table, info.generation + 1)
        try:
            self._build_layout(table, new_physical, info, new_count, plan)
        except Exception:
            # Roll back to the old layout with the collected rows: a
            # failed re-partition must never lose the table.
            try:
                self.directory.unregister_table(new_physical)
            except ConfigurationError:
                pass
            attempted = self.mapper.shards_of(new_physical, new_count)
            self._detach_table(new_physical, attempted)
            old_plan = plan_repartition(schema, rows, old_count)
            self._build_layout(table, old_physical, info, old_count, old_plan)
            raise

    def _detach_table(self, table: str, shards: list[int]) -> None:
        """Remove a table's partitions from every region; drop empty shards."""
        for region_sm in self.sm_servers.values():
            for index, shard in enumerate(shards):
                if not region_sm.has_shard(shard):
                    continue
                owner = region_sm.discovery.resolve_authoritative(shard)
                if owner is not None and owner in region_sm.registered_hosts():
                    node = region_sm.app_server(owner)
                    if isinstance(node, CubrickNode):
                        node.detach_partition(shard, table, index)
            for shard in sorted(set(shards)):
                if region_sm.has_shard(shard) and not self.directory.contents(shard):
                    region_sm.drop_shard(shard)

    def _build_layout(
        self,
        table: str,
        physical: str,
        info: TableInfo,
        new_count: int,
        plan: dict[int, list[dict[str, float]]],
    ) -> None:
        """Register, materialise and load one partition layout.

        ``physical`` is the (possibly generation-tagged) name the layout
        is registered under; the catalog entry is flipped to serve it.
        """
        new_shards = self.directory.register_table(physical, new_count)
        info.num_partitions = new_count
        info.generation += 1
        info.serving_physical = "" if physical == table else physical
        self._materialize_table(physical, new_shards)
        for sm_region in self.sm_servers.values():
            for index in range(new_count):
                partition_rows = plan.get(index, [])
                if not partition_rows:
                    continue
                owner = sm_region.discovery.resolve_authoritative(new_shards[index])
                node = sm_region.app_server(owner)
                node.insert_into_partition(physical, index, partition_rows)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _drain_host(self, host_id: str) -> None:
        region = self.cluster.host(host_id).region
        self.sm_servers[region].drain_host(host_id)

    def start_failure_injection(
        self, model: MtbfFailureModel, *, until: Optional[float] = None
    ) -> FailureInjector:
        """Begin MTBF-driven host failures wired to automation + SM."""
        injector = FailureInjector(
            self.simulator,
            model,
            self.rngs.stream("failures"),
            on_fail=self.automation.handle_host_failure,
            on_recover=self._on_host_recover,
        )
        for host in self.cluster.hosts():
            injector.track(host.host_id, until=until)
        self._failure_injector = injector
        return injector

    def _on_host_recover(self, host_id: str) -> None:
        """Unplanned-failure recovery (wired to the failure injector)."""
        self.automation.handle_host_recovery(host_id)

    def _on_host_return(self, host_id: str) -> None:
        """A host came back (repair or maintenance done): rejoin SM.

        Its SM session expired while it was away (heartbeats stopped),
        so it returns as a fresh, empty server and re-registers — after
        which placement and load balancing can use it again.
        """
        region = self.cluster.host(host_id).region
        sm = self.sm_servers[region]
        if host_id not in sm.registered_hosts():
            self._reset_node(host_id)
            sm.reconnect_host(self.nodes[host_id])

    def _reset_node(self, host_id: str) -> None:
        """Replace a failed node with a fresh one (reimaged host).

        Replicated dimension tables are restored from any healthy peer,
        so local joins keep working once the host rejoins.
        """
        host = self.cluster.host(host_id)
        node = self._new_node(host_id, host.memory_bytes, host.ssd_bytes)
        self._replicate_dimension_tables(node)
        self.nodes[host_id] = node

    def _replicate_dimension_tables(self, node: CubrickNode) -> None:
        """Copy every replicated table (schema + data) onto one node."""
        for table, info in self.catalog.tables.items():
            if not info.replicated:
                continue
            node.store_replicated(table)
            donor = next(
                (
                    other
                    for other_id, other in self.nodes.items()
                    if other_id != node.host_id
                    and table in other.replicated_tables()
                    and self.cluster.host(other_id).is_available
                ),
                None,
            )
            if donor is not None:
                replica = donor.store_replicated(table)
                if replica.rows:
                    # Columnar copy through the vectorised bulk-load path.
                    node.store_replicated(table).insert_columns(
                        replica.all_columns()
                    )

    def start_background_maintenance(
        self,
        *,
        collect_interval: float = 60.0,
        balance_interval: float = 600.0,
        memory_monitor_interval: float = 300.0,
        decay_interval: float = 3600.0,
        until: Optional[float] = None,
    ) -> None:
        """Start SM loops plus per-node memory monitors and decay."""
        for sm in self.sm_servers.values():
            sm.start(
                collect_interval=collect_interval,
                balance_interval=balance_interval,
                until=until,
            )

        def maintain() -> None:
            for node in self.nodes.values():
                node.run_memory_monitor()

        def decay() -> None:
            for node in self.nodes.values():
                node.decay_hotness()

        self.simulator.schedule_periodic(
            memory_monitor_interval, maintain, until=until
        )
        self.simulator.schedule_periodic(decay_interval, decay, until=until)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Cluster resize (paper §II-C design question)
    # ------------------------------------------------------------------

    def add_hosts(self, region: str, count: int,
                  *, rack: str = "rack-exp", register: bool = True) -> list[str]:
        """Scale out: add hosts to a region and register them with SM.

        New hosts start empty; the next load-balancing run (or explicit
        ``sm.run_load_balance()``) spreads shards onto them. Because
        tables are partially sharded, adding hosts never increases any
        table's fan-out — the property that lets the system scale past
        the wall.

        ``register=False`` creates the host and its node but defers the
        SM registration — the warm-up phase of a staged provision
        (repro.autoscale.FleetController). Until
        :meth:`complete_host_registration` runs, the host reports no
        capacity, so SM placement and balancing ignore it.
        """
        if count <= 0:
            raise ConfigurationError(f"count must be positive: {count}")
        added = []
        existing = sum(
            1 for h in self.cluster.hosts()
            if h.region == region and h.rack == rack
        )
        for i in range(count):
            host_id = f"{region}-{rack}-host{existing + i:03d}"
            host = Host(
                host_id=host_id,
                region=region,
                rack=rack,
                memory_bytes=self.config.memory_bytes_per_host,
                ssd_bytes=self.config.ssd_bytes_per_host,
            )
            self.cluster.add_host(host)
            node = self._new_node(host_id, host.memory_bytes, host.ssd_bytes)
            self._replicate_dimension_tables(node)
            self.nodes[host_id] = node
            if register:
                self.complete_host_registration(host_id)
            added.append(host_id)
        return added

    def complete_host_registration(self, host_id: str) -> None:
        """Register a provisioned (warmed-up) host with its region's SM."""
        region = self.cluster.host(host_id).region
        sm = self.sm_servers[region]
        if host_id not in sm.registered_hosts():
            sm.register_host(self.nodes[host_id])
        if self._failure_injector is not None:
            self._failure_injector.track(host_id)

    def decommission_host(self, host_id: str) -> bool:
        """Scale in: drain a host's shards and remove it permanently.

        Returns False (and leaves the host untouched) when the
        automation safety checks refuse the request.
        """
        from repro.cluster.automation import MaintenanceKind

        request = self.automation.request_maintenance(
            MaintenanceKind.DECOMMISSION, [host_id], duration=1.0
        )
        if not request.approved:
            return False
        if self._failure_injector is not None:
            self._failure_injector.untrack(host_id)
        return True

    def summary(self) -> dict:
        """Operational snapshot: the console view SM dashboards provide.

        The paper notes one benefit of the SM integration is full-fledged
        management consoles and monitoring dashboards (§IV); this is the
        equivalent programmatic surface.
        """
        host_states: dict[str, int] = {}
        for host in self.cluster.hosts():
            host_states[host.state.value] = host_states.get(
                host.state.value, 0
            ) + 1
        regions = {}
        for region, sm in self.sm_servers.items():
            regions[region] = {
                "registered_hosts": len(sm.registered_hosts()),
                "shards": len(sm.shard_ids()),
                "migrations": sm.migrations.count_by_reason(),
                "unplaced_failovers": len(sm.unplaced_failovers),
                "imbalance": sm.balancer.imbalance(region),
            }
        return {
            "hosts": {"total": len(self.cluster), "by_state": host_states},
            "tables": {
                name: {
                    "partitions": info.num_partitions,
                    "generation": info.generation,
                    "replicated": info.replicated,
                }
                for name, info in sorted(self.catalog.tables.items())
            },
            "regions": regions,
            "proxy": {
                "queries": len(self.proxy.query_log),
                "success_ratio": self.proxy.success_ratio(),
                "first_try_success_ratio": self.proxy.first_try_success_ratio(),
                "blacklisted_hosts": self.proxy.blacklisted_hosts(),
            },
            "repairs": len(self.automation.repair_log),
        }

    def verify_replicas(self, table: str) -> dict:
        """Audit the §IV-D invariant: every region holds a full copy.

        Compares per-region row counts (and per-partition counts) of a
        table; returns ``{"consistent": bool, "regions": {region:
        total}, "divergent_partitions": [...]}``. Regions that are
        unavailable or mid-failover are reported but do not make the
        audit fail — only two *reachable* regions disagreeing does.
        """
        info = self.catalog.get(table)
        physical = info.physical_table
        shards = self.directory.shards_for_table(physical)
        per_region: dict[str, Optional[list[int]]] = {}
        for region, sm in self.sm_servers.items():
            counts: Optional[list[int]] = []
            for index in range(info.num_partitions):
                owner = sm.discovery.resolve_authoritative(shards[index])
                if (
                    owner is None
                    or owner not in sm.registered_hosts()
                    or not self.cluster.host(owner).is_available
                ):
                    counts = None  # region incomplete right now
                    break
                node = sm.app_server(owner)
                if not node.has_partition(physical, index):
                    counts = None
                    break
                counts.append(node.partition(physical, index).rows)
            per_region[region] = counts

        reachable = {r: c for r, c in per_region.items() if c is not None}
        divergent = []
        consistent = True
        if len(reachable) >= 2:
            reference_region, reference = next(iter(reachable.items()))
            for region, counts in reachable.items():
                for index, (a, b) in enumerate(zip(reference, counts)):
                    if a != b:
                        divergent.append(
                            {
                                "partition": index,
                                reference_region: a,
                                region: b,
                            }
                        )
                        consistent = False
        return {
            "consistent": consistent,
            "regions": {
                region: (sum(counts) if counts is not None else None)
                for region, counts in per_region.items()
            },
            "divergent_partitions": divergent,
        }

    def table_fanout(self, table: str) -> int:
        """Distinct hosts a query on this table touches (first region)."""
        if table not in self.catalog:
            raise TableNotFoundError(f"unknown table: {table}")
        sm = next(iter(self.sm_servers.values()))
        shards = self.directory.shards_for_table(self.physical_table(table))
        hosts = set()
        for shard in shards:
            hosts.add(sm.discovery.resolve_authoritative(shard))
        return len(hosts)

    def total_rows(self, table: str) -> int:
        return sum(self._partition_row_counts(table))
