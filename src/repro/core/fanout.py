"""Fan-out policy: full sharding vs. partial sharding (paper §II).

A *fully-sharded* table spreads across every node in the cluster, so its
query fan-out equals the cluster size and grows as the system scales
out — straight into the scalability wall. A *partially-sharded* table
is confined to a fixed (size-derived) number of partitions, so its
fan-out is independent of cluster size.

:class:`FanoutPolicy` decides the partition count for a new table under
either mode, and :class:`SlaPlanner` checks fan-outs against the wall.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.wall import query_success_ratio, scalability_wall
from repro.cubrick.partitioning import PartitioningPolicy
from repro.errors import ConfigurationError


class ShardingMode(enum.Enum):
    FULL = "full"
    PARTIAL = "partial"


@dataclass(frozen=True)
class FanoutPolicy:
    """Chooses the number of partitions (= fan-out) for a new table."""

    mode: ShardingMode = ShardingMode.PARTIAL
    partitioning: PartitioningPolicy = PartitioningPolicy()

    def partitions_for_new_table(
        self, cluster_hosts: int, *, expected_rows: int | None = None
    ) -> int:
        """Partition count for a table at creation time.

        Full sharding always spans the whole cluster. Partial sharding
        starts at the policy's initial count (8), or — when the expected
        size is known up front — enough partitions to respect the
        per-partition row ceiling.
        """
        if cluster_hosts <= 0:
            raise ConfigurationError(
                f"cluster_hosts must be positive: {cluster_hosts}"
            )
        if self.mode is ShardingMode.FULL:
            return cluster_hosts
        count = self.partitioning.initial_partitions
        if expected_rows is not None and expected_rows > 0:
            while (
                expected_rows / count > self.partitioning.max_rows_per_partition
                and count < self.partitioning.max_partitions
            ):
                count *= 2
            count = min(count, self.partitioning.max_partitions)
        return min(count, cluster_hosts) if self.mode is ShardingMode.PARTIAL else count


@dataclass(frozen=True)
class SlaPlanner:
    """Evaluates fan-outs against the scalability wall."""

    failure_probability: float
    sla: float

    @property
    def max_safe_fanout(self) -> int:
        """The wall: the largest SLA-compliant fan-out."""
        return scalability_wall(self.failure_probability, self.sla)

    def meets_sla(self, fanout: int) -> bool:
        return query_success_ratio(fanout, self.failure_probability) >= self.sla

    def expected_success(self, fanout: int) -> float:
        return query_success_ratio(fanout, self.failure_probability)

    def headroom(self, fanout: int) -> int:
        """How much further the fan-out can grow before hitting the wall."""
        return self.max_safe_fanout - fanout
