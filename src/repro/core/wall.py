"""The scalability wall: analytic model behind Figures 1 and 2.

Assume each server visited by a query independently has probability ``p``
of being failed at query time. A full-fan-out query visiting ``n``
servers succeeds only if all of them are healthy::

    success(n) = (1 - p) ** n

The **scalability wall** is the largest ``n`` for which ``success(n)``
still meets the system's SLA. With the paper's headline numbers —
p = 0.01% and a 99% query-success SLA — the wall sits at about 100
servers: beyond that, sharding a table across more nodes makes the
success ratio *worse*.

A Monte-Carlo estimator cross-checks the closed form, and the same model
evaluates partially-sharded systems, whose fan-out is the table's
partition count rather than the cluster size — which is why partial
sharding scales: adding nodes no longer adds fan-out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The paper's headline parameters (Figure 1).
PAPER_FAILURE_PROBABILITY = 1e-4  # 0.01% per-server failure chance
PAPER_SLA = 0.99  # 99% query success SLA


def query_success_ratio(fanout: int, failure_probability: float) -> float:
    """P(query succeeds) when visiting ``fanout`` servers."""
    _validate_probability(failure_probability)
    if fanout < 0:
        raise ConfigurationError(f"fanout must be non-negative: {fanout}")
    return (1.0 - failure_probability) ** fanout


def success_curve(fanouts: Sequence[int],
                  failure_probability: float) -> np.ndarray:
    """Vectorised :func:`query_success_ratio` over many fan-outs."""
    _validate_probability(failure_probability)
    counts = np.asarray(list(fanouts), dtype=np.float64)
    if (counts < 0).any():
        raise ConfigurationError("fanouts must be non-negative")
    return (1.0 - failure_probability) ** counts


def scalability_wall(failure_probability: float, sla: float) -> int:
    """Largest fan-out whose success ratio still meets the SLA.

    >>> scalability_wall(1e-4, 0.99)
    100
    """
    _validate_probability(failure_probability)
    if not 0.0 < sla < 1.0:
        raise ConfigurationError(f"sla must be in (0, 1): {sla}")
    if failure_probability == 0.0:
        return 2 ** 63 - 1  # no wall without failures
    return int(math.floor(math.log(sla) / math.log(1.0 - failure_probability)))


def required_failure_probability(fanout: int, sla: float) -> float:
    """Per-server failure probability needed to meet the SLA at a fan-out.

    Useful for the inverse question: "how reliable must servers be for a
    10,000-node full fan-out to meet 99%?"
    """
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive: {fanout}")
    if not 0.0 < sla < 1.0:
        raise ConfigurationError(f"sla must be in (0, 1): {sla}")
    return 1.0 - sla ** (1.0 / fanout)


def monte_carlo_success_ratio(
    fanout: int,
    failure_probability: float,
    *,
    trials: int = 100_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Empirical estimate of :func:`query_success_ratio` by simulation."""
    _validate_probability(failure_probability)
    if fanout < 0:
        raise ConfigurationError(f"fanout must be non-negative: {fanout}")
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive: {trials}")
    generator = rng if rng is not None else np.random.default_rng(0)
    if fanout == 0:
        return 1.0
    failures = generator.random((trials, fanout)) < failure_probability
    succeeded = ~failures.any(axis=1)
    return float(succeeded.mean())


@dataclass(frozen=True)
class WallAnalysis:
    """Summary of the wall for one (failure probability, SLA) setting."""

    failure_probability: float
    sla: float
    wall_fanout: int
    success_at_wall: float
    success_at_twice_wall: float

    @classmethod
    def compute(cls, failure_probability: float, sla: float) -> "WallAnalysis":
        wall = scalability_wall(failure_probability, sla)
        return cls(
            failure_probability=failure_probability,
            sla=sla,
            wall_fanout=wall,
            success_at_wall=query_success_ratio(wall, failure_probability),
            success_at_twice_wall=query_success_ratio(
                wall * 2, failure_probability
            ),
        )


def _validate_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"failure probability out of range: {p}")
