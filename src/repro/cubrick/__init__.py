"""Cubrick: an in-memory analytic DBMS optimized for low-latency OLAP.

A from-scratch reimplementation of the system described in the paper's
case study (§IV): columnar in-memory storage organised by Granular
Partitioning into bricks with hotness counters and adaptive compression;
tables dynamically split into partitions mapped onto Shard Manager's
flat shard space; distributed query execution with per-region
coordinators and a stateless proxy handling retries, admission control
and blacklisting.
"""

from repro.cubrick.bricks import Brick, BrickStats
from repro.cubrick.compression import (
    MemoryBudget,
    MemoryMonitor,
    MonitorReport,
    classify_hot_cold,
    decay_all,
)
from repro.cubrick.coordinator import QueryExecution, RegionCoordinator
from repro.cubrick.granular import GranularIndex
from repro.cubrick.loadbalance import (
    DecompressedSizeExporter,
    FootprintExporter,
    IopsAwareExporter,
    LoadBalanceGeneration,
    MetricExporter,
    SsdExporter,
    make_exporter,
)
from repro.cubrick.locator import (
    AlwaysPartitionZero,
    CachedRandom,
    CoordinatorLocator,
    ForwardFromZero,
    LocatorChoice,
    LookupThenRandom,
)
from repro.cubrick.node import CubrickNode
from repro.cubrick.partitioning import (
    PartitioningPolicy,
    partition_of,
    plan_repartition,
    skew,
)
from repro.cubrick.proxy import AdmissionController, CubrickProxy, QueryLogEntry
from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    CompareOp,
    Filter,
    FilterOp,
    Having,
    Join,
    PartialResult,
    Query,
    QueryResult,
)
from repro.cubrick.schema import (
    Catalog,
    Dimension,
    Metric,
    TableInfo,
    TableSchema,
    partition_name,
    split_partition_name,
)
from repro.cubrick.sharding import (
    CollisionReport,
    ConsistentHashMapper,
    MonotonicHashMapper,
    NaiveHashMapper,
    ReplicaMapper,
    ShardDirectory,
    analyze_collisions,
    stable_hash,
)
from repro.cubrick.sql import parse_query, render_query
from repro.cubrick.loader import LoaderStats, StreamingLoader
from repro.cubrick.storage import PartitionStorage

__all__ = [
    "Brick",
    "BrickStats",
    "MemoryBudget",
    "MemoryMonitor",
    "MonitorReport",
    "classify_hot_cold",
    "decay_all",
    "RegionCoordinator",
    "QueryExecution",
    "GranularIndex",
    "LoadBalanceGeneration",
    "MetricExporter",
    "FootprintExporter",
    "DecompressedSizeExporter",
    "IopsAwareExporter",
    "SsdExporter",
    "make_exporter",
    "CoordinatorLocator",
    "LocatorChoice",
    "AlwaysPartitionZero",
    "ForwardFromZero",
    "LookupThenRandom",
    "CachedRandom",
    "CubrickNode",
    "PartitioningPolicy",
    "partition_of",
    "plan_repartition",
    "skew",
    "CubrickProxy",
    "AdmissionController",
    "QueryLogEntry",
    "AggFunc",
    "Aggregation",
    "CompareOp",
    "Filter",
    "FilterOp",
    "Having",
    "Join",
    "PartialResult",
    "Query",
    "QueryResult",
    "Catalog",
    "Dimension",
    "Metric",
    "TableInfo",
    "TableSchema",
    "partition_name",
    "split_partition_name",
    "CollisionReport",
    "ConsistentHashMapper",
    "MonotonicHashMapper",
    "NaiveHashMapper",
    "ReplicaMapper",
    "ShardDirectory",
    "analyze_collisions",
    "stable_hash",
    "PartitionStorage",
    "parse_query",
    "render_query",
    "StreamingLoader",
    "LoaderStats",
]
