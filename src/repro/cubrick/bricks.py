"""Bricks: Cubrick's data blocks, with hotness counters and compression.

A *brick* is the unit of storage inside a partition, addressed by the
Granular Partitioning index (one brick per combination of per-dimension
range buckets). Each brick keeps a *hotness counter*: incremented when a
query touches the brick, and slowly, stochastically decayed over time
when unused (paper §IV-F2, inspired by LeanStore's hot/cold
classification [16]). The adaptive-compression memory monitor uses the
counters to compress coldest-first under memory pressure and decompress
hottest-first when memory frees up.

Storage is zero-copy on the bulk path: column data lives as a list of
sealed numpy *chunks* per column. ``append_columns`` appends the caller's
arrays directly (no ``.tolist()`` round-trip), ``columns()`` concatenates
the chunks once and caches the result (collapsing the chunk list so
repeated reads never re-concatenate), and decompression materialises
arrays straight from the zlib blobs without rebuilding Python list
builders. Row-at-a-time appends buffer into small pending lists that are
sealed into a chunk on the next read.

Compression here is *real*: column arrays are serialised and
zlib-compressed, so compressed footprints and the compression ratio come
from actual data, not a constant.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.cubrick.kernels import EncodedColumn
from repro.errors import CubrickError

DIMENSION_DTYPE = np.int64
METRIC_DTYPE = np.float64


@dataclass
class BrickStats:
    """Aggregate stats for monitoring/benchmarks."""

    rows: int
    hotness: float
    compressed: bool
    footprint_bytes: int
    decompressed_bytes: int
    evicted: bool = False
    ssd_bytes: int = 0
    io_reads: int = 0
    #: Columns with a live per-brick dictionary, and their total entries.
    encoded_columns: int = 0
    dictionary_entries: int = 0


@dataclass
class _EncodedCache:
    """A column's per-brick dictionary encoding, plus coverage row count.

    ``rows`` records how many rows the codes cover; appends don't
    invalidate the cache — the next :meth:`Brick.encoded` read extends
    it incrementally (union the tail's values into the dictionary, remap
    the old codes only when the dictionary actually grew)."""

    codes: np.ndarray
    dictionary: np.ndarray
    rows: int


class Brick:
    """One data block: columnar chunk storage for a bucket of rows.

    Bulk appends store sealed numpy chunks; row appends buffer into
    pending lists sealed on first read; ``columns()`` concatenates once
    and caches. Compression pickles the arrays through zlib. A compressed
    brick transparently decompresses on access (and the access bumps its
    hotness, so the memory monitor will tend to keep it decompressed).
    """

    def __init__(self, brick_id: int, dimension_names: tuple[str, ...],
                 metric_names: tuple[str, ...],
                 encoded_dimensions: tuple[str, ...] = ()):
        self.brick_id = brick_id
        self.dimension_names = dimension_names
        self.metric_names = metric_names
        #: Dimensions that carry a per-brick dictionary (high-cardinality
        #: entity columns — see ``TableSchema.encoded_dimension_names``).
        self.encoded_dimensions = tuple(encoded_dimensions)
        self._encoded: dict[str, _EncodedCache] = {}
        self._column_names = dimension_names + metric_names
        #: Sealed numpy chunks per column (the bulk-load fast path).
        self._chunks: dict[str, list[np.ndarray]] = {
            name: [] for name in self._column_names
        }
        #: Row-at-a-time append buffer, sealed into a chunk on read.
        self._pending: dict[str, list] = {
            name: [] for name in self._column_names
        }
        self._arrays: dict[str, np.ndarray] | None = None
        self._compressed: dict[str, bytes] | None = None
        # Generation-3 tier (paper §IV-F3): compressed blobs evicted to
        # SSD occupy no memory; reading them back costs an IO.
        self._ssd: dict[str, bytes] | None = None
        self._rows = 0
        self.hotness: float = 0.0
        self._touched_since_decay = False
        #: IOs paid loading this brick back from SSD (gen-3 LB input).
        self.io_reads = 0

    def _dtype_of(self, name: str) -> np.dtype:
        if name in self.dimension_names:
            return np.dtype(DIMENSION_DTYPE)
        return np.dtype(METRIC_DTYPE)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def append(self, row: dict[str, float]) -> None:
        """Append one row (loading/decompressing first if needed)."""
        if self._ssd is not None:
            self._load_from_ssd()
        if self._compressed is not None:
            self._decompress()
        for name in self.dimension_names:
            self._pending[name].append(int(row[name]))
        for name in self.metric_names:
            self._pending[name].append(float(row[name]))
        self._arrays = None
        self._rows += 1

    def append_columns(self, columns: dict[str, np.ndarray]) -> None:
        """Bulk-append pre-validated column arrays (same length each).

        The arrays are stored as sealed chunks directly — zero copy when
        the caller already supplies the storage dtypes.
        """
        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) != 1:
            raise CubrickError(f"ragged column lengths: {lengths}")
        missing = [
            name for name in self._column_names if name not in columns
        ]
        if missing:
            raise CubrickError(
                f"missing column {missing[0]!r} in bulk append"
            )
        if self._ssd is not None:
            self._load_from_ssd()
        if self._compressed is not None:
            self._decompress()
        n = next(iter(lengths.values()))
        for name in self._column_names:
            self._chunks[name].append(
                np.asarray(columns[name], dtype=self._dtype_of(name))
            )
        self._arrays = None
        self._rows += n

    def _seal_pending(self) -> None:
        """Turn buffered row appends into one sealed chunk per column."""
        for name, values in self._pending.items():
            if values:
                self._chunks[name].append(
                    np.asarray(values, dtype=self._dtype_of(name))
                )
                self._pending[name] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def rows(self) -> int:
        return self._rows

    def touch(self) -> None:
        """A query needed this brick: bump its hotness counter."""
        self.hotness += 1.0
        self._touched_since_decay = True

    def columns(self) -> dict[str, np.ndarray]:
        """The sealed columnar arrays (loading/decompressing if needed).

        Chunks are concatenated at most once: the chunk list collapses to
        the concatenated array, so repeated reads (and reads after a
        collapse) are zero-copy until the next append.
        """
        if self._ssd is not None:
            self._load_from_ssd()
        if self._compressed is not None:
            self._decompress()
        if self._arrays is None:
            self._seal_pending()
            arrays: dict[str, np.ndarray] = {}
            for name in self._column_names:
                chunks = self._chunks[name]
                if not chunks:
                    sealed = np.empty(0, dtype=self._dtype_of(name))
                elif len(chunks) == 1:
                    sealed = chunks[0]
                else:
                    sealed = np.concatenate(chunks)
                    self._chunks[name] = [sealed]
                arrays[name] = sealed
            self._arrays = arrays
        return self._arrays

    def encoded(self, name: str) -> EncodedColumn:
        """The column's per-brick dictionary encoding (built lazily).

        Returns ``EncodedColumn(codes, dictionary)`` with ``dictionary``
        sorted ascending and ``dictionary[codes]`` reconstructing the
        raw column. The first read after a load pays one ``np.unique``;
        subsequent appends extend the cache incrementally: the appended
        tail's values union into the dictionary, and the old codes remap
        only when the dictionary actually grew. Compression and SSD
        eviction drop the cache (it's memory the monitor wants back) —
        the next scan after decompression rebuilds it.
        """
        values = self.columns()[name]
        cached = self._encoded.get(name)
        if cached is not None and cached.rows == len(values):
            return EncodedColumn(cached.codes, cached.dictionary)
        if cached is None or cached.rows > len(values):
            dictionary, codes = np.unique(values, return_inverse=True)
            codes = codes.astype(np.int64)
        else:
            tail = values[cached.rows:]
            old_dict = cached.dictionary
            new_dict = np.union1d(old_dict, tail)
            tail_codes = np.searchsorted(new_dict, tail)
            if len(new_dict) == len(old_dict):
                dictionary = old_dict
                codes = np.concatenate([cached.codes, tail_codes])
            else:
                remap = np.searchsorted(new_dict, old_dict)
                dictionary = new_dict
                codes = np.concatenate(
                    [remap[cached.codes], tail_codes]
                )
        self._encoded[name] = _EncodedCache(codes, dictionary, len(values))
        return EncodedColumn(codes, dictionary)

    # ------------------------------------------------------------------
    # Hotness decay (paper §IV-F2)
    # ------------------------------------------------------------------

    def decay(self, rng: np.random.Generator, probability: float = 0.5,
              factor: float = 0.5) -> None:
        """Stochastically decay the counter if the brick sat unused.

        With ``probability``, an untouched brick's counter is multiplied
        by ``factor``. Touched bricks skip decay this round (recent use
        protects them) and the touch flag resets.
        """
        if self._touched_since_decay:
            self._touched_since_decay = False
            return
        if self.hotness > 0 and rng.random() < probability:
            self.hotness *= factor
            if self.hotness < 1e-3:
                self.hotness = 0.0

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------

    @property
    def is_compressed(self) -> bool:
        return self._compressed is not None

    def compress(self) -> None:
        """zlib-compress the sealed arrays, dropping the chunk storage."""
        if self._compressed is not None:
            return
        arrays = self.columns()
        self._compressed = {
            name: zlib.compress(np.ascontiguousarray(arr).tobytes(), level=1)
            for name, arr in arrays.items()
        }
        self._arrays = None
        self._chunks = {name: [] for name in self._column_names}
        self._pending = {name: [] for name in self._column_names}
        self._encoded = {}

    def _decompress(self) -> None:
        assert self._compressed is not None
        arrays: dict[str, np.ndarray] = {}
        for name in self._column_names:
            raw = zlib.decompress(self._compressed[name])
            # frombuffer views the decompressed bytes — no second copy,
            # and no Python-list rebuild (the old path doubled memory).
            arrays[name] = np.frombuffer(raw, dtype=self._dtype_of(name))
        self._compressed = None
        self._arrays = arrays
        self._chunks = {name: [arr] for name, arr in arrays.items()}
        self._pending = {name: [] for name in self._column_names}

    def decompress(self) -> None:
        """Public decompression hook for the memory monitor."""
        if self._ssd is not None:
            self._load_from_ssd()
        if self._compressed is not None:
            self._decompress()

    # ------------------------------------------------------------------
    # SSD eviction (generation 3, paper §IV-F3)
    # ------------------------------------------------------------------

    @property
    def is_evicted(self) -> bool:
        return self._ssd is not None

    def evict(self) -> None:
        """Move the brick's (compressed) bytes to SSD; frees all memory.

        An unevicted read (:meth:`columns`, :meth:`append`) transparently
        pays one IO and restores the compressed-in-memory state.
        """
        if self._ssd is not None:
            return
        if self._compressed is None:
            self.compress()
        self._ssd = self._compressed
        self._compressed = None
        self._arrays = None
        self._chunks = {name: [] for name in self._column_names}
        self._pending = {name: [] for name in self._column_names}

    def _load_from_ssd(self) -> None:
        assert self._ssd is not None
        self.io_reads += 1
        self._compressed = self._ssd
        self._ssd = None

    def load_from_ssd(self) -> None:
        """Public un-evict hook for the memory monitor (counts the IO)."""
        if self._ssd is not None:
            self._load_from_ssd()

    def ssd_bytes(self) -> int:
        """Bytes this brick occupies on SSD (0 when memory-resident)."""
        if self._ssd is None:
            return 0
        return sum(len(blob) for blob in self._ssd.values())

    # ------------------------------------------------------------------
    # Footprint accounting
    # ------------------------------------------------------------------

    def decompressed_bytes(self) -> int:
        """Memory the brick would occupy fully decompressed.

        This is the load-balancing metric of Cubrick's second generation
        (paper §IV-F2): stable under the server's current memory
        pressure, changing only when data is added.
        """
        width = np.dtype(DIMENSION_DTYPE).itemsize * len(self.dimension_names)
        width += np.dtype(METRIC_DTYPE).itemsize * len(self.metric_names)
        return self._rows * width

    def footprint_bytes(self) -> int:
        """Actual current *memory* footprint (0 when evicted to SSD)."""
        if self._ssd is not None:
            return 0
        if self._compressed is not None:
            return sum(len(blob) for blob in self._compressed.values())
        return self.decompressed_bytes()

    def compression_ratio(self) -> float:
        """decompressed/compressed size (1.0 when not compressed)."""
        footprint = self.footprint_bytes()
        if not self.is_compressed or footprint == 0:
            return 1.0
        return self.decompressed_bytes() / footprint

    def stats(self) -> BrickStats:
        return BrickStats(
            rows=self._rows,
            hotness=self.hotness,
            compressed=self.is_compressed,
            footprint_bytes=self.footprint_bytes(),
            decompressed_bytes=self.decompressed_bytes(),
            evicted=self.is_evicted,
            ssd_bytes=self.ssd_bytes(),
            io_reads=self.io_reads,
            encoded_columns=len(self._encoded),
            dictionary_entries=sum(
                len(c.dictionary) for c in self._encoded.values()
            ),
        )
