"""Adaptive compression: the memory monitor (paper §IV-F2).

Cubrick keeps hotness counters per brick. When a host runs low on free
memory, a memory-monitor procedure incrementally compresses bricks from
*coldest to hottest* until enough memory is freed; when there is a
surplus, it decompresses from *hottest to coldest*, minimising the
decompressions paid at query time.

The monitor operates on any collection of bricks (typically all bricks
of all partitions on one host) against a configured memory budget with
high/low watermarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.cubrick.bricks import Brick
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryBudget:
    """Host memory budget with hysteresis watermarks.

    The monitor compresses when footprint exceeds
    ``high_watermark * capacity`` (down to the target) and decompresses
    when it falls below ``low_watermark * capacity``.
    """

    capacity_bytes: int
    high_watermark: float = 0.9
    low_watermark: float = 0.7

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive: {self.capacity_bytes}"
            )
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ConfigurationError(
                f"watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )

    @property
    def high_bytes(self) -> int:
        return int(self.capacity_bytes * self.high_watermark)

    @property
    def low_bytes(self) -> int:
        return int(self.capacity_bytes * self.low_watermark)


@dataclass
class MonitorReport:
    """What one monitor pass did."""

    footprint_before: int
    footprint_after: int
    compressed: int
    decompressed: int
    evicted: int = 0
    loaded: int = 0


class MemoryMonitor:
    """Compress coldest-first under pressure; decompress hottest-first.

    With ``allow_eviction=True`` (the generation-3 model of §IV-F3), a
    host still above its low watermark after compressing everything
    starts *evicting* the coldest compressed bricks to SSD — memory
    footprint can then drop all the way to zero, which is exactly why
    the generation-2 metric stops working and SSD footprint (plus IOPS)
    becomes the load-balancing input.
    """

    def __init__(self, budget: MemoryBudget, *, allow_eviction: bool = False):
        self.budget = budget
        self.allow_eviction = allow_eviction

    @staticmethod
    def _footprint(bricks: list[Brick]) -> int:
        return sum(b.footprint_bytes() for b in bricks)

    def run(self, bricks: Iterable[Brick]) -> MonitorReport:
        """One monitor pass over the host's bricks."""
        brick_list = list(bricks)
        before = self._footprint(brick_list)
        compressed = 0
        decompressed = 0
        evicted = 0
        loaded = 0
        footprint = before

        if footprint > self.budget.high_bytes:
            # Memory pressure: compress coldest-first until under the
            # low watermark (hysteresis avoids thrashing at the edge).
            candidates = sorted(
                (b for b in brick_list
                 if not b.is_compressed and not b.is_evicted and b.rows > 0),
                key=lambda b: (b.hotness, b.brick_id),
            )
            for brick in candidates:
                if footprint <= self.budget.low_bytes:
                    break
                old = brick.footprint_bytes()
                brick.compress()
                footprint += brick.footprint_bytes() - old
                compressed += 1
            if self.allow_eviction and footprint > self.budget.low_bytes:
                # Still under pressure: evict coldest compressed bricks.
                evictable = sorted(
                    (b for b in brick_list if b.is_compressed),
                    key=lambda b: (b.hotness, b.brick_id),
                )
                for brick in evictable:
                    if footprint <= self.budget.low_bytes:
                        break
                    old = brick.footprint_bytes()
                    brick.evict()
                    footprint -= old
                    evicted += 1
        elif footprint < self.budget.low_bytes:
            # Surplus: decompress hottest-first while staying under the
            # high watermark...
            candidates = sorted(
                (b for b in brick_list if b.is_compressed),
                key=lambda b: (-b.hotness, b.brick_id),
            )
            for brick in candidates:
                gain = brick.decompressed_bytes() - brick.footprint_bytes()
                if footprint + gain > self.budget.high_bytes:
                    continue
                brick.decompress()
                footprint += gain
                decompressed += 1
            # ... then pull the hottest evicted bricks back from SSD.
            if self.allow_eviction:
                returners = sorted(
                    (b for b in brick_list if b.is_evicted),
                    key=lambda b: (-b.hotness, b.brick_id),
                )
                for brick in returners:
                    gain = brick.ssd_bytes()
                    if footprint + gain > self.budget.high_bytes:
                        continue
                    brick.load_from_ssd()
                    footprint += brick.footprint_bytes()
                    loaded += 1

        return MonitorReport(
            footprint_before=before,
            footprint_after=footprint,
            compressed=compressed,
            decompressed=decompressed,
            evicted=evicted,
            loaded=loaded,
        )


def decay_all(bricks: Iterable[Brick], rng: np.random.Generator,
              probability: float = 0.5, factor: float = 0.5) -> int:
    """Apply one stochastic decay round to every brick; returns count."""
    count = 0
    for brick in bricks:
        brick.decay(rng, probability=probability, factor=factor)
        count += 1
    return count


def classify_hot_cold(bricks: Iterable[Brick],
                      hot_threshold: float = 1.0) -> tuple[int, int]:
    """Split bricks into (hot, cold) counts by hotness threshold.

    Figure 4e plots this distribution for a production week: hot blocks
    (recently queried, counter above threshold) versus cold ones.
    """
    hot = 0
    cold = 0
    for brick in bricks:
        if brick.hotness >= hot_threshold:
            hot += 1
        else:
            cold += 1
    return hot, cold
