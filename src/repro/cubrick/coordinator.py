"""Query coordinator: distributed execution within one region (§IV-C/D).

A query is executed entirely inside one region: the coordinator host
(one of the hosts storing a partition of the target table) distributes
the query to every host holding partitions, collects partial results and
merges them. If *any* required partition is unavailable in the region,
the query fails and the Cubrick proxy retries it in a different region —
there is never cross-region traffic during execution.

Latency is simulated: each participating host's service time is sampled
from the tail-latency model, and the query's latency is the max over
hosts (fan-out amplification) plus coordinator merge overhead — the
mechanism behind Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.chaos.policies import ResiliencePolicy
from repro.cubrick.query import PartialResult, Query, QueryResult
from repro.cubrick.schema import Catalog
from repro.cubrick.sharding import ShardDirectory
from repro.errors import (
    ConfigurationError,
    PartitionNotFoundError,
    QueryFailedError,
    ShardMappingUnknownError,
)
from repro.obs import Observability
from repro.sched.queue import NodeSlots
from repro.shardmanager.server import SMServer
from repro.sim.latency import LatencyModel, LogNormalTailLatency
from repro.sim.failures import BernoulliFailureModel


@dataclass
class QueryExecution:
    """Diagnostics for one executed (or failed) query."""

    query: Query
    region: str
    fanout: int = 0
    latency: float = 0.0
    per_host_latency: dict[str, float] = field(default_factory=dict)
    failed_host: Optional[str] = None
    succeeded: bool = False


class RegionCoordinator:
    """Executes queries against the Cubrick nodes of one region."""

    #: Fixed merge/parse overhead charged on the coordinator, per query.
    COORDINATOR_OVERHEAD = 0.001
    #: Cost of one extra result-buffer network hop (locator strategy 2).
    HOP_COST = 0.002

    def __init__(
        self,
        region: str,
        sm_server: SMServer,
        catalog: Catalog,
        directory: ShardDirectory,
        *,
        latency_model: Optional[LatencyModel] = None,
        failure_model: Optional[BernoulliFailureModel] = None,
        rng: Optional[np.random.Generator] = None,
        policy: Optional[ResiliencePolicy] = None,
        obs: Optional[Observability] = None,
        node_slots: Optional[int] = None,
    ):
        self.region = region
        self.sm = sm_server
        self.catalog = catalog
        self.directory = directory
        self.latency_model = (
            latency_model if latency_model is not None else LogNormalTailLatency()
        )
        self.failure_model = failure_model
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Default resilience policy for executions (per-hop timeouts and
        #: hedging); the proxy may override per call. None = legacy
        #: behaviour (no per-hop bound, no hedging).
        self.policy = policy
        #: Chaos hook: maps (host_id, sampled service time) -> shaped
        #: service time. Installed by ChaosInjector for slow-disk,
        #: tail-amplification and hang faults.
        self.service_time_hook: Optional[Callable[[str, float], float]] = None
        #: Per-host execution lanes (repro.sched). None = legacy
        #: behaviour: unbounded concurrency, no lane wait.
        self.node_slots_per_host = node_slots
        self._node_slots: dict[str, NodeSlots] = {}
        self.executions: list[QueryExecution] = []
        self.obs = obs if obs is not None else Observability()
        self._latency_histogram = self.obs.metrics.histogram(
            "cubrick.coordinator.latency_seconds", region=region
        )
        self._fanout_histogram = self.obs.metrics.histogram(
            "cubrick.coordinator.fanout_hosts",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            region=region,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def partition_hosts(self, table: str) -> dict[str, list[int]]:
        """host id → partition indexes it must answer for, via SMC.

        ``table`` may be a logical catalog name (resolved to the serving
        physical layout, which may be a generation-tagged alias while an
        online reshard is in flight) or a physical alias directly.

        Raises :class:`QueryFailedError` if any partition's shard has no
        propagated mapping (e.g. a failover still publishing).
        """
        info = self.catalog.tables.get(table)
        physical = info.physical_table if info is not None else table
        shards = self.directory.shards_for_table(physical)
        now = self.sm.simulator.now
        hosts: dict[str, list[int]] = {}
        for index, shard in enumerate(shards):
            try:
                # The coordinator resolves through its own local SMC
                # proxy, with its own propagation delays (Figure 3).
                host = self.sm.discovery.resolve(
                    shard, now, client_id=f"coordinator:{self.region}"
                )
            except ShardMappingUnknownError as exc:
                raise QueryFailedError(
                    f"table {table}: shard {shard} unresolved in {self.region}",
                    region=self.region,
                ) from exc
            if host is None:
                raise QueryFailedError(
                    f"table {table}: shard {shard} unassigned in {self.region}",
                    region=self.region,
                )
            hosts.setdefault(host, []).append(index)
        return hosts

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        *,
        coordinator_partition: int = 0,
        extra_hops: int = 0,
        extra_roundtrips: int = 0,
        allow_partial: bool = False,
        straggler_timeout: Optional[float] = None,
        policy: Optional[ResiliencePolicy] = None,
        extra_lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> QueryResult:
        """Distribute, execute and merge one query in this region.

        In the default (strict) mode, a down or failed participating host
        raises a retryable :class:`QueryFailedError` — the Cubrick proxy
        then retries in a different region, preserving result accuracy.

        ``allow_partial=True`` switches to the Scuba-style mode the paper
        describes as the *other* way past the wall (§II-C): answers from
        dead hosts are silently dropped, and — when ``straggler_timeout``
        is set — so are answers from hosts slower than the timeout. The
        result carries ``metadata["partial"]`` and ``metadata["coverage"]``
        (fraction of partitions that contributed), trading consistency
        and accuracy for availability and bounded latency.

        ``policy`` (falling back to the coordinator's default) adds the
        unified resilience semantics: a host whose shaped service time
        exceeds the per-hop timeout **counts as failed** — it raises the
        same retryable error as a crashed host (or is skipped in partial
        mode) — and hosts slower than the hedge trigger are hedged with
        duplicate requests, the fastest answer winning.

        ``extra_lookups`` passes coordinator-built join lookup arrays
        (keyed by dotted column name) down to every node scan — the SQL
        physical plan's broadcast-join step for sharded dimension
        tables.
        """
        if policy is None:
            policy = self.policy
        with self.obs.tracer.span(
            "cubrick.coordinator.execute", region=self.region, table=query.table
        ) as span:
            try:
                result = self._execute(
                    query,
                    span,
                    coordinator_partition=coordinator_partition,
                    extra_hops=extra_hops,
                    extra_roundtrips=extra_roundtrips,
                    allow_partial=allow_partial,
                    straggler_timeout=straggler_timeout,
                    policy=policy,
                    extra_lookups=extra_lookups,
                )
            except QueryFailedError as exc:
                span.annotate(outcome="failed", error=str(exc))
                self.obs.metrics.counter(
                    "cubrick.coordinator.queries",
                    region=self.region,
                    outcome="failed",
                ).inc()
                raise
        self.obs.metrics.counter(
            "cubrick.coordinator.queries", region=self.region, outcome="ok"
        ).inc()
        return result

    def _execute(
        self,
        query: Query,
        span,
        *,
        coordinator_partition: int,
        extra_hops: int,
        extra_roundtrips: int,
        allow_partial: bool,
        straggler_timeout: Optional[float],
        policy: Optional[ResiliencePolicy],
        extra_lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> QueryResult:
        info = self.catalog.get(query.table)
        execution = QueryExecution(query=query, region=self.region)
        self.executions.append(execution)

        # Mid-reshard, the serving layout lives under a generation-tagged
        # physical alias; nodes key partition storage by that name, so
        # the query is rewritten before local execution. Results and
        # metadata keep presenting the logical name.
        physical = info.physical_table
        exec_query = (
            query if physical == query.table
            else replace(query, table=physical)
        )
        hosts = self.partition_hosts(physical)
        execution.fanout = len(hosts)
        total_partitions = sum(len(v) for v in hosts.values())

        (
            merged,
            slowest,
            answered_partitions,
            hedges,
            skipped_hosts,
        ) = self._fanout_partials(
            query,
            exec_query,
            hosts,
            execution,
            allow_partial=allow_partial,
            straggler_timeout=straggler_timeout,
            policy=policy,
            extra_lookups=extra_lookups,
        )

        latency = (
            slowest
            + self.COORDINATOR_OVERHEAD
            + extra_hops * self.HOP_COST
            + extra_roundtrips * self.HOP_COST
        )
        if allow_partial and straggler_timeout is not None:
            # The coordinator stopped waiting at the timeout.
            latency = min(
                latency,
                straggler_timeout + self.COORDINATOR_OVERHEAD
                + (extra_hops + extra_roundtrips) * self.HOP_COST,
            )
        execution.latency = latency
        execution.succeeded = True
        self._latency_histogram.observe(latency)
        self._fanout_histogram.observe(execution.fanout)

        # The merge/consolidate pass sits at the tail of the coordinator's
        # critical path: its cost is the fixed overhead plus topology hop
        # costs, so the merge span occupies exactly that tail window.
        merge_cost = (
            self.COORDINATOR_OVERHEAD
            + (extra_hops + extra_roundtrips) * self.HOP_COST
        )
        with self.obs.tracer.span(
            "cubrick.coordinator.merge", region=self.region
        ) as merge_span:
            result = merged.finalize()
            merge_span.start = span.start + (latency - merge_cost)
            merge_span.set_duration(merge_cost)
            merge_span.annotate(
                compactions=merged.compactions,
                blocks_consolidated=merged.blocks_consolidated,
                groups=len(result.rows),
            )
        coverage = (
            answered_partitions / total_partitions if total_partitions else 1.0
        )
        span.set_duration(latency)
        span.annotate(
            fanout=execution.fanout,
            coverage=coverage,
            extra_hops=extra_hops,
            extra_roundtrips=extra_roundtrips,
            hedges=hedges,
        )
        result.metadata.update(
            {
                "table": query.table,
                "num_partitions": info.num_partitions,
                "generation": info.generation,
                "region": self.region,
                "latency": latency,
                "fanout": execution.fanout,
                "coordinator_partition": coordinator_partition,
                "partial": bool(skipped_hosts),
                "coverage": coverage,
                "skipped_hosts": skipped_hosts,
                "hedges": hedges,
            }
        )
        return result

    def _fanout_partials(
        self,
        query: Query,
        exec_query: Query,
        hosts: dict[str, list[int]],
        execution: QueryExecution,
        *,
        allow_partial: bool,
        straggler_timeout: Optional[float],
        policy: Optional[ResiliencePolicy],
        extra_lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> tuple[PartialResult, float, int, int, list[str]]:
        """Run the per-host scan loop and merge node partials.

        Shared by :meth:`_execute` (which finalizes the merge into rows)
        and :meth:`execute_partials` (which hands the pre-finalize
        partial to the SQL physical plan's hash-join step). Returns
        ``(merged, slowest, answered_partitions, hedges, skipped)``.
        """
        merged = PartialResult(query=query)
        slowest = 0.0
        answered_partitions = 0
        hedges = 0
        skipped_hosts: list[str] = []
        for host_id in sorted(hosts):
            indexes = hosts[host_id]
            host = self.sm.cluster.host(host_id)
            failed = not host.is_available
            if not failed and self.failure_model is not None:
                failed = self._rng.random() < self.failure_model.probability
            if failed:
                if allow_partial:
                    skipped_hosts.append(host_id)
                    continue
                execution.failed_host = host_id
                raise QueryFailedError(
                    f"host {host_id} unavailable/failed during query on "
                    f"{query.table}",
                    region=self.region,
                    host=host_id,
                )
            service_time = self._sample_service_time(host_id)
            if policy is not None and policy.hedge.enabled:
                service_time, used = self._hedged_service_time(
                    host_id, service_time, policy
                )
                hedges += used
            # Per-host lane contention: a busy host answers later queries
            # slower. The lane wait counts against per-hop timeouts, like
            # real queueing at the node would.
            raw_service = service_time
            service_time = self._shape_node_slots(host_id, service_time)
            lane_wait = service_time - raw_service
            if policy is not None and policy.timeout.is_timeout(service_time):
                # Unified per-hop timeout semantics: a hop slower than
                # the bound consumes an attempt exactly like a crash.
                if allow_partial:
                    skipped_hosts.append(host_id)
                    continue
                execution.failed_host = host_id
                raise QueryFailedError(
                    f"host {host_id} exceeded {policy.timeout.per_hop}s "
                    f"per-hop timeout during query on {query.table}",
                    region=self.region,
                    host=host_id,
                )
            if (
                allow_partial
                and straggler_timeout is not None
                and service_time > straggler_timeout
            ):
                # Scuba-style: too slow, drop its answer entirely.
                skipped_hosts.append(host_id)
                continue
            try:
                node = self.sm.app_server(host_id)
            except ConfigurationError:
                # The SMC mapping still points at a host whose SM session
                # expired: the host is cluster-healthy but deregistered
                # while failover publications propagate. Treat it exactly
                # like an unavailable host — skip in partial mode, else
                # fail this attempt so the proxy retries elsewhere.
                if allow_partial:
                    skipped_hosts.append(host_id)
                    continue
                execution.failed_host = host_id
                raise QueryFailedError(
                    f"host {host_id} is not registered with the shard "
                    f"manager (failover propagating) during query on "
                    f"{query.table}",
                    region=self.region,
                    host=host_id,
                )
            # The scan span's duration is the *sampled* service time: the
            # simulated clock does not advance during execution, so the
            # latency model's draw is the span's ground truth.
            with self.obs.tracer.span(
                "cubrick.node.scan", host=host_id, region=self.region
            ) as scan_span:
                try:
                    partial = node.execute_local(
                        exec_query, indexes, extra_lookups
                    )
                except PartitionNotFoundError as exc:
                    if allow_partial:
                        scan_span.annotate(skipped="partition_missing")
                        skipped_hosts.append(host_id)
                        continue
                    # Stale SMC mapping: the authoritative owner may differ.
                    partial = self._forwarded_execution(
                        exec_query, host_id, indexes, exc, extra_lookups
                    )
                scan_span.set_duration(service_time)
                scan_span.annotate(
                    partitions=len(indexes),
                    bricks_scanned=partial.bricks_scanned,
                    rows_scanned=partial.rows_scanned,
                    lane_wait=lane_wait,
                )
                self._retime_kernels(scan_span, lane_wait)
            execution.per_host_latency[host_id] = service_time
            slowest = max(slowest, service_time)
            answered_partitions += len(indexes)
            merged.merge(partial)
        return merged, slowest, answered_partitions, hedges, skipped_hosts

    def execute_partials(
        self,
        query: Query,
        *,
        extra_lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
        policy: Optional[ResiliencePolicy] = None,
    ) -> tuple[PartialResult, dict]:
        """Fan out a query and return the merged *pre-finalize* partial.

        The SQL physical plan's partitioned-hash join fans out the fact
        scan grouped by the join key, then joins and re-aggregates the
        raw partial states on the coordinator before finalizing — so it
        needs the merged partial, not shaped rows. Strict mode only: a
        failed host raises a retryable :class:`QueryFailedError`.
        """
        if policy is None:
            policy = self.policy
        info = self.catalog.get(query.table)
        execution = QueryExecution(query=query, region=self.region)
        self.executions.append(execution)
        physical = info.physical_table
        exec_query = (
            query if physical == query.table
            else replace(query, table=physical)
        )
        with self.obs.tracer.span(
            "cubrick.coordinator.gather", region=self.region, table=query.table
        ) as span:
            hosts = self.partition_hosts(physical)
            execution.fanout = len(hosts)
            merged, slowest, _, hedges, _ = self._fanout_partials(
                query,
                exec_query,
                hosts,
                execution,
                allow_partial=False,
                straggler_timeout=None,
                policy=policy,
                extra_lookups=extra_lookups,
            )
            latency = slowest + self.COORDINATOR_OVERHEAD
            execution.latency = latency
            execution.succeeded = True
            span.set_duration(latency)
            span.annotate(fanout=execution.fanout, hedges=hedges)
        self._latency_histogram.observe(latency)
        self._fanout_histogram.observe(execution.fanout)
        return merged, {
            "region": self.region,
            "latency": latency,
            "fanout": execution.fanout,
            "hedges": hedges,
        }

    def collect_columns(
        self,
        table: str,
        columns: list[str],
        filters: tuple = (),
        *,
        policy: Optional[ResiliencePolicy] = None,
    ) -> tuple[dict[str, np.ndarray], float, int]:
        """Gather raw columns of a sharded table onto the coordinator.

        The SQL physical plan's join strategies pull a sharded dimension
        table's (filtered) key and attribute columns here — broadcast
        builds per-fact-row lookup arrays from them, partitioned-hash
        builds the join hash side. Strict mode only: any unavailable
        host raises a retryable :class:`QueryFailedError`. Arrays
        concatenate in sorted host order, partition order within each
        host, so collection is deterministic for a fixed layout.
        """
        if policy is None:
            policy = self.policy
        info = self.catalog.tables.get(table)
        physical = info.physical_table if info is not None else table
        with self.obs.tracer.span(
            "cubrick.coordinator.collect", region=self.region, table=table
        ) as span:
            hosts = self.partition_hosts(physical)
            parts: dict[str, list[np.ndarray]] = {name: [] for name in columns}
            slowest = 0.0
            for host_id in sorted(hosts):
                indexes = hosts[host_id]
                host = self.sm.cluster.host(host_id)
                failed = not host.is_available
                if not failed and self.failure_model is not None:
                    failed = self._rng.random() < self.failure_model.probability
                if failed:
                    raise QueryFailedError(
                        f"host {host_id} unavailable/failed while collecting "
                        f"{table}",
                        region=self.region,
                        host=host_id,
                    )
                service_time = self._sample_service_time(host_id)
                if policy is not None and policy.timeout.is_timeout(
                    service_time
                ):
                    raise QueryFailedError(
                        f"host {host_id} exceeded {policy.timeout.per_hop}s "
                        f"per-hop timeout while collecting {table}",
                        region=self.region,
                        host=host_id,
                    )
                try:
                    node = self.sm.app_server(host_id)
                except ConfigurationError as exc:
                    raise QueryFailedError(
                        f"host {host_id} is not registered with the shard "
                        f"manager while collecting {table}",
                        region=self.region,
                        host=host_id,
                    ) from exc
                try:
                    projected = node.project_columns(
                        physical, indexes, list(columns), tuple(filters)
                    )
                except PartitionNotFoundError as exc:
                    raise QueryFailedError(
                        f"partition of {table} missing on {host_id} during "
                        f"collection",
                        region=self.region,
                        host=host_id,
                    ) from exc
                for name in columns:
                    parts[name].append(projected[name])
                slowest = max(slowest, service_time)
            arrays = {
                name: (
                    np.concatenate(chunks)
                    if chunks
                    else np.empty(0, dtype=np.int64)
                )
                for name, chunks in parts.items()
            }
            collected = next(iter(arrays.values())) if arrays else None
            latency = slowest + self.COORDINATOR_OVERHEAD
            span.set_duration(latency)
            span.annotate(
                fanout=len(hosts),
                rows=0 if collected is None else int(collected.shape[0]),
            )
        return arrays, latency, len(hosts)

    def _sample_service_time(self, host_id: str) -> float:
        """One sampled service time, shaped by the chaos hook if set."""
        service_time = self.latency_model.sample(self._rng).total
        if self.service_time_hook is not None:
            service_time = self.service_time_hook(host_id, service_time)
        return service_time

    def _shape_node_slots(self, host_id: str, service_time: float) -> float:
        """Add per-host lane wait when execution slots are configured.

        The node's own :class:`NodeSlots` is preferred (installed by the
        deployment, shared by every consumer of the host); a
        coordinator-local one is kept for hosts that don't carry slots.
        """
        if self.node_slots_per_host is None:
            return service_time
        slots = None
        try:
            node = self.sm.app_server(host_id)
            slots = getattr(node, "execution_slots", None)
        except ConfigurationError:
            pass
        if slots is None:
            slots = self._node_slots.get(host_id)
            if slots is None:
                slots = NodeSlots(self.node_slots_per_host)
                self._node_slots[host_id] = slots
        return slots.occupy(self.sm.simulator.now, service_time)

    @staticmethod
    def _retime_kernels(scan_span, lane_wait: float) -> None:
        """Lay kernel child spans along the scan's simulated interval.

        The node's kernel spans open and close at a single clock instant
        (the DES clock does not advance during execution). The sampled
        service time minus the lane wait is the scan's compute window;
        apportion it across the kernel spans proportional to rows
        scanned (equally when nothing was scanned), so profiler
        breakdowns charge the compute window to kernel families and the
        residual head of the scan span to lane queueing.
        """
        kernels = [
            child for child in scan_span.children
            if child.name == "cubrick.node.kernel"
        ]
        if not kernels:
            return
        window = max(0.0, scan_span.duration - lane_wait)
        rows = [
            int(kernel.annotations.get("rows_scanned", 0))
            for kernel in kernels
        ]
        total = sum(rows)
        if total > 0:
            shares = [window * count / total for count in rows]
        else:
            shares = [window / len(kernels)] * len(kernels)
        cursor = scan_span.start + lane_wait
        for kernel, share in zip(kernels, shares):
            kernel.shift(cursor - kernel.start)
            kernel.set_duration(share)
            cursor += share

    def _hedged_service_time(
        self, host_id: str, first: float, policy: ResiliencePolicy
    ) -> tuple[float, int]:
        """Hedge a slow hop: duplicate requests, fastest answer wins.

        Returns the winning service time and the number of hedges sent.
        Hedges draw from the same deterministic RNG stream, so hedged
        runs stay byte-reproducible (and un-hedged policies draw
        nothing extra).
        """
        best = first
        used = 0
        while best > policy.hedge.trigger and used < policy.hedge.max_hedges:
            used += 1
            best = min(best, self._sample_service_time(host_id))
        return best, used

    def _forwarded_execution(
        self,
        query: Query,
        stale_host: str,
        indexes: list[int],
        original: PartitionNotFoundError,
        extra_lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> PartialResult:
        """Handle stale routing: ask the authoritative owner instead.

        Mirrors the graceful-migration forwarding window: the old server
        no longer has the data but the migration published a new owner.
        """
        shards = self.directory.shards_for_table(query.table)
        partial = PartialResult(query=query)
        for index in indexes:
            shard = shards[index]
            owner = self.sm.discovery.resolve_authoritative(shard)
            if owner is None or owner == stale_host:
                raise QueryFailedError(
                    f"partition {query.table}#{index} missing on {stale_host}",
                    region=self.region,
                    host=stale_host,
                ) from original
            try:
                node = self.sm.app_server(owner)
            except ConfigurationError as exc:
                raise QueryFailedError(
                    f"authoritative owner {owner} of {query.table}#{index} "
                    f"is not registered with the shard manager",
                    region=self.region,
                    host=owner,
                ) from exc
            partial.merge(node.execute_local(query, [index], extra_lookups))
        return partial

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def success_ratio(self) -> float:
        if not self.executions:
            return 1.0
        succeeded = sum(1 for e in self.executions if e.succeeded)
        return succeeded / len(self.executions)

    def latencies(self) -> list[float]:
        return [e.latency for e in self.executions if e.succeeded]
