"""Granular Partitioning: Cubrick's multidimensional brick index.

Cubrick range-partitions the dataset on *every* dimension column
(paper §IV, [21]): each dimension is cut into fixed-width buckets, and a
brick exists for every combination of buckets that contains data. The
brick id is the row-major composition of per-dimension bucket indexes,
which gives constant-time record routing and cheap filter pruning —
a range predicate on any dimension maps to a slab of brick ids without
touching the data.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cubrick.schema import TableSchema
from repro.errors import QueryError, SchemaError


class GranularIndex:
    """Maps dimension coordinates to brick ids and prunes by predicates."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._bucket_counts = [d.bucket_count for d in schema.dimensions]
        # Row-major strides: last dimension varies fastest.
        strides = [1] * len(self._bucket_counts)
        for i in range(len(self._bucket_counts) - 2, -1, -1):
            strides[i] = strides[i + 1] * self._bucket_counts[i + 1]
        self._strides = strides

    @property
    def total_bricks(self) -> int:
        """Size of the (sparse) brick id space."""
        total = 1
        for count in self._bucket_counts:
            total *= count
        return total

    def brick_of(self, row: dict[str, float]) -> int:
        """Brick id for a record, from its dimension values."""
        brick_id = 0
        for dim, stride in zip(self.schema.dimensions, self._strides):
            value = row.get(dim.name)
            if value is None:
                raise SchemaError(f"row missing dimension {dim.name!r}")
            brick_id += dim.bucket_of(int(value)) * stride
        return brick_id

    def bricks_of_columns(self, columns) -> "np.ndarray":
        """Vectorised :meth:`brick_of` over column arrays.

        ``columns`` maps dimension names to equal-length integer arrays;
        returns the brick id per row. Domain violations raise, matching
        the scalar path.
        """
        import numpy as np

        brick_ids = None
        for dim, stride in zip(self.schema.dimensions, self._strides):
            values = np.asarray(columns[dim.name])
            if values.size and (
                values.min() < 0 or values.max() >= dim.cardinality
            ):
                raise SchemaError(
                    f"dimension {dim.name!r}: values outside "
                    f"[0, {dim.cardinality})"
                )
            buckets = values // dim.effective_range_size
            contribution = buckets * stride
            brick_ids = contribution if brick_ids is None else brick_ids + contribution
        return brick_ids

    def brick_coordinates(self, brick_id: int) -> tuple[int, ...]:
        """Inverse of :meth:`brick_of` at bucket granularity."""
        if not 0 <= brick_id < self.total_bricks:
            raise QueryError(f"brick id {brick_id} out of range")
        coords = []
        remainder = brick_id
        for stride in self._strides:
            coords.append(remainder // stride)
            remainder %= stride
        return tuple(coords)

    # ------------------------------------------------------------------
    # Filter pruning
    # ------------------------------------------------------------------

    def candidate_buckets(
        self, dim_name: str, values: Sequence[int] | None,
        value_range: tuple[int, int] | None,
    ) -> set[int]:
        """Buckets on one dimension that can contain matching rows."""
        dim = self.schema.dimension(dim_name)
        if values is not None:
            return {dim.bucket_of(int(v)) for v in values}
        if value_range is not None:
            low, high = value_range
            low = max(0, int(low))
            high = min(dim.cardinality - 1, int(high))
            if low > high:
                return set()
            return set(range(dim.bucket_of(low), dim.bucket_of(high) + 1))
        return set(range(dim.bucket_count))

    def prune(
        self,
        per_dimension_buckets: dict[str, set[int]],
        existing_bricks: Iterable[int],
    ) -> Iterator[int]:
        """Yield brick ids from ``existing_bricks`` whose coordinates fall
        inside the allowed buckets on every constrained dimension."""
        dim_index = {d.name: i for i, d in enumerate(self.schema.dimensions)}
        constraints: list[tuple[int, set[int]]] = []
        for name, buckets in per_dimension_buckets.items():
            if name not in dim_index:
                raise QueryError(f"unknown dimension in filter: {name!r}")
            constraints.append((dim_index[name], buckets))
        for brick_id in existing_bricks:
            coords = self.brick_coordinates(brick_id)
            if all(coords[axis] in allowed for axis, allowed in constraints):
                yield brick_id
