"""Vectorised grouped-aggregation kernels for the brick scan.

The scan hot path (``PartitionStorage._scan_brick``) runs one of these
kernels per aggregate instead of a per-group Python loop:

* Composite group keys are encoded into a single int64 code per row
  (mixed-radix over the per-column unique values), so grouping needs one
  1-D ``np.unique`` instead of ``np.unique(stacked, axis=0)``.
* SUM/COUNT/AVG are single ``np.bincount`` passes over the dense group
  index (COUNT without weights, SUM with the metric as weights, AVG as
  the (sum, count) state pair).
* MIN/MAX sort rows by group index once and segment-reduce with
  ``np.minimum.reduceat`` / ``np.maximum.reduceat``.
* COUNT_DISTINCT lexsorts (group, value) pairs and sweeps consecutive
  duplicates, yielding the per-group distinct-value sets that Cubrick
  keeps as merge-friendly partial state.

Grouped kernels accumulate in row order (``bincount`` adds weights
sequentially), exactly like a row-at-a-time reference aggregator. The
ungrouped path (:func:`scalar_state`) uses numpy's standard reductions,
which are faster but may reassociate additions; on exactly-representable
inputs every summation order yields identical bits, which is what
``tests/test_kernels_differential.py`` pins against a pure-Python
reference aggregator.
"""

from __future__ import annotations

import numpy as np

from repro.cubrick.query import AggFunc
from repro.errors import QueryError

#: Largest mixed-radix code space before int64 encoding could overflow;
#: beyond it the encoder falls back to row-wise unique (axis=0).
_MAX_CODE_SPACE = float(2**62)


def encode_group_keys(
    key_columns: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Encode composite group keys into a dense group index per row.

    Returns ``(group_idx, unique_keys)``: ``group_idx[i]`` is the dense
    index (``0..n_groups-1``) of row ``i``'s group, and ``unique_keys``
    is an ``(n_groups, n_cols)`` int64 array of the distinct key tuples
    in lexicographic order — the same ordering
    ``np.unique(stacked, axis=0)`` would produce, at a fraction of the
    cost for multi-column keys.
    """
    if not key_columns:
        raise QueryError("encode_group_keys needs at least one key column")
    if len(key_columns) == 1:
        uniques, group_idx = np.unique(
            np.asarray(key_columns[0]), return_inverse=True
        )
        return group_idx, uniques.astype(np.int64).reshape(-1, 1)

    per_column = [
        np.unique(np.asarray(col), return_inverse=True) for col in key_columns
    ]
    code_space = 1.0
    for uniques, __ in per_column:
        code_space *= max(len(uniques), 1)
    if code_space > _MAX_CODE_SPACE:
        # Pathological cardinality product: encode by row instead.
        stacked = np.stack(
            [np.asarray(col) for col in key_columns], axis=1
        )
        unique_rows, group_idx = np.unique(
            stacked, axis=0, return_inverse=True
        )
        return group_idx, unique_rows.astype(np.int64)

    codes = np.zeros(len(per_column[0][1]), dtype=np.int64)
    for uniques, inverse in per_column:
        codes = codes * len(uniques) + inverse
    unique_codes, group_idx = np.unique(codes, return_inverse=True)

    # Decode the surviving codes back into key tuples (mixed radix).
    unique_keys = np.empty(
        (len(unique_codes), len(key_columns)), dtype=np.int64
    )
    remainder = unique_codes
    for j in range(len(key_columns) - 1, -1, -1):
        uniques = per_column[j][0]
        unique_keys[:, j] = uniques[remainder % len(uniques)]
        remainder = remainder // len(uniques)
    return group_idx, unique_keys


def group_counts(group_idx: np.ndarray, n_groups: int) -> np.ndarray:
    """Row count per group (float64, matching the COUNT state type)."""
    return np.bincount(group_idx, minlength=n_groups).astype(np.float64)


def group_sums(
    group_idx: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group sums; ``bincount`` adds in row order (sequential IEEE
    addition), so sums match a row-at-a-time accumulator bit-for-bit."""
    return np.bincount(group_idx, weights=values, minlength=n_groups)


def _group_extreme(
    group_idx: np.ndarray, values: np.ndarray, ufunc: np.ufunc
) -> np.ndarray:
    order = np.argsort(group_idx, kind="stable")
    sorted_values = values[order]
    sorted_idx = group_idx[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_idx[1:] != sorted_idx[:-1]]
    )
    return ufunc.reduceat(sorted_values, starts)


def group_mins(group_idx: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-group minimum via one stable sort + segmented reduce."""
    return _group_extreme(group_idx, values, np.minimum)


def group_maxs(group_idx: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-group maximum via one stable sort + segmented reduce."""
    return _group_extreme(group_idx, values, np.maximum)


def group_distinct_sets(
    group_idx: np.ndarray, values: np.ndarray, n_groups: int
) -> list[frozenset]:
    """Per-group distinct-value sets via a sorted (group, value) sweep.

    One lexsort orders rows by (group, value); consecutive duplicates
    are dropped with a shifted comparison, and the survivors are split
    at group boundaries. The frozensets are the COUNT_DISTINCT partial
    state (they merge associatively across partitions).
    """
    order = np.lexsort((values, group_idx))
    sorted_idx = group_idx[order]
    sorted_values = values[order]
    keep = np.r_[
        True,
        (sorted_idx[1:] != sorted_idx[:-1])
        | (sorted_values[1:] != sorted_values[:-1]),
    ]
    deduped_idx = sorted_idx[keep]
    deduped_values = sorted_values[keep]
    starts = np.flatnonzero(
        np.r_[True, deduped_idx[1:] != deduped_idx[:-1]]
    )
    ends = np.r_[starts[1:], len(deduped_idx)]
    return [
        frozenset(deduped_values[start:end].tolist())
        for start, end in zip(starts, ends)
    ]


def grouped_states(
    func: AggFunc,
    group_idx: np.ndarray,
    values: np.ndarray | None,
    n_groups: int,
    counts: np.ndarray | None = None,
) -> list:
    """Per-group merge-friendly states for one aggregate.

    ``counts`` is the precomputed :func:`group_counts` output (shared by
    COUNT and AVG — pass it when either appears in the query); ``values``
    is the masked metric column (``None`` for COUNT). Returns one state
    per group, in group-index order, using the plain-Python state types
    of :mod:`repro.cubrick.query`.
    """
    if func is AggFunc.COUNT or func is AggFunc.AVG:
        if counts is None:
            counts = group_counts(group_idx, n_groups)
        if func is AggFunc.COUNT:
            return counts.tolist()
    if values is None:
        raise QueryError(f"aggregate {func} needs a value column")
    if func is AggFunc.SUM:
        return group_sums(group_idx, values, n_groups).tolist()
    if func is AggFunc.MIN:
        return group_mins(group_idx, values).tolist()
    if func is AggFunc.MAX:
        return group_maxs(group_idx, values).tolist()
    if func is AggFunc.AVG:
        sums = group_sums(group_idx, values, n_groups)
        return list(zip(sums.tolist(), counts.tolist()))
    if func is AggFunc.COUNT_DISTINCT:
        return group_distinct_sets(group_idx, values, n_groups)
    raise QueryError(f"unsupported aggregate: {func}")


def scalar_state(func: AggFunc, values: np.ndarray, matched: int):
    """Merge-friendly state for one ungrouped aggregate (``matched`` > 0).

    Uses numpy's standard reductions: for the single-group case a
    pairwise SIMD sum beats routing through :func:`group_sums`' one-bin
    bincount by ~5x per brick.
    """
    if func is AggFunc.COUNT:
        return float(matched)
    if func is AggFunc.SUM:
        return float(values.sum())
    if func is AggFunc.MIN:
        return float(values.min())
    if func is AggFunc.MAX:
        return float(values.max())
    if func is AggFunc.AVG:
        return (float(values.sum()), float(matched))
    if func is AggFunc.COUNT_DISTINCT:
        return frozenset(np.unique(values).tolist())
    raise QueryError(f"unsupported aggregate: {func}")
