"""Vectorised grouped-aggregation kernels for the brick scan.

The scan hot path (``PartitionStorage._scan_brick``) runs one of these
kernels per aggregate instead of a per-group Python loop:

* Composite group keys are encoded into a single int64 code per row
  (mixed-radix over the per-column value dictionaries). Columns that are
  dictionary-encoded in the brick (:class:`EncodedColumn`) contribute
  their pre-computed dense codes directly — no per-scan sort at all.
* The dense group index is recovered from the codes by *dense bincount
  compaction* when the code space is small enough (one O(n + space)
  counting pass), falling back to a sort-partitioned ``np.unique`` for
  huge code spaces.
* SUM/COUNT/AVG are single ``np.bincount`` passes over the dense group
  index (COUNT without weights, SUM with the metric as weights, AVG as
  the (sum, count) state pair).
* MIN/MAX are unbuffered scatter kernels (``np.minimum.at`` /
  ``np.maximum.at`` into a ±inf-initialised accumulator) — no sort, no
  reduceat, O(n) regardless of group count.
* COUNT_DISTINCT produces compact *(group, value)* pair arrays: values
  are dictionary-coded (integers directly, floats via one
  ``np.unique``), combined with the group index into composite codes and
  deduplicated by the same dense-or-sort compaction. The pair arrays are
  the merge-friendly partial state that crosses node → coordinator (see
  :class:`repro.cubrick.query.DistinctState` for the scalar form).

Grouped SUM kernels accumulate in row order (``bincount`` adds weights
sequentially), exactly like a row-at-a-time reference aggregator. On
exactly-representable inputs every summation order yields identical
bits, which is what ``tests/test_kernels_differential.py`` pins against
a pure-Python reference aggregator.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Union

import numpy as np

from repro.cubrick.query import AggFunc
from repro.errors import QueryError

#: Largest mixed-radix code space before int64 encoding could overflow;
#: beyond it the encoder falls back to row-wise unique (axis=0).
_MAX_CODE_SPACE = float(2**62)


class EncodedColumn(NamedTuple):
    """A dictionary-encoded group-key column.

    ``codes[i]`` indexes into ``dictionary`` (sorted ascending), so
    ``dictionary[codes]`` reconstructs the raw values. Bricks carry one
    dictionary per encoded dimension; the scan hands the codes straight
    to :func:`encode_group_keys`, skipping the per-scan ``np.unique``
    sort a raw column would need.
    """

    codes: np.ndarray
    dictionary: np.ndarray


GroupColumn = Union[np.ndarray, EncodedColumn]


def _dense_ok(space: int, n: int) -> bool:
    """Whether a code space is small enough for bincount compaction.

    A counting pass allocates ``space`` int64 slots; we allow it while
    that stays within a small multiple of the row count (or a 64Ki
    floor, where the allocation is trivially cheap).
    """
    return space <= max(4 * n, 1 << 16)


def compact_codes(
    codes: np.ndarray, space: int
) -> tuple[np.ndarray, np.ndarray]:
    """Dense group index from composite codes.

    Returns ``(group_idx, unique_codes)`` with ``unique_codes`` sorted
    ascending — the radix/sort-partitioned step of the group-by: a dense
    O(n + space) bincount pass when the code space is small, a
    sort-partitioned ``np.unique`` above that threshold.
    """
    n = len(codes)
    if n == 0:
        return codes.astype(np.int64), np.empty(0, dtype=np.int64)
    if _dense_ok(space, n):
        counts = np.bincount(codes, minlength=space)
        unique_codes = np.flatnonzero(counts)
        lookup = np.zeros(space, dtype=np.int64)
        lookup[unique_codes] = np.arange(len(unique_codes))
        return lookup[codes], unique_codes
    unique_codes, group_idx = np.unique(codes, return_inverse=True)
    return group_idx, unique_codes


def _column_codes(column: GroupColumn) -> tuple[np.ndarray, np.ndarray]:
    """(codes, dictionary) for one group-key column.

    Encoded columns pass their load-time codes through unchanged; raw
    columns pay one ``np.unique`` here (the pre-dictionary behaviour).
    """
    if isinstance(column, EncodedColumn):
        return np.asarray(column.codes), np.asarray(column.dictionary)
    uniques, inverse = np.unique(np.asarray(column), return_inverse=True)
    return inverse, uniques.astype(np.int64)


def encode_group_keys(
    key_columns: Sequence[GroupColumn],
) -> tuple[np.ndarray, np.ndarray]:
    """Encode composite group keys into a dense group index per row.

    Returns ``(group_idx, unique_keys)``: ``group_idx[i]`` is the dense
    index (``0..n_groups-1``) of row ``i``'s group, and ``unique_keys``
    is an ``(n_groups, n_cols)`` int64 array of the distinct key tuples
    in lexicographic order — the same ordering
    ``np.unique(stacked, axis=0)`` would produce, at a fraction of the
    cost for multi-column keys.
    """
    if not key_columns:
        raise QueryError("encode_group_keys needs at least one key column")
    per_column = [_column_codes(column) for column in key_columns]
    if len(per_column) == 1:
        codes, dictionary = per_column[0]
        group_idx, unique_codes = compact_codes(codes, len(dictionary))
        return group_idx, dictionary[unique_codes].astype(np.int64).reshape(-1, 1)

    code_space = 1.0
    for __, dictionary in per_column:
        code_space *= max(len(dictionary), 1)
    if code_space > _MAX_CODE_SPACE:
        # Pathological cardinality product: encode by row instead.
        stacked = np.stack(
            [
                col.dictionary[col.codes]
                if isinstance(col, EncodedColumn)
                else np.asarray(col)
                for col in key_columns
            ],
            axis=1,
        )
        unique_rows, group_idx = np.unique(
            stacked, axis=0, return_inverse=True
        )
        return group_idx, unique_rows.astype(np.int64)

    codes = np.zeros(len(per_column[0][0]), dtype=np.int64)
    for column_codes, dictionary in per_column:
        codes = codes * len(dictionary) + column_codes
    group_idx, unique_codes = compact_codes(codes, int(code_space))

    # Decode the surviving codes back into key tuples (mixed radix).
    unique_keys = np.empty(
        (len(unique_codes), len(key_columns)), dtype=np.int64
    )
    remainder = unique_codes
    for j in range(len(per_column) - 1, -1, -1):
        dictionary = per_column[j][1]
        unique_keys[:, j] = dictionary[remainder % len(dictionary)]
        remainder = remainder // len(dictionary)
    return group_idx, unique_keys


def group_counts(group_idx: np.ndarray, n_groups: int) -> np.ndarray:
    """Row count per group (float64, matching the COUNT state type)."""
    return np.bincount(group_idx, minlength=n_groups).astype(np.float64)


def group_sums(
    group_idx: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group sums; ``bincount`` adds in row order (sequential IEEE
    addition), so sums match a row-at-a-time accumulator bit-for-bit."""
    return np.bincount(group_idx, weights=values, minlength=n_groups)


def group_mins(
    group_idx: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group minimum via one ``np.minimum.at`` scatter pass."""
    out = np.full(n_groups, np.inf)
    np.minimum.at(out, group_idx, values)
    return out


def group_maxs(
    group_idx: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group maximum via one ``np.maximum.at`` scatter pass."""
    out = np.full(n_groups, -np.inf)
    np.maximum.at(out, group_idx, values)
    return out


def group_distinct_pairs(
    group_idx: np.ndarray, values: GroupColumn, n_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated ``(group, value)`` pairs — the COUNT_DISTINCT state.

    Returns ``(owners, distinct_values)`` sorted by (group, value):
    ``distinct_values[k]`` is one distinct value of group ``owners[k]``.
    Values are dictionary-coded first (encoded/integer columns use their
    codes directly, floats pay one ``np.unique``), then the composite
    ``group * n_values + value_code`` codes are deduplicated by
    :func:`compact_codes` — no per-group Python objects anywhere.
    """
    if isinstance(values, EncodedColumn):
        value_codes, dictionary = (
            np.asarray(values.codes),
            np.asarray(values.dictionary),
        )
    else:
        array = np.asarray(values)
        if (
            np.issubdtype(array.dtype, np.integer)
            and array.size
            and 0 <= int(array.min())
            and float(n_groups) * (int(array.max()) + 1) <= _MAX_CODE_SPACE
        ):
            # Non-negative integers that fit the composite code space
            # are their own codes — skip the dictionary sort entirely.
            value_codes, dictionary = array, None
        else:
            dictionary, value_codes = np.unique(array, return_inverse=True)
    if dictionary is None:
        n_values = int(value_codes.max()) + 1 if value_codes.size else 0
    else:
        n_values = len(dictionary)
    if value_codes.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    if float(n_groups) * max(n_values, 1) > _MAX_CODE_SPACE:
        # Composite code would overflow int64: lexsort the pairs instead.
        raw = dictionary[value_codes] if dictionary is not None else value_codes
        order = np.lexsort((raw, group_idx))
        sorted_idx = group_idx[order]
        sorted_values = raw[order]
        keep = np.r_[
            True,
            (sorted_idx[1:] != sorted_idx[:-1])
            | (sorted_values[1:] != sorted_values[:-1]),
        ]
        return sorted_idx[keep], sorted_values[keep]
    codes = group_idx * n_values + value_codes
    __, unique_codes = compact_codes(codes, n_groups * n_values)
    owners = unique_codes // n_values
    value_part = unique_codes % n_values
    distinct = (
        dictionary[value_part] if dictionary is not None else value_part
    )
    return owners, distinct


def grouped_state_arrays(
    func: AggFunc,
    group_idx: np.ndarray,
    values: GroupColumn | None,
    n_groups: int,
    counts: np.ndarray | None = None,
):
    """Array-form per-group states for one aggregate (one brick scan).

    ``counts`` is the precomputed :func:`group_counts` output (shared by
    COUNT and AVG — pass it when either appears in the query); ``values``
    is the masked metric column (``None`` for COUNT). The return value
    is the block-state form consumed by
    :meth:`repro.cubrick.query.PartialResult.accumulate_block`:

    * SUM/COUNT/MIN/MAX → float64 array of length ``n_groups``
    * AVG → ``(sums, counts)`` array pair
    * COUNT_DISTINCT → ``(owners, values)`` pair arrays
    """
    if func is AggFunc.COUNT or func is AggFunc.AVG:
        if counts is None:
            counts = group_counts(group_idx, n_groups)
        if func is AggFunc.COUNT:
            return counts
    if values is None:
        raise QueryError(f"aggregate {func} needs a value column")
    if func is AggFunc.COUNT_DISTINCT:
        return group_distinct_pairs(group_idx, values, n_groups)
    if isinstance(values, EncodedColumn):
        values = values.dictionary[values.codes]
    if func is AggFunc.SUM:
        return group_sums(group_idx, values, n_groups)
    if func is AggFunc.MIN:
        return group_mins(group_idx, values, n_groups)
    if func is AggFunc.MAX:
        return group_maxs(group_idx, values, n_groups)
    if func is AggFunc.AVG:
        return (group_sums(group_idx, values, n_groups), counts)
    raise QueryError(f"unsupported aggregate: {func}")


def scalar_state(func: AggFunc, values: GroupColumn | None, matched: int):
    """Merge-friendly state for one ungrouped aggregate (``matched`` > 0).

    Uses numpy's standard reductions: for the single-group case a
    pairwise SIMD sum beats routing through :func:`group_sums`' one-bin
    bincount by ~5x per brick.
    """
    from repro.cubrick.query import DistinctState

    if func is AggFunc.COUNT:
        return float(matched)
    if isinstance(values, EncodedColumn):
        if func is AggFunc.COUNT_DISTINCT:
            # Distinct codes = distinct values; the dictionary is sorted,
            # so indexing with the sorted unique codes stays sorted.
            return DistinctState(values.dictionary[np.unique(values.codes)])
        values = values.dictionary[values.codes]
    if func is AggFunc.SUM:
        return float(values.sum())
    if func is AggFunc.MIN:
        return float(values.min())
    if func is AggFunc.MAX:
        return float(values.max())
    if func is AggFunc.AVG:
        return (float(values.sum()), float(matched))
    if func is AggFunc.COUNT_DISTINCT:
        return DistinctState(np.unique(values))
    raise QueryError(f"unsupported aggregate: {func}")
