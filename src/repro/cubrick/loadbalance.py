"""The three generations of Cubrick's load-balancing metrics (paper §IV-F).

SM decouples measurement from management: Cubrick chooses *what* to
export, SM balances on it. Cubrick's choice evolved:

* **Generation 1** — shard size = actual memory footprint; host capacity
  = 90% of physical memory. Worked until adaptive compression arrived.

* **Generation 2** — adaptive compression makes the actual footprint
  depend on the host's current memory pressure, so a migrated shard can
  nondeterministically shrink/expand — unbalanceable. Fix: export the
  *decompressed* size per shard (deterministic, changes only with data),
  and export capacity as physical memory × the average compression ratio
  observed in production.

* **Generation 3** (in development in the paper) — data evicts to SSD
  under sustained pressure, so memory footprint can hit zero. Export SSD
  footprint per shard and SSD capacity per host; the open problem is
  that this ignores working-set size, so IOPS is being considered as an
  additional metric.
"""

from __future__ import annotations

import abc
import enum
from typing import TYPE_CHECKING

from repro.shardmanager.metrics import MovingAverage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cubrick.node import CubrickNode


class LoadBalanceGeneration(enum.Enum):
    GEN1_FOOTPRINT = 1
    GEN2_DECOMPRESSED = 2
    GEN3_SSD = 3


class MetricExporter(abc.ABC):
    """Strategy exporting (capacity, per-shard sizes) for one node."""

    generation: LoadBalanceGeneration

    @abc.abstractmethod
    def capacity(self, node: "CubrickNode") -> float:
        """Host capacity in the generation's metric."""

    @abc.abstractmethod
    def shard_size(self, node: "CubrickNode", shard_id: int) -> float:
        """Size of one shard in the generation's metric."""

    def shard_metrics(self, node: "CubrickNode") -> dict[int, float]:
        return {
            shard_id: self.shard_size(node, shard_id)
            for shard_id in node.hosted_shards()
        }


class FootprintExporter(MetricExporter):
    """Generation 1: actual memory footprint / 90% of physical memory."""

    generation = LoadBalanceGeneration.GEN1_FOOTPRINT

    def __init__(self, memory_fraction: float = 0.9):
        if not 0.0 < memory_fraction <= 1.0:
            raise ValueError(f"memory_fraction must be in (0, 1]: {memory_fraction}")
        self.memory_fraction = memory_fraction

    def capacity(self, node: "CubrickNode") -> float:
        return node.memory_bytes * self.memory_fraction

    def shard_size(self, node: "CubrickNode", shard_id: int) -> float:
        return float(
            sum(p.footprint_bytes() for p in node.partitions_of_shard(shard_id))
        )


class DecompressedSizeExporter(MetricExporter):
    """Generation 2: decompressed size / memory × avg compression ratio."""

    generation = LoadBalanceGeneration.GEN2_DECOMPRESSED

    def __init__(self, average_compression_ratio: float = 2.5,
                 memory_fraction: float = 0.9):
        if average_compression_ratio < 1.0:
            raise ValueError(
                f"average_compression_ratio must be >= 1: "
                f"{average_compression_ratio}"
            )
        if not 0.0 < memory_fraction <= 1.0:
            raise ValueError(f"memory_fraction must be in (0, 1]: {memory_fraction}")
        self.average_compression_ratio = average_compression_ratio
        self.memory_fraction = memory_fraction

    def capacity(self, node: "CubrickNode") -> float:
        return (
            node.memory_bytes * self.memory_fraction
            * self.average_compression_ratio
        )

    def shard_size(self, node: "CubrickNode", shard_id: int) -> float:
        return float(
            sum(p.decompressed_bytes() for p in node.partitions_of_shard(shard_id))
        )


class SsdExporter(MetricExporter):
    """Generation 3: SSD footprint / SSD capacity.

    In this simulation a shard's SSD footprint equals its decompressed
    size (everything is assumed spillable); the known limitation — that
    working sets and IOPS are ignored — is exactly the open problem the
    paper describes.
    """

    generation = LoadBalanceGeneration.GEN3_SSD

    def capacity(self, node: "CubrickNode") -> float:
        return float(node.ssd_bytes)

    def shard_size(self, node: "CubrickNode", shard_id: int) -> float:
        return float(
            sum(p.decompressed_bytes() for p in node.partitions_of_shard(shard_id))
        )


class IopsAwareExporter(MetricExporter):
    """Generation 3 + the paper's proposed IOPS refinement (§IV-F3).

    The plain SSD metric ignores working sets: a host whose shards'
    *hot* data does not fit in memory pays IOs on every query, and its
    latency degrades even though its SSD footprint looks fine. The team
    was investigating adding IOPS as a load-balancing input; this
    exporter implements that: each shard's size is its spillable bytes
    plus a smoothed IO rate converted to a byte-equivalent penalty, so
    IO-hot shards look bigger and the balancer spreads them out.
    """

    generation = LoadBalanceGeneration.GEN3_SSD

    def __init__(self, io_cost_bytes: float = 16 * 1024 * 1024,
                 smoothing_alpha: float = 0.3):
        if io_cost_bytes < 0:
            raise ValueError(f"io_cost_bytes must be non-negative: {io_cost_bytes}")
        self.io_cost_bytes = io_cost_bytes
        self.smoothing_alpha = smoothing_alpha
        self._last_reads: dict[int, int] = {}
        self._smoothed: dict[int, MovingAverage] = {}

    def capacity(self, node: "CubrickNode") -> float:
        return float(node.ssd_bytes)

    def shard_size(self, node: "CubrickNode", shard_id: int) -> float:
        spillable = float(
            sum(p.decompressed_bytes() for p in node.partitions_of_shard(shard_id))
        )
        reads = sum(
            brick.io_reads
            for partition in node.partitions_of_shard(shard_id)
            for brick in partition.bricks()
        )
        delta = reads - self._last_reads.get(shard_id, 0)
        self._last_reads[shard_id] = reads
        average = self._smoothed.get(shard_id)
        if average is None:
            average = MovingAverage(alpha=self.smoothing_alpha)
            self._smoothed[shard_id] = average
        smoothed = average.update(float(max(delta, 0)))
        return spillable + self.io_cost_bytes * smoothed


def make_exporter(generation: LoadBalanceGeneration) -> MetricExporter:
    """Factory for a generation's default exporter."""
    if generation is LoadBalanceGeneration.GEN1_FOOTPRINT:
        return FootprintExporter()
    if generation is LoadBalanceGeneration.GEN2_DECOMPRESSED:
        return DecompressedSizeExporter()
    return SsdExporter()
