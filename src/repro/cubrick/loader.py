"""Streaming ingestion: batched, partition-routed loading.

Cubrick's original claim to fame is ingesting millions of records per
second while staying queryable [22]. This loader reproduces the
ingestion client's shape: rows are validated, routed to their partition
by the deterministic record→partition function, buffered per partition,
and flushed in batches to the partition's current owner in every region
(three full copies, §IV-D). The loader survives re-partitions happening
mid-stream — buffered rows are re-routed when the table's partitioning
generation changes — and owner changes from shard migrations, since
every flush re-resolves the authoritative owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cubrick.bricks import DIMENSION_DTYPE, METRIC_DTYPE
from repro.cubrick.partitioning import partition_of
from repro.errors import ConfigurationError, HostUnavailableError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import CubrickDeployment


@dataclass
class LoaderStats:
    """Counters for one loader's lifetime."""

    rows_accepted: int = 0
    rows_flushed: int = 0
    batches_flushed: int = 0
    reroutes: int = 0  # rows re-bucketed after a mid-stream re-partition
    failed_flushes: int = 0


@dataclass
class StreamingLoader:
    """Batching ingestion client bound to one table of a deployment."""

    deployment: "CubrickDeployment"
    table: str
    batch_rows: int = 1000
    stats: LoaderStats = field(default_factory=LoaderStats)

    def __post_init__(self) -> None:
        if self.batch_rows <= 0:
            raise ConfigurationError(
                f"batch_rows must be positive: {self.batch_rows}"
            )
        info = self.deployment.catalog.get(self.table)
        if info.replicated:
            raise ConfigurationError(
                f"table {self.table} is replicated; load it with "
                "deployment.load() instead"
            )
        self._generation = info.generation
        self._num_partitions = info.num_partitions
        self._buffers: dict[int, list[dict[str, float]]] = {}
        # Loaders made against a bare test double may not carry telemetry.
        obs = getattr(self.deployment, "obs", None)
        if obs is not None:
            self._batches_counter = obs.metrics.counter(
                "cubrick.loader.batches_flushed", table=self.table
            )
            self._rows_flushed_counter = obs.metrics.counter(
                "cubrick.loader.rows_flushed", table=self.table
            )
            self._reroute_counter = obs.metrics.counter(
                "cubrick.loader.reroutes", table=self.table
            )
            self._failed_flush_counter = obs.metrics.counter(
                "cubrick.loader.failed_flushes", table=self.table
            )
        else:
            self._batches_counter = None
            self._rows_flushed_counter = None
            self._reroute_counter = None
            self._failed_flush_counter = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(self, row: dict[str, float]) -> None:
        """Validate, route and buffer one row; flush full partitions."""
        info = self.deployment.catalog.get(self.table)
        info.schema.validate_row(row)
        self._maybe_rebucket(info)
        index = partition_of(info.schema, row, self._num_partitions)
        buffer = self._buffers.setdefault(index, [])
        buffer.append(row)
        self.stats.rows_accepted += 1
        if len(buffer) >= self.batch_rows:
            self._flush_partition(index)

    def append_many(self, rows: list[dict[str, float]]) -> None:
        for row in rows:
            self.append(row)

    def flush(self) -> int:
        """Flush every buffered partition; returns rows written."""
        info = self.deployment.catalog.get(self.table)
        self._maybe_rebucket(info)
        written = 0
        for index in sorted(self._buffers):
            written += self._flush_partition(index)
        return written

    @property
    def buffered_rows(self) -> int:
        return sum(len(rows) for rows in self._buffers.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _maybe_rebucket(self, info) -> None:
        """Re-route buffered rows after a mid-stream re-partition."""
        if info.generation == self._generation:
            return
        pending = [row for rows in self._buffers.values() for row in rows]
        self._generation = info.generation
        self._num_partitions = info.num_partitions
        self._buffers = {}
        for row in pending:
            index = partition_of(info.schema, row, self._num_partitions)
            self._buffers.setdefault(index, []).append(row)
        self.stats.reroutes += len(pending)
        if self._reroute_counter is not None:
            self._reroute_counter.inc(len(pending))

    def _flush_partition(self, index: int) -> int:
        rows = self._buffers.get(index)
        if not rows:
            return 0
        info = self.deployment.catalog.get(self.table)
        physical = info.physical_table
        shards = self.deployment.directory.shards_for_table(physical)
        shard = shards[index]
        # Pivot the batch to columns once; every region's owner then
        # takes the vectorised bulk-load path (rows were validated at
        # append time). Brick routing copies out of these arrays, so one
        # column set is safely shared across all three regional writes.
        columns = self._columns_from_rows(rows)
        written = 0
        for sm in self.deployment.sm_servers.values():
            owner = sm.discovery.resolve_authoritative(shard)
            if owner is None or owner not in sm.registered_hosts():
                self.stats.failed_flushes += 1
                if self._failed_flush_counter is not None:
                    self._failed_flush_counter.inc()
                raise HostUnavailableError(
                    f"partition {self.table}#{index}: no live owner for "
                    f"shard {shard} in region {sm.region}"
                )
            node = sm.app_server(owner)
            node.insert_columns_into_partition(
                physical, index, columns, validated=True
            )
            written = len(rows)
        if info.resharding:
            # Dual-write into the staged layout so the online reshard's
            # cutover needs no catch-up (the pending layout buckets rows
            # by its own partition count).
            self.deployment._load_into_layout(
                info.pending_physical, info.schema,
                info.pending_partitions, list(rows),
            )
        self._buffers[index] = []
        self.stats.rows_flushed += written
        self.stats.batches_flushed += 1
        if self._batches_counter is not None:
            self._batches_counter.inc()
            self._rows_flushed_counter.inc(written)
        # New rows are visible: advance the ingestion generation so the
        # proxy result cache stops serving pre-flush answers, and tell
        # the event log why.
        info = self.deployment.catalog.get(self.table)
        ingest_generation = info.bump_ingest()
        obs = getattr(self.deployment, "obs", None)
        if obs is not None:
            obs.events.emit(
                "cubrick.loader.flush",
                table=self.table,
                partition=index,
                rows=written,
                ingest_generation=ingest_generation,
            )
        return written

    def _columns_from_rows(
        self, rows: list[dict[str, float]]
    ) -> dict[str, np.ndarray]:
        schema = self.deployment.catalog.get(self.table).schema
        columns: dict[str, np.ndarray] = {}
        for name in schema.dimension_names:
            columns[name] = np.array(
                [row[name] for row in rows], dtype=DIMENSION_DTYPE
            )
        for name in schema.metric_names:
            columns[name] = np.array(
                [row[name] for row in rows], dtype=METRIC_DTYPE
            )
        return columns
