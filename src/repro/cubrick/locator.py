"""Locating a table: choosing the query-coordinator partition (§IV-C).

Cubrick queries execute on the hosts storing the table's partitions, and
the host receiving the client connection becomes the *query coordinator*
(it parses, distributes, merges partials). Because tables have varying
partition counts, clients must pick which partition to connect to. The
paper describes four strategies tried in production:

1. **Always partition 0** — trivial, but the same host always coordinates,
   creating a resource-usage hotspot.
2. **Forward from partition 0** — partition 0 re-forwards to a random
   partition: balanced, but pays an extra network hop (bad for large
   result buffers).
3. **Lookup then random** — fetch the current partition count, then pick
   randomly: balanced, no extra transfer hop, but an extra round trip
   before every query.
4. **Cached random** *(production)* — the proxy caches partition counts
   and picks randomly; the count piggy-backs on every query result's
   metadata, keeping the cache fresh with zero extra round trips.

Each strategy returns the chosen partition plus the latency penalty its
routing pattern implies, so benchmarks can compare them directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LocatorChoice:
    """Outcome of one coordinator-selection decision."""

    partition_index: int
    extra_hops: int  # extra data transfers of the result buffer
    extra_roundtrips: int  # extra control round trips before the query
    used_cache: bool = False


class CoordinatorLocator(abc.ABC):
    """Strategy interface: pick the coordinator partition for a query."""

    name: str

    @abc.abstractmethod
    def choose(self, table: str, actual_partitions: int,
               rng: np.random.Generator) -> LocatorChoice:
        """Pick a partition in ``[0, actual_partitions)``."""

    def observe_result(self, table: str, num_partitions: int,
                       generation: int = 0) -> None:
        """Feed back the partition count piggy-backed on query results.

        ``generation`` tags which layout generation produced the count,
        so a straggling result from before an online reshard's cutover
        can never regress a fresher cached count.
        """


class AlwaysPartitionZero(CoordinatorLocator):
    """Strategy 1: clients always append #0."""

    name = "always_zero"

    def choose(self, table: str, actual_partitions: int,
               rng: np.random.Generator) -> LocatorChoice:
        return LocatorChoice(partition_index=0, extra_hops=0, extra_roundtrips=0)


class ForwardFromZero(CoordinatorLocator):
    """Strategy 2: connect to #0, which forwards to a random partition."""

    name = "forward_from_zero"

    def choose(self, table: str, actual_partitions: int,
               rng: np.random.Generator) -> LocatorChoice:
        partition = int(rng.integers(actual_partitions))
        # The forward costs one extra result-buffer transfer unless #0
        # happens to pick itself.
        extra_hops = 0 if partition == 0 else 1
        return LocatorChoice(
            partition_index=partition, extra_hops=extra_hops, extra_roundtrips=0
        )


class LookupThenRandom(CoordinatorLocator):
    """Strategy 3: fetch the live partition count, then pick randomly."""

    name = "lookup_then_random"

    def choose(self, table: str, actual_partitions: int,
               rng: np.random.Generator) -> LocatorChoice:
        partition = int(rng.integers(actual_partitions))
        return LocatorChoice(
            partition_index=partition, extra_hops=0, extra_roundtrips=1
        )


class CachedRandom(CoordinatorLocator):
    """Strategy 4 (production): cached partition counts + random pick.

    On a cache miss the strategy degrades to one lookup round trip (and
    caches the answer). A stale cache is harmless: picks are taken
    modulo the actual count, and the result metadata refreshes the
    cache (paper §IV-C).
    """

    name = "cached_random"

    def __init__(self) -> None:
        # table -> (layout generation, partition count). The generation
        # tag orders cache refreshes: results computed against an older
        # layout (in flight across an online reshard's cutover) must not
        # overwrite a count observed from a newer one.
        self._cache: dict[str, tuple[int, int]] = {}

    def choose(self, table: str, actual_partitions: int,
               rng: np.random.Generator) -> LocatorChoice:
        cached = self._cache.get(table)
        if cached is None:
            self._cache[table] = (0, actual_partitions)
            partition = int(rng.integers(actual_partitions))
            return LocatorChoice(
                partition_index=partition,
                extra_hops=0,
                extra_roundtrips=1,
                used_cache=False,
            )
        partition = int(rng.integers(cached[1])) % actual_partitions
        return LocatorChoice(
            partition_index=partition,
            extra_hops=0,
            extra_roundtrips=0,
            used_cache=True,
        )

    def observe_result(self, table: str, num_partitions: int,
                       generation: int = 0) -> None:
        cached = self._cache.get(table)
        if cached is not None and cached[0] > generation:
            return  # stale: an older generation's result arrived late
        self._cache[table] = (generation, num_partitions)

    def cached_count(self, table: str) -> int | None:
        cached = self._cache.get(table)
        return cached[1] if cached is not None else None

    def invalidate(self, table: str) -> None:
        self._cache.pop(table, None)
