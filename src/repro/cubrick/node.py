"""CubrickNode: one Cubrick server, implementing SM's ApplicationServer.

A node stores the partitions of every shard assigned to it, executes
local (partial) queries over them, exports load-balancing metrics, and
implements SM's ``addShard``/``dropShard``/``prepare*`` endpoints.

Shard collisions — a migration that would co-locate two shards holding
partitions of the same table — are refused with a *non-retryable*
exception, telling SM server to try a different target (paper §IV-A1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.chaos.policies import ResiliencePolicy, call_with_retries
from repro.cubrick.bricks import Brick
from repro.cubrick.compression import MemoryBudget, MemoryMonitor, MonitorReport, decay_all
from repro.cubrick.loadbalance import (
    DecompressedSizeExporter,
    MetricExporter,
)
from repro.cubrick.query import PartialResult, Query, kernel_family
from repro.cubrick.schema import Catalog, partition_name
from repro.cubrick.sharding import ShardDirectory
from repro.cubrick.storage import PartitionStorage
from repro.errors import (
    NonRetryableShardError,
    PartitionNotFoundError,
    ShardAlreadyAssignedError,
    ShardNotFoundError,
)
from repro.obs import Observability
from repro.shardmanager.app_server import ApplicationServer
from repro.cluster.host import GIB


class CubrickNode(ApplicationServer):
    """One Cubrick host: shard-scoped partition storage + local execution."""

    def __init__(
        self,
        host_id: str,
        catalog: Catalog,
        directory: ShardDirectory,
        *,
        memory_bytes: int = 64 * GIB,
        ssd_bytes: int = 512 * GIB,
        exporter: Optional[MetricExporter] = None,
        memory_budget: Optional[MemoryBudget] = None,
        decay_rng: Optional[np.random.Generator] = None,
        allow_ssd_eviction: bool = False,
        recovery_policy: Optional[ResiliencePolicy] = None,
        obs: Optional[Observability] = None,
    ):
        super().__init__(host_id)
        # Governs donor reads during shard recovery; the legacy default
        # is a single attempt (the pre-policy behaviour).
        self.recovery_policy = (
            recovery_policy if recovery_policy is not None
            else ResiliencePolicy.legacy()
        )
        self.catalog = catalog
        self.directory = directory
        self.obs = obs if obs is not None else Observability()
        # Optional multi-core brick scanning (repro.cubrick.parallel).
        # None = serial scans; the DES simulation leaves it unset so
        # seeded runs stay byte-identical.
        self.parallel_scanner = None
        self.memory_bytes = memory_bytes
        self.ssd_bytes = ssd_bytes
        self.exporter = exporter if exporter is not None else DecompressedSizeExporter()
        budget = memory_budget if memory_budget is not None else MemoryBudget(
            capacity_bytes=memory_bytes
        )
        self.memory_monitor = MemoryMonitor(
            budget, allow_eviction=allow_ssd_eviction
        )
        self._decay_rng = (
            decay_rng if decay_rng is not None else np.random.default_rng(0)
        )
        self._shards: dict[int, list[str]] = {}  # shard -> partition names
        self._partitions: dict[str, PartitionStorage] = {}
        self._partition_tables: dict[str, str] = {}  # partition name -> table
        self._forwarding: dict[int, "CubrickNode"] = {}
        # Replicated dimension tables: full copies on every node, used to
        # answer joins locally (paper §II-B).
        self._replicated: dict[str, PartitionStorage] = {}
        # Per-node execution lanes (repro.sched.NodeSlots), installed by
        # the deployment when executor slots are configured; None =
        # unbounded concurrency. The region coordinator routes every
        # scan's service time through these lanes when present.
        self.execution_slots = None

    # ------------------------------------------------------------------
    # SM ApplicationServer endpoints
    # ------------------------------------------------------------------

    def add_shard(self, shard_id: int, source: Optional[ApplicationServer]) -> None:
        """Take ownership of a shard: create/copy all its partitions.

        Raises :class:`NonRetryableShardError` if any table in the shard
        already has a partition on this host via a *different* shard —
        the shard-collision refusal of §IV-A1.
        """
        if shard_id in self._shards:
            raise ShardAlreadyAssignedError(
                f"{self.host_id} already hosts shard {shard_id}"
            )
        contents = self.directory.contents(shard_id)
        self._check_collision(shard_id, contents)
        names: list[str] = []
        for table, index in contents:
            name = partition_name(table, index)
            storage = self._recover_partition(table, index, source)
            self._partitions[name] = storage
            self._partition_tables[name] = table
            names.append(name)
        self._shards[shard_id] = names
        self._forwarding.pop(shard_id, None)

    def _check_collision(self, shard_id: int,
                         contents: list[tuple[str, int]]) -> None:
        incoming_tables = {table for table, __ in contents}
        local_tables = set(self._partition_tables.values())
        collided = incoming_tables & local_tables
        if collided:
            raise NonRetryableShardError(
                f"{self.host_id} refuses shard {shard_id}: would co-locate "
                f"partitions of table(s) {sorted(collided)}"
            )

    def _recover_partition(
        self, table: str, index: int, source: Optional[ApplicationServer]
    ) -> PartitionStorage:
        schema = self.catalog.get(table).schema
        storage = PartitionStorage(schema, index, obs=self.obs)
        if isinstance(source, CubrickNode):
            name = partition_name(table, index)
            donor = source._partitions.get(name)
            if donor is not None and donor.rows:
                # Columnar copy: materialise the donor once and bulk-load
                # through the vectorised path instead of row dicts. The
                # read side is policy-retried (transient donor hiccups);
                # the local insert happens exactly once, *after* a full
                # read succeeded, so retries can never double-insert.
                columns, __ = call_with_retries(
                    lambda __attempt: donor.all_columns(),
                    policy=self.recovery_policy,
                )
                storage.insert_columns(columns)
        return storage

    def drop_shard(self, shard_id: int) -> None:
        """Delete all data and metadata of a shard (paper's dropShard)."""
        names = self._shards.pop(shard_id, None)
        if names is None:
            raise ShardNotFoundError(
                f"{self.host_id} does not host shard {shard_id}"
            )
        for name in names:
            self._partitions.pop(name, None)
            self._partition_tables.pop(name, None)
        self._forwarding.pop(shard_id, None)

    def prepare_add_shard(self, shard_id: int,
                          source: Optional[ApplicationServer]) -> None:
        """Graceful step 1: copy data; serve only forwarded traffic."""
        self.add_shard(shard_id, source)

    def prepare_drop_shard(self, shard_id: int,
                           target: ApplicationServer) -> None:
        """Graceful step 2: forward requests for the shard to target."""
        if shard_id not in self._shards:
            raise ShardNotFoundError(
                f"{self.host_id} does not host shard {shard_id}"
            )
        if isinstance(target, CubrickNode):
            self._forwarding[shard_id] = target

    def commit_add_shard(self, shard_id: int) -> None:
        """Graceful step 3: now serving the shard from all sources."""
        if shard_id not in self._shards:
            raise ShardNotFoundError(
                f"{self.host_id} was not prepared for shard {shard_id}"
            )

    # ------------------------------------------------------------------
    # Table lifecycle on existing shards
    # ------------------------------------------------------------------

    def attach_partition(self, shard_id: int, table: str, index: int) -> None:
        """Create a new table's partition inside an already-hosted shard.

        This is the *table creation on an existing shard* path: when a
        new table's partition maps to a shard another table already
        occupies (a cross-table partition collision), the partition is
        simply created wherever that shard lives. Note this path can
        create creation-time shard collisions — the paper notes the
        non-retryable refusal "does not prevent collisions at table
        creation time, when shards are already allocated" (§IV-A1).
        """
        if shard_id not in self._shards:
            raise ShardNotFoundError(
                f"{self.host_id} does not host shard {shard_id}"
            )
        name = partition_name(table, index)
        if name in self._partitions:
            return
        schema = self.catalog.get(table).schema
        self._partitions[name] = PartitionStorage(schema, index, obs=self.obs)
        self._partition_tables[name] = table
        self._shards[shard_id].append(name)

    def detach_partition(self, shard_id: int, table: str, index: int) -> None:
        """Remove one table's partition from a shard (table drop path)."""
        if shard_id not in self._shards:
            raise ShardNotFoundError(
                f"{self.host_id} does not host shard {shard_id}"
            )
        name = partition_name(table, index)
        self._partitions.pop(name, None)
        self._partition_tables.pop(name, None)
        self._shards[shard_id] = [
            n for n in self._shards[shard_id] if n != name
        ]

    def has_shard_collision(self) -> list[str]:
        """Tables with partitions reaching this host via multiple shards."""
        table_shards: dict[str, set[int]] = {}
        for shard_id, names in self._shards.items():
            for name in names:
                table = self._partition_tables.get(name)
                if table is not None:
                    table_shards.setdefault(table, set()).add(shard_id)
        return sorted(t for t, s in table_shards.items() if len(s) > 1)

    # ------------------------------------------------------------------
    # Metrics (measurement side of load balancing)
    # ------------------------------------------------------------------

    def shard_metrics(self) -> dict[int, float]:
        return self.exporter.shard_metrics(self)

    def exported_capacity(self) -> float:
        return self.exporter.capacity(self)

    def hosted_shards(self) -> set[int]:
        return set(self._shards)

    # ------------------------------------------------------------------
    # Storage access
    # ------------------------------------------------------------------

    def partitions_of_shard(self, shard_id: int) -> list[PartitionStorage]:
        names = self._shards.get(shard_id, [])
        return [self._partitions[n] for n in names if n in self._partitions]

    def partition(self, table: str, index: int) -> PartitionStorage:
        name = partition_name(table, index)
        storage = self._partitions.get(name)
        if storage is None:
            raise PartitionNotFoundError(
                f"{self.host_id} does not store {name}"
            )
        return storage

    def has_partition(self, table: str, index: int) -> bool:
        return partition_name(table, index) in self._partitions

    def partition_names(self) -> list[str]:
        return sorted(self._partitions)

    def tables_stored(self) -> set[str]:
        return set(self._partition_tables.values())

    def is_forwarding(self, shard_id: int) -> bool:
        return shard_id in self._forwarding

    def all_bricks(self) -> list[Brick]:
        bricks: list[Brick] = []
        for name in sorted(self._partitions):
            bricks.extend(self._partitions[name].bricks())
        return bricks

    def total_rows(self) -> int:
        return sum(p.rows for p in self._partitions.values())

    def footprint_bytes(self) -> int:
        return sum(p.footprint_bytes() for p in self._partitions.values())

    def ssd_footprint_bytes(self) -> int:
        """Bytes currently evicted to this host's SSD (generation 3)."""
        return sum(b.ssd_bytes() for b in self.all_bricks())

    def total_io_reads(self) -> int:
        """Cumulative SSD reads paid by queries on this host."""
        return sum(b.io_reads for b in self.all_bricks())

    # ------------------------------------------------------------------
    # Replicated dimension tables (paper §II-B)
    # ------------------------------------------------------------------

    def store_replicated(self, table: str) -> PartitionStorage:
        """Create (or return) this node's full copy of a replicated table."""
        storage = self._replicated.get(table)
        if storage is None:
            schema = self.catalog.get(table).schema
            storage = PartitionStorage(schema, partition_index=0, obs=self.obs)
            self._replicated[table] = storage
        return storage

    def insert_into_replicated(self, table: str,
                               rows: list[dict[str, float]]) -> int:
        """Load rows into the local replica of a replicated table."""
        return self.store_replicated(table).insert_many(rows)

    def replicated_tables(self) -> set[str]:
        return set(self._replicated)

    def drop_replicated(self, table: str) -> None:
        self._replicated.pop(table, None)

    def _join_lookups(
        self, query: Query
    ) -> dict[str, tuple[str, np.ndarray]]:
        """Materialise key→attribute lookup arrays for the query's joins.

        Every node holds a full copy of each replicated dimension table,
        so the join is resolved entirely locally — the reason replication
        is the standard treatment for small frequently-joined tables.
        """
        if not query.joins:
            return {}
        referenced = query.joined_columns()
        lookups: dict[str, tuple[str, np.ndarray]] = {}
        for join in query.joins:
            storage = self._replicated.get(join.table)
            if storage is None:
                raise PartitionNotFoundError(
                    f"{self.host_id} has no replica of table {join.table!r}"
                )
            dim_schema = storage.schema
            key_dim = dim_schema.dimension(join.dim_key)
            wanted = [
                column
                for name in referenced
                if (column := join.column_of(name)) is not None
            ]
            if not wanted:
                continue
            keys_parts = []
            attr_parts: dict[str, list[np.ndarray]] = {c: [] for c in wanted}
            for brick in storage.bricks():
                arrays = brick.columns()
                keys_parts.append(arrays[join.dim_key])
                for column in wanted:
                    attr_parts[column].append(arrays[column])
            keys = (
                np.concatenate(keys_parts)
                if keys_parts
                else np.empty(0, dtype=np.int64)
            )
            for column in wanted:
                values = (
                    np.concatenate(attr_parts[column])
                    if attr_parts[column]
                    else np.empty(0, dtype=np.int64)
                )
                lookup = np.full(key_dim.cardinality, -1, dtype=np.int64)
                lookup[keys.astype(np.int64)] = values.astype(np.int64)
                lookups[f"{join.table}.{column}"] = (join.fact_key, lookup)
        return lookups

    # ------------------------------------------------------------------
    # Local (partial) query execution
    # ------------------------------------------------------------------

    def execute_local(
        self,
        query: Query,
        partition_indexes: list[int],
        extra_lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> PartialResult:
        """Execute the query over the named partitions of its table.

        The caller (query coordinator) names exactly which partitions
        this host is responsible for; missing partitions raise, which
        surfaces routing staleness instead of silently returning partial
        data. Joins to replicated dimension tables are materialised from
        this node's local replicas; ``extra_lookups`` supplies
        coordinator-built lookups for broadcast joins against *sharded*
        dimension tables (dotted references the local replicas cannot
        answer).

        When a :class:`~repro.cubrick.parallel.ParallelScanner` is
        attached (``node.parallel_scanner = scanner``), each partition's
        brick scans fan out across its worker pool; results are
        bit-identical to the serial path. The DES simulation never
        attaches one, so seeded runs stay byte-identical.
        """
        scanner = self.parallel_scanner
        lookups = self._join_lookups(query)
        if extra_lookups:
            lookups = {**lookups, **extra_lookups}
        partial = PartialResult(query=query)
        # Kernel spans only inside an active query trace: direct calls
        # (unit tests, maintenance scans) must not mint root traces.
        tracing = self.obs.tracer.current is not None
        family = kernel_family(query)
        for index in partition_indexes:
            storage = self.partition(query.table, index)
            before_rows = partial.rows_scanned
            before_bricks = partial.bricks_scanned
            if tracing:
                with self.obs.tracer.span(
                    "cubrick.node.kernel",
                    host=self.host_id,
                    table=query.table,
                    family=family,
                ) as kspan:
                    if scanner is not None:
                        partial.merge(scanner.execute(storage, query, lookups))
                    else:
                        partial.merge(storage.execute(query, lookups))
                    kspan.annotate(
                        partition=index,
                        rows_scanned=partial.rows_scanned - before_rows,
                        bricks_scanned=partial.bricks_scanned - before_bricks,
                    )
            elif scanner is not None:
                partial.merge(scanner.execute(storage, query, lookups))
            else:
                partial.merge(storage.execute(query, lookups))
        self.obs.metrics.counter(
            "cubrick.node.rows_scanned", host=self.host_id
        ).inc(partial.rows_scanned)
        return partial

    def project_columns(
        self,
        table: str,
        partition_indexes: list[int],
        columns: list[str],
        filters=(),
    ) -> dict[str, np.ndarray]:
        """Materialise columns of the named partitions (join collection).

        The node-side half of the coordinator's dimension-table
        collection for distributed joins: each partition projects the
        requested columns (pre-filtered by any pushed-down predicates)
        and the per-partition arrays concatenate in partition order, so
        the result is deterministic for a fixed routing.
        """
        parts: dict[str, list[np.ndarray]] = {name: [] for name in columns}
        for index in partition_indexes:
            storage = self.partition(table, index)
            projected = storage.project(list(columns), tuple(filters))
            for name in columns:
                parts[name].append(projected[name])
        return {
            name: (
                np.concatenate(chunks)
                if chunks else np.empty(0, dtype=np.int64)
            )
            for name, chunks in parts.items()
        }

    def insert_into_partition(self, table: str, index: int,
                              rows: list[dict[str, float]]) -> int:
        """Load rows into one locally stored partition."""
        return self.partition(table, index).insert_many(rows)

    def insert_columns_into_partition(
        self, table: str, index: int, columns: dict[str, np.ndarray],
        *, validated: bool = False
    ) -> int:
        """Bulk-load column arrays into one locally stored partition
        (the loader's vectorised flush path). ``validated=True`` skips
        re-validation for rows already checked at append time."""
        return self.partition(table, index).insert_columns(
            columns, validated=validated
        )

    # ------------------------------------------------------------------
    # Background maintenance
    # ------------------------------------------------------------------

    def run_memory_monitor(self) -> MonitorReport:
        """One adaptive-compression pass over all local bricks."""
        with self.obs.tracer.span(
            "cubrick.node.memory_monitor", host=self.host_id
        ) as span:
            report = self.memory_monitor.run(self.all_bricks())
            span.annotate(
                compressed=report.compressed,
                decompressed=report.decompressed,
                evicted=report.evicted,
                loaded=report.loaded,
                footprint_before=report.footprint_before,
                footprint_after=report.footprint_after,
            )
        # Lazily registered so idle nodes don't flood snapshots with
        # zero-valued per-host instruments.
        metrics = self.obs.metrics
        metrics.counter(
            "cubrick.node.bricks_compressed", host=self.host_id
        ).inc(report.compressed)
        metrics.counter(
            "cubrick.node.bricks_decompressed", host=self.host_id
        ).inc(report.decompressed)
        metrics.counter(
            "cubrick.node.bricks_evicted", host=self.host_id
        ).inc(report.evicted)
        metrics.counter(
            "cubrick.node.bricks_loaded", host=self.host_id
        ).inc(report.loaded)
        metrics.gauge(
            "cubrick.node.footprint_bytes", host=self.host_id
        ).set(report.footprint_after)
        if report.evicted:
            self.obs.events.emit(
                "cubrick.node.bricks_evicted",
                host=self.host_id,
                evicted=report.evicted,
                footprint_after=report.footprint_after,
            )
        return report

    def decay_hotness(self, probability: float = 0.5,
                      factor: float = 0.5) -> int:
        """One stochastic hotness-decay round over all local bricks."""
        return decay_all(
            self.all_bricks(), self._decay_rng,
            probability=probability, factor=factor,
        )

    def __repr__(self) -> str:
        return (
            f"CubrickNode({self.host_id}, shards={len(self._shards)}, "
            f"partitions={len(self._partitions)}, rows={self.total_rows()})"
        )
