"""Multi-core brick scans: fan one partition's scan across processes.

The scan pipeline is embarrassingly parallel at brick granularity: each
brick produces an independent array-form partial (one
:class:`~repro.cubrick.query._Block` per brick) and the coordinator-grade
merge code combines them. :class:`ParallelScanner` exploits that by
forking a process pool *after* the partition is loaded — workers inherit
the parent's bricks through copy-on-write memory (the bricks' sealed
numpy chunks and zlib blobs are never pickled or copied), scan their
assigned bricks, and ship back only the compact per-brick partials.

Determinism. The parent merges per-brick partials in brick-id order —
the exact order the serial scan visits them — so the merged
``PartialResult`` sees the same block sequence, hits the same compaction
points, and therefore produces *bit-identical* results for any worker
count, including the serial fallback. That is what lets the DES
simulation and the seeded test suites run with parallelism disabled
(the default) while the benchmark harness turns it on.

The serial fallback also engages automatically when the pool cannot
help: one brick, one worker, a platform without ``fork``, or a nested
worker process.
"""

from __future__ import annotations

import multiprocessing
import os
# Wall-clock timing is deliberate here: the parallel path only runs in
# the benchmark harness, never inside the seeded DES (which would be
# non-deterministic if it read real time). TID251 bans these imports
# exactly to protect the DES paths.
import time  # noqa: TID251
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cubrick.query import PartialResult, Query
from repro.cubrick.storage import PartitionStorage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

#: Set in the parent immediately before the pool forks; workers read it
#: from their copy-on-write memory image. Never set in worker processes.
_SCAN_CONTEXT: Optional[tuple] = None


def _scan_one_brick(brick_id: int) -> tuple[PartialResult, int, float]:
    """Worker entry point: scan a single brick of the inherited storage.

    Returns ``(partial, worker_pid, elapsed_seconds)`` so the parent can
    attribute scan time and row counts per worker.
    """
    storage, query, lookups = _SCAN_CONTEXT
    started = time.perf_counter()  # noqa: TID251
    partial = storage.scan_bricks(query, [brick_id], lookups)
    return partial, os.getpid(), time.perf_counter() - started  # noqa: TID251


def _fork_available() -> bool:
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    # A daemonic worker (e.g. inside another pool) cannot fork children.
    return not multiprocessing.current_process().daemon


class ParallelScanner:
    """Fans a partition's brick scans across a fork-based process pool.

    ``workers`` defaults to the machine's core count. The scanner is
    stateless between queries: each :meth:`execute` forks a fresh pool so
    workers always see the partition's current bricks (no cache
    invalidation protocol), and the pool is torn down before returning.

    When an ``obs`` registry is attached, every scan records per-worker
    brick-scan timings (``cubrick.parallel.brick_scan_seconds``) and
    rows/bricks-scanned counters into the parent's registry; pool worker
    pids are mapped to dense ``w0..wN`` labels (sorted by pid) so label
    cardinality stays bounded and label *sets* are stable run to run.
    The serial fallback records under ``worker="serial"``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        obs: Optional["Observability"] = None,
    ):
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        self.obs = obs

    def _record_worker_scans(
        self, scans: list[tuple[str, float, int, int]]
    ) -> None:
        """Merge per-worker scan telemetry into the parent registry."""
        if self.obs is None:
            return
        metrics = self.obs.metrics
        for worker, elapsed, rows, bricks in scans:
            metrics.histogram(
                "cubrick.parallel.brick_scan_seconds", worker=worker
            ).observe(elapsed)
            metrics.counter(
                "cubrick.parallel.rows_scanned", worker=worker
            ).inc(rows)
            metrics.counter(
                "cubrick.parallel.bricks_scanned", worker=worker
            ).inc(bricks)

    def execute(
        self,
        storage: PartitionStorage,
        query: Query,
        lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> PartialResult:
        """Execute the query over the partition, scanning bricks in
        parallel; bit-identical to ``storage.execute(query, lookups)``.
        """
        global _SCAN_CONTEXT
        effective_lookups = lookups if lookups is not None else {}
        storage._validate_query(query, effective_lookups)
        brick_ids = storage.candidate_brick_ids(query)
        if (
            self.workers <= 1
            or len(brick_ids) <= 1
            or not _fork_available()
        ):
            started = time.perf_counter()  # noqa: TID251
            partial = storage.scan_bricks(
                query, brick_ids, effective_lookups
            )
            self._record_worker_scans([(
                "serial",
                time.perf_counter() - started,  # noqa: TID251
                partial.rows_scanned,
                partial.bricks_scanned,
            )])
            storage.record_scan(partial)
            return partial

        # Materialise every candidate brick (decompress / load from SSD)
        # in the parent so the COW image workers inherit is scannable
        # and the restored state persists after the query — a worker's
        # decompression would die with the worker. Hotness bumps also
        # happen here: a worker's touch() lands on its private copy.
        for brick_id in brick_ids:
            brick = storage.brick(brick_id)
            brick.columns()
            brick.touch()

        ctx = multiprocessing.get_context("fork")
        _SCAN_CONTEXT = (storage, query, effective_lookups)
        try:
            with ctx.Pool(processes=min(self.workers, len(brick_ids))) as pool:
                chunksize = max(1, len(brick_ids) // (self.workers * 4))
                results = pool.map(
                    _scan_one_brick, brick_ids, chunksize=chunksize
                )
        finally:
            _SCAN_CONTEXT = None

        # Dense per-worker labels: sorted pids → w0..wN, so label
        # cardinality is bounded by the pool size, not by pid churn.
        worker_label = {
            pid: f"w{i}"
            for i, pid in enumerate(sorted({pid for _, pid, _ in results}))
        }
        self._record_worker_scans([
            (
                worker_label[pid],
                elapsed,
                partial.rows_scanned,
                partial.bricks_scanned,
            )
            for partial, pid, elapsed in results
        ])

        # pool.map preserves input order, so merging left to right is the
        # serial scan's brick-id order: same block sequence, same
        # compaction points, bit-identical result.
        merged = PartialResult(query=query)
        for partial, __, __ in results:
            merged.merge(partial)
        storage.record_scan(merged)
        return merged
