"""Record→partition assignment and dynamic re-partitioning (paper §IV-B).

Cubrick segments each table into horizontal partitions; records are
assigned by a deterministic hash of the dimension values (minimising
skew between partitions so every server does roughly equal work at
query time). The partition count is *dynamic*: tables start at 8
partitions — enough parallelism for small tables without frequent
re-partitions — and a re-partition (doubling) is triggered when any
partition exceeds a size threshold. Shrinking collapses data into fewer
partitions when they get too small. Re-partitions shuffle data and are
expensive, so thresholds are chosen to keep them sporadic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cubrick.schema import TableSchema
from repro.cubrick.sharding import stable_hash
from repro.errors import ConfigurationError

DEFAULT_INITIAL_PARTITIONS = 8


@dataclass(frozen=True)
class PartitioningPolicy:
    """When to grow/shrink a table's partition count.

    ``max_rows_per_partition`` triggers growth (doubling);
    ``min_rows_per_partition`` triggers shrinking (halving) once the
    table is above the initial partition count. ``max_partitions``
    caps growth — the paper notes production tables top out around 60
    partitions, bounded by the ~1TB max dataset size.
    """

    initial_partitions: int = DEFAULT_INITIAL_PARTITIONS
    max_rows_per_partition: int = 100_000
    min_rows_per_partition: int = 10_000
    max_partitions: int = 64

    def __post_init__(self) -> None:
        if self.initial_partitions <= 0:
            raise ConfigurationError(
                f"initial_partitions must be positive: {self.initial_partitions}"
            )
        if self.max_rows_per_partition <= 0:
            raise ConfigurationError(
                f"max_rows_per_partition must be positive: "
                f"{self.max_rows_per_partition}"
            )
        if not 0 <= self.min_rows_per_partition < self.max_rows_per_partition:
            raise ConfigurationError(
                "min_rows_per_partition must be in [0, max_rows_per_partition)"
            )
        if self.max_partitions < self.initial_partitions:
            raise ConfigurationError(
                "max_partitions must be >= initial_partitions"
            )

    def next_partition_count(self, current: int, max_partition_rows: int,
                             total_rows: int) -> int:
        """Partition count after evaluating thresholds (may be unchanged)."""
        if current < 1:
            raise ConfigurationError(f"current partition count invalid: {current}")
        if max_partition_rows > self.max_rows_per_partition:
            # Grow, clamped at the cap even when doubling overshoots.
            if current < self.max_partitions:
                return min(current * 2, self.max_partitions)
            # Already at (or above) the cap: an overloaded table must
            # never fall through into the shrink branch — a skewed table
            # can be over the per-partition maximum while its *average*
            # rows-per-partition sits below the shrink threshold, and
            # halving it would make the hot partition worse.
            return current
        if (
            current > self.initial_partitions
            and total_rows / current < self.min_rows_per_partition
        ):
            return max(current // 2, self.initial_partitions)
        return current


def partition_of(schema: TableSchema, row: dict[str, float],
                 num_partitions: int) -> int:
    """Deterministic record→partition assignment.

    Hashes the full dimension tuple so sibling records spread evenly
    and the assignment is reproducible across loaders.
    """
    if num_partitions <= 0:
        raise ConfigurationError(f"num_partitions must be positive: {num_partitions}")
    key = "|".join(f"{d.name}={int(row[d.name])}" for d in schema.dimensions)
    return stable_hash(key) % num_partitions


def plan_repartition(
    schema: TableSchema,
    rows: list[dict[str, float]],
    new_partition_count: int,
) -> dict[int, list[dict[str, float]]]:
    """Shuffle rows into their new partitions (the data-movement plan).

    Returns new-partition-index → rows. Callers execute the plan by
    rebuilding partition storages and re-registering shards; this is the
    computationally expensive shuffle the paper warns should stay
    sporadic.
    """
    plan: dict[int, list[dict[str, float]]] = {
        i: [] for i in range(new_partition_count)
    }
    for row in rows:
        plan[partition_of(schema, row, new_partition_count)].append(row)
    return plan


def skew(partition_rows: list[int]) -> float:
    """Max/mean row-count ratio across partitions (1.0 = perfectly even)."""
    if not partition_rows:
        return 1.0
    mean = sum(partition_rows) / len(partition_rows)
    if mean == 0:
        return 1.0
    return max(partition_rows) / mean
