"""Cubrick proxy: the stateless front door for all queries (paper §IV-D).

Every query is submitted to a Cubrick proxy, which:

* runs **admission control** (sliding-window QPS limiting);
* picks the most suitable **region** (availability first, then client
  proximity = configured preference order);
* **retries** queries that failed with retryable errors (hardware
  failure mid-query, unavailable partitions) transparently in a
  different region;
* maintains a **blacklist** of recently failing hosts;
* keeps the **partition-count cache** fresh from query-result metadata
  (locator strategy 4, §IV-C);
* **logs** every query for tracing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chaos.policies import ResiliencePolicy
from repro.cubrick.coordinator import RegionCoordinator
from repro.cubrick.locator import CachedRandom, CoordinatorLocator
from repro.cubrick.query import Query, QueryResult
from repro.errors import (
    AdmissionControlError,
    ConfigurationError,
    QueryFailedError,
    RegionUnavailableError,
    TableNotFoundError,
)
from repro.obs import Observability
from repro.sched.admission import SlidingWindowAdmission
from repro.sched.cache import CACHE_HIT_LATENCY, QueryResultCache


@dataclass
class QueryLogEntry:
    """One proxied query, for tracing and SLA accounting."""

    time: float
    table: str
    succeeded: bool
    attempts: int
    region: Optional[str] = None
    latency: Optional[float] = None
    error: Optional[str] = None
    # The answer was accepted through the graceful-degradation path:
    # partial coverage, explicitly labelled (never silently wrong).
    degraded: bool = False
    # Served from the proxy result cache without touching a region.
    cached: bool = False


@dataclass
class AdmissionController(SlidingWindowAdmission):
    """Compat shim: the sliding-window limiter now lives in ``repro.sched``.

    Kept so existing callers (and tests) that reach for
    ``proxy.admission.max_qps`` / ``set_table_quota`` keep working; the
    implementation — including the fast-path fix that records arrivals
    even while no limit is configured — is
    :class:`repro.sched.admission.SlidingWindowAdmission`.
    """


class CubrickProxy:
    """Routes queries to regional coordinators with retries + blacklisting."""

    def __init__(
        self,
        coordinators: dict[str, RegionCoordinator],
        *,
        region_preference: Optional[list[str]] = None,
        home_region: Optional[str] = None,
        locator: Optional[CoordinatorLocator] = None,
        max_qps: float = float("inf"),
        blacklist_ttl: float = 300.0,
        rng: Optional[np.random.Generator] = None,
        policy: Optional[ResiliencePolicy] = None,
        obs: Optional[Observability] = None,
    ):
        if not coordinators:
            raise ConfigurationError("proxy needs at least one region coordinator")
        self.coordinators = dict(coordinators)
        # The unified resilience policy. The default reproduces the
        # pre-policy behaviour exactly: one attempt per candidate
        # region, no backoff, no per-hop timeout, no degradation.
        self.policy = policy if policy is not None else ResiliencePolicy.legacy()
        if home_region is not None and home_region not in coordinators:
            raise ConfigurationError(f"unknown home region: {home_region}")
        self.home_region = home_region
        if region_preference is None and home_region is not None:
            # Client proximity: the home region serves first, replica
            # regions are the cross-region failover path.
            region_preference = [home_region] + sorted(
                r for r in coordinators if r != home_region
            )
        preference = region_preference or sorted(coordinators)
        unknown = set(preference) - set(coordinators)
        if unknown:
            raise ConfigurationError(f"unknown regions in preference: {unknown}")
        self.region_preference = preference
        self.locator = locator if locator is not None else CachedRandom()
        self.admission = AdmissionController(max_qps=max_qps)
        # Optional proxy-level result cache (repro.sched). Off by
        # default; installed by the workload manager or the deployment.
        self.result_cache: Optional[QueryResultCache] = None
        self.blacklist_ttl = blacklist_ttl
        self._blacklist: dict[str, float] = {}  # host -> expiry time
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.query_log: list[QueryLogEntry] = []
        self.obs = obs if obs is not None else Observability()
        self._retry_counter = self.obs.metrics.counter("cubrick.proxy.retries")
        self._cross_region_counter = self.obs.metrics.counter(
            "cubrick.proxy.cross_region_served"
        )
        self._latency_histogram = self.obs.metrics.histogram(
            "cubrick.proxy.latency_seconds", track_samples=True
        )

    def _outcome_counter(self, outcome: str):
        return self.obs.metrics.counter("cubrick.proxy.queries", outcome=outcome)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @property
    def _now(self) -> float:
        any_coordinator = next(iter(self.coordinators.values()))
        return any_coordinator.sm.simulator.now

    def blacklist_host(self, host_id: str) -> None:
        self._blacklist[host_id] = self._now + self.blacklist_ttl

    def is_blacklisted(self, host_id: str) -> bool:
        expiry = self._blacklist.get(host_id)
        if expiry is None:
            return False
        if expiry <= self._now:
            del self._blacklist[host_id]
            return False
        return True

    def blacklisted_hosts(self) -> list[str]:
        now = self._now
        return sorted(h for h, exp in self._blacklist.items() if exp > now)

    def _candidate_regions(self) -> list[str]:
        """Available regions, in proximity/preference order."""
        candidates = []
        for region in self.region_preference:
            coordinator = self.coordinators[region]
            if coordinator.sm.cluster.region(region).available:
                candidates.append(region)
        return candidates

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------

    def _table_versions(self, table: str) -> Optional[tuple[int, int]]:
        """(generation, ingest_generation) for cache keys; None = unknown."""
        any_coordinator = next(iter(self.coordinators.values()))
        try:
            info = any_coordinator.catalog.get(table)
        except TableNotFoundError:
            return None
        return info.generation, info.ingest_generation

    def _cache_get(self, query: Query) -> Optional[QueryResult]:
        versions = self._table_versions(query.table)
        if versions is None:
            return None
        hit = self.result_cache.get(
            query, generation=versions[0], ingest_generation=versions[1]
        )
        if hit is None:
            return None
        hit.metadata["cached"] = True
        hit.metadata["latency_total"] = CACHE_HIT_LATENCY
        self.query_log.append(
            QueryLogEntry(
                time=self._now,
                table=query.table,
                succeeded=True,
                attempts=0,
                latency=CACHE_HIT_LATENCY,
                cached=True,
            )
        )
        self._outcome_counter("cache_hit").inc()
        self._latency_histogram.observe(CACHE_HIT_LATENCY)
        return hit

    def _cache_put(
        self,
        query: Query,
        result: QueryResult,
        versions: Optional[tuple[int, int]],
    ) -> None:
        """Store a fresh answer under the versions read *before* execution.

        ``versions`` must be the (generation, ingest_generation) pair
        sampled before the query ran. Re-reading the catalog here would
        race with concurrent loads in the real-time serving tier: a load
        landing between execution and this store would file a pre-load
        answer under the post-load key — a stale read served until the
        next invalidation. Keying by the pre-execution snapshot means a
        concurrent bump simply makes this entry unreachable.
        """
        if versions is None:
            return
        self.result_cache.put(
            query, result, generation=versions[0], ingest_generation=versions[1]
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: Query,
        *,
        allow_partial: bool = False,
        straggler_timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        policy: Optional[ResiliencePolicy] = None,
        cache_lookup: bool = True,
    ) -> QueryResult:
        """Route one query; retry retryable failures across regions.

        ``allow_partial``/``straggler_timeout`` select the Scuba-style
        accuracy-for-availability trade (paper §II-C): dead or slow
        hosts are dropped from the answer instead of failing the query;
        the result's ``metadata["coverage"]`` reports completeness.

        ``deadline`` (seconds) is a per-region latency budget: a region
        whose execution exceeds it is treated as failed (exact results,
        just too slow) and the query is hedged to the next region. The
        final result's ``metadata["latency_total"]`` accounts for the
        time burnt on abandoned attempts.

        ``policy`` overrides the proxy's resilience policy for this one
        query: retry budget and backoff (attempts cycle through the
        candidate regions), per-hop timeouts and hedging (enforced by
        the coordinator) and graceful degradation — when the budget is
        exhausted on retryable failures, the query is re-executed in
        partial mode and the answer returned with an explicit
        ``metadata["completeness"]`` fraction instead of failing.

        ``cache_lookup=False`` skips the result-cache *lookup* (for
        callers like the workload manager that already checked) while
        still storing the fresh answer for future hits.

        Raises :class:`AdmissionControlError` when over the QPS limit,
        :class:`RegionUnavailableError` when no region can serve, and
        re-raises the last :class:`QueryFailedError` when all regions
        were tried and failed.
        """
        if deadline is not None and deadline <= 0:
            raise ConfigurationError(f"deadline must be positive: {deadline}")
        # Only full-fidelity answers are cacheable: partial/straggler
        # modes change result semantics and must always execute.
        cacheable = (
            self.result_cache is not None
            and not allow_partial
            and straggler_timeout is None
        )
        if cacheable and cache_lookup:
            hit = self._cache_get(query)
            if hit is not None:
                return hit
        # Snapshot the table versions before executing so the store
        # below cannot be poisoned by a load that lands mid-flight.
        cache_versions = (
            self._table_versions(query.table) if cacheable else None
        )
        # The root span of every query trace. Its duration is the
        # user-visible latency (wasted attempts included); coordinator
        # and per-host scan spans nest beneath it.
        with self.obs.tracer.span("cubrick.proxy.query", table=query.table) as span:
            try:
                result = self._submit(
                    query,
                    allow_partial=allow_partial,
                    straggler_timeout=straggler_timeout,
                    deadline=deadline,
                    policy=policy if policy is not None else self.policy,
                )
            except AdmissionControlError:
                span.annotate(outcome="admission_rejected")
                self._outcome_counter("admission_rejected").inc()
                raise
            except RegionUnavailableError:
                span.annotate(outcome="no_region")
                self._outcome_counter("no_region").inc()
                raise
            except QueryFailedError as exc:
                span.annotate(outcome="failed", error=str(exc))
                self._outcome_counter("failed").inc()
                raise
            latency_total = result.metadata.get("latency_total", 0.0)
            span.set_duration(latency_total)
            span.annotate(
                outcome="ok",
                region=result.metadata.get("region"),
                attempts=result.metadata.get("attempts"),
                degraded=result.metadata.get("degraded", False),
            )
        self._outcome_counter("ok").inc()
        self._latency_histogram.observe(latency_total)
        if cacheable:
            self._cache_put(query, result, cache_versions)
        return result

    def _submit(
        self,
        query: Query,
        *,
        allow_partial: bool,
        straggler_timeout: Optional[float],
        deadline: Optional[float],
        policy: ResiliencePolicy,
    ) -> QueryResult:
        now = self._now
        if not self.admission.admit(now, query.table):
            entry = QueryLogEntry(
                time=now, table=query.table, succeeded=False, attempts=0,
                error="admission_control",
            )
            self.query_log.append(entry)
            self.obs.events.emit(
                "cubrick.proxy.admission_rejected", table=query.table
            )
            raise AdmissionControlError(
                f"query on {query.table} rejected: QPS limit reached"
            )

        regions = self._candidate_regions()
        if not regions:
            entry = QueryLogEntry(
                time=now, table=query.table, succeeded=False, attempts=0,
                error="no_region_available",
            )
            self.query_log.append(entry)
            raise RegionUnavailableError("no region available for query")

        # The retry budget: explicit from the policy, or (legacy) one
        # attempt per candidate region. Attempts cycle through the
        # candidate regions in preference order, with deterministic
        # exponential backoff between them.
        budget = policy.retry.budget(default=len(regions))
        attempts = 0
        timeouts = 0
        wasted_latency = 0.0
        backoff_total = 0.0
        last_error: Optional[QueryFailedError] = None
        for attempt in range(1, budget + 1):
            region = regions[(attempt - 1) % len(regions)]
            coordinator = self.coordinators[region]
            attempts += 1
            info = coordinator.catalog.get(query.table)
            choice = self.locator.choose(
                query.table, info.num_partitions, self._rng
            )
            # Simulated time already burned on earlier attempts: this
            # attempt's span starts that far into the proxy span.
            elapsed = wasted_latency + backoff_total
            try:
                result = coordinator.execute(
                    query,
                    coordinator_partition=choice.partition_index,
                    extra_hops=choice.extra_hops,
                    extra_roundtrips=choice.extra_roundtrips,
                    allow_partial=allow_partial,
                    straggler_timeout=straggler_timeout,
                    policy=policy,
                )
            except QueryFailedError as exc:
                self._shift_last_child(elapsed)
                last_error = exc
                if exc.host is not None:
                    self.blacklist_host(exc.host)
                    self.obs.events.emit(
                        "cubrick.proxy.host_blacklisted",
                        host=exc.host,
                        region=str(exc.region),
                    )
                if not exc.retryable:
                    break
                self._retry_counter.inc()
                if attempt < budget:
                    backoff_total += policy.retry.backoff_delay(
                        attempt, self._rng
                    )
                continue  # transparently retry (next candidate region)
            self._shift_last_child(elapsed)
            latency = result.metadata.get("latency", 0.0)
            if deadline is not None and latency > deadline:
                # Too slow: abandon this answer at the deadline and hedge
                # to the next region.
                timeouts += 1
                wasted_latency += deadline
                last_error = QueryFailedError(
                    f"query on {query.table} exceeded {deadline}s deadline "
                    f"in {region}",
                    region=region,
                )
                self._retry_counter.inc()
                self.obs.events.emit(
                    "cubrick.proxy.deadline_exceeded",
                    table=query.table,
                    region=region,
                    deadline=deadline,
                    latency=latency,
                )
                if attempt < budget:
                    backoff_total += policy.retry.backoff_delay(
                        attempt, self._rng
                    )
                continue
            self.locator.observe_result(
                query.table,
                result.metadata.get("num_partitions", 0),
                result.metadata.get("generation", 0),
            )
            if self.home_region is not None and region != self.home_region:
                # Served by a replica region — the cross-region failover
                # path the multi-region deployment exists for.
                self._cross_region_counter.inc()
                if self.home_region not in regions:
                    self.obs.events.emit(
                        "cubrick.proxy.cross_region_failover",
                        table=query.table,
                        home=self.home_region,
                        served_by=region,
                    )
            self.query_log.append(
                QueryLogEntry(
                    time=now,
                    table=query.table,
                    succeeded=True,
                    attempts=attempts,
                    region=region,
                    latency=latency,
                )
            )
            result.metadata["attempts"] = attempts
            result.metadata["timeouts"] = timeouts
            result.metadata["backoff_total"] = backoff_total
            result.metadata["latency_total"] = (
                wasted_latency + backoff_total + latency
            )
            return result

        if (
            policy.degradation.enabled
            and not allow_partial
            and last_error is not None
            and last_error.retryable
        ):
            degraded = self._degraded_submit(
                query,
                regions,
                policy,
                now=now,
                attempts=attempts,
                timeouts=timeouts,
                wasted_latency=wasted_latency + backoff_total,
            )
            if degraded is not None:
                return degraded

        message = str(last_error) if last_error else "all regions failed"
        self.query_log.append(
            QueryLogEntry(
                time=now, table=query.table, succeeded=False,
                attempts=attempts, error=message,
            )
        )
        self.obs.events.emit(
            "cubrick.proxy.query_failed",
            table=query.table,
            attempts=attempts,
            error=message,
        )
        if last_error is not None:
            raise last_error
        raise RegionUnavailableError(message)

    def _degraded_submit(
        self,
        query: Query,
        regions: list[str],
        policy: ResiliencePolicy,
        *,
        now: float,
        attempts: int,
        timeouts: int,
        wasted_latency: float,
    ) -> Optional[QueryResult]:
        """Graceful degradation: partial answer with explicit completeness.

        After the retry budget is exhausted on retryable failures, the
        query is re-executed region by region in partial mode (dead and
        timed-out hosts dropped). The first answer covering at least the
        policy's ``min_completeness`` is returned, labelled with
        ``metadata["degraded"] = True`` and ``metadata["completeness"]``
        — an accepted query never silently drops rows. Returns None when
        no region can produce an acceptable partial answer.
        """
        for region in regions:
            coordinator = self.coordinators[region]
            attempts += 1
            info = coordinator.catalog.get(query.table)
            choice = self.locator.choose(
                query.table, info.num_partitions, self._rng
            )
            try:
                result = coordinator.execute(
                    query,
                    coordinator_partition=choice.partition_index,
                    extra_hops=choice.extra_hops,
                    extra_roundtrips=choice.extra_roundtrips,
                    allow_partial=True,
                    straggler_timeout=policy.timeout.per_hop,
                    policy=policy,
                )
            except QueryFailedError:
                self._shift_last_child(wasted_latency)
                continue  # e.g. unresolved shard mapping: try elsewhere
            self._shift_last_child(wasted_latency)
            coverage = result.metadata.get("coverage", 0.0)
            if coverage < policy.degradation.min_completeness:
                continue
            latency = result.metadata.get("latency", 0.0)
            self.query_log.append(
                QueryLogEntry(
                    time=now,
                    table=query.table,
                    succeeded=True,
                    attempts=attempts,
                    region=region,
                    latency=latency,
                    degraded=True,
                )
            )
            self.obs.events.emit(
                "cubrick.proxy.query_degraded",
                table=query.table,
                region=region,
                completeness=coverage,
                attempts=attempts,
            )
            result.metadata["attempts"] = attempts
            result.metadata["timeouts"] = timeouts
            result.metadata["degraded"] = True
            result.metadata["completeness"] = coverage
            result.metadata["latency_total"] = wasted_latency + latency
            return result
        return None

    def _shift_last_child(self, offset: float) -> None:
        """Shift the just-finished coordinator attempt onto the timeline.

        The DES clock does not advance inside a submission, so every
        coordinator attempt's span opens at the proxy span's start; on
        the simulated schedule attempt N starts after the latency wasted
        on earlier attempts plus backoff. Shifting the finished subtree
        restores that timeline, so profiler stage self-times line up
        with ``latency_total``.
        """
        span = self.obs.tracer.current
        if offset > 0.0 and span is not None and span.children:
            span.children[-1].shift(offset)

    # ------------------------------------------------------------------
    # SLA accounting
    # ------------------------------------------------------------------

    def success_ratio(self) -> float:
        if not self.query_log:
            return 1.0
        succeeded = sum(1 for e in self.query_log if e.succeeded)
        return succeeded / len(self.query_log)

    def degraded_ratio(self) -> float:
        """Fraction of logged queries answered via graceful degradation."""
        if not self.query_log:
            return 0.0
        degraded = sum(1 for e in self.query_log if e.degraded)
        return degraded / len(self.query_log)

    def first_try_success_ratio(self) -> float:
        """Success without needing a cross-region retry."""
        if not self.query_log:
            return 1.0
        first_try = sum(
            1 for e in self.query_log if e.succeeded and e.attempts == 1
        )
        return first_try / len(self.query_log)

    def latencies(self) -> list[float]:
        return [e.latency for e in self.query_log
                if e.succeeded and e.latency is not None]
