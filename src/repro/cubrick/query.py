"""Query model: filters, aggregations, partial and final results.

Cubrick serves low-latency OLAP aggregations: a query names a table,
a set of dimension filters, optional group-by dimensions and one or more
metric aggregations. Execution is distributed — every host holding a
partition computes a *partial result*, and the query coordinator merges
partials and materialises the final result (paper §I, §IV-C).

Partial aggregates are kept in merge-friendly state form (``avg`` is a
(sum, count) pair) so partials combine associatively regardless of how
rows were split across partitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import QueryError


class FilterOp(enum.Enum):
    EQ = "eq"
    IN = "in"
    BETWEEN = "between"
    # Complement membership: keep rows whose value is NOT in the set.
    # Emitted by the SQL planner for != / NOT IN / large OR complements;
    # contributes no brick pruning (the excluded set says nothing about
    # which buckets the surviving rows live in).
    NOT_IN = "not_in"


@dataclass(frozen=True)
class Filter:
    """A predicate over one dimension column."""

    dimension: str
    op: FilterOp
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.op is FilterOp.EQ and len(self.values) != 1:
            raise QueryError(f"EQ filter needs exactly one value: {self.values}")
        if self.op is FilterOp.IN and not self.values:
            raise QueryError("IN filter needs at least one value")
        if self.op is FilterOp.NOT_IN and not self.values:
            raise QueryError("NOT IN filter needs at least one value")
        if self.op is FilterOp.BETWEEN:
            if len(self.values) != 2:
                raise QueryError(f"BETWEEN filter needs (low, high): {self.values}")
            low, high = self.values
            if low > high:
                raise QueryError(f"BETWEEN range is empty: {self.values}")

    @classmethod
    def eq(cls, dimension: str, value: int) -> "Filter":
        return cls(dimension=dimension, op=FilterOp.EQ, values=(int(value),))

    @classmethod
    def isin(cls, dimension: str, values: list[int] | tuple[int, ...]) -> "Filter":
        return cls(dimension=dimension, op=FilterOp.IN,
                   values=tuple(int(v) for v in values))

    @classmethod
    def between(cls, dimension: str, low: int, high: int) -> "Filter":
        return cls(dimension=dimension, op=FilterOp.BETWEEN,
                   values=(int(low), int(high)))

    @classmethod
    def not_in(cls, dimension: str,
               values: list[int] | tuple[int, ...]) -> "Filter":
        return cls(dimension=dimension, op=FilterOp.NOT_IN,
                   values=tuple(int(v) for v in values))


class AggFunc(enum.Enum):
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    # Exact distinct count; the partial state is the value set, which
    # merges associatively across partitions like every other state.
    COUNT_DISTINCT = "count_distinct"


@dataclass(frozen=True)
class Aggregation:
    """One aggregate over a metric column."""

    func: AggFunc
    metric: str

    def label(self) -> str:
        return f"{self.func.value}({self.metric})"


class CompareOp(enum.Enum):
    GT = ">"
    GE = ">="
    LT = "<"
    LE = "<="
    EQ = "="


@dataclass(frozen=True)
class Having:
    """A post-aggregation predicate over a result column.

    ``column`` is an aggregation label (``"sum(clicks)"``) or a group
    column; evaluated after all partials are merged, alongside ORDER BY.
    """

    column: str
    op: CompareOp
    value: float

    def matches(self, actual) -> bool:
        if actual is None:
            return False
        if self.op is CompareOp.GT:
            return actual > self.value
        if self.op is CompareOp.GE:
            return actual >= self.value
        if self.op is CompareOp.LT:
            return actual < self.value
        if self.op is CompareOp.LE:
            return actual <= self.value
        return actual == self.value


@dataclass(frozen=True)
class Join:
    """An equi-join from the fact table to a *replicated* dimension table.

    Interactive analytic DBMSs replicate small, frequently-joined tables
    to every node so joins with large distributed tables never cross the
    network (paper §II-B). Joined columns are referenced in filters and
    group-bys with dotted names (``"dim_users.country"``); rows whose
    key has no match in the dimension table are dropped (inner join).
    """

    table: str  # the replicated dimension table
    fact_key: str  # join column on the fact table
    dim_key: str  # key column on the dimension table

    def __post_init__(self) -> None:
        if not self.table or not self.fact_key or not self.dim_key:
            raise QueryError("join needs table, fact_key and dim_key")

    def column_of(self, dotted: str) -> Optional[str]:
        """The dimension-table column a dotted reference names (or None)."""
        prefix = f"{self.table}."
        if dotted.startswith(prefix):
            return dotted[len(prefix):]
        return None


@dataclass(frozen=True)
class Query:
    """An OLAP aggregation query against one table (plus optional joins
    to replicated dimension tables)."""

    table: str
    aggregations: tuple[Aggregation, ...]
    group_by: tuple[str, ...] = ()
    filters: tuple[Filter, ...] = ()
    joins: tuple[Join, ...] = ()
    # Post-aggregation shaping, applied after the coordinator merges all
    # partials: HAVING predicates, then ORDER BY a group column or an
    # aggregation label ("sum(clicks)"), then LIMIT.
    having: tuple[Having, ...] = ()
    order_by: Optional[str] = None
    descending: bool = True
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.aggregations:
            raise QueryError("query needs at least one aggregation")
        join_tables = [j.table for j in self.joins]
        if len(join_tables) != len(set(join_tables)):
            raise QueryError("duplicate join table")
        if self.limit is not None and self.limit <= 0:
            raise QueryError(f"limit must be positive: {self.limit}")
        labels = {agg.label() for agg in self.aggregations}
        if self.order_by is not None:
            if self.order_by not in labels and self.order_by not in self.group_by:
                raise QueryError(
                    f"order_by {self.order_by!r} is neither a group column "
                    f"nor an aggregation label ({sorted(labels)})"
                )
        for predicate in self.having:
            if predicate.column not in labels and \
                    predicate.column not in self.group_by:
                raise QueryError(
                    f"having column {predicate.column!r} is neither a group "
                    f"column nor an aggregation label ({sorted(labels)})"
                )

    @classmethod
    def build(
        cls,
        table: str,
        aggregations: list[Aggregation],
        *,
        group_by: Optional[list[str]] = None,
        filters: Optional[list[Filter]] = None,
        joins: Optional[list[Join]] = None,
        having: Optional[list[Having]] = None,
        order_by: Optional[str] = None,
        descending: bool = True,
        limit: Optional[int] = None,
    ) -> "Query":
        return cls(
            table=table,
            aggregations=tuple(aggregations),
            group_by=tuple(group_by or ()),
            filters=tuple(filters or ()),
            joins=tuple(joins or ()),
            having=tuple(having or ()),
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    def joined_columns(self) -> set[str]:
        """Dotted dimension-table references used by this query."""
        names = set(self.group_by)
        names.update(f.dimension for f in self.filters)
        return {n for n in names if "." in n}


def kernel_family(query: Query) -> str:
    """The scan-kernel family a query dispatches to, as a stable label.

    ``grouped:sum+count`` / ``scalar:avg`` — shape (grouped vs scalar
    rollup) plus the sorted set of aggregate functions. This is the
    ``family`` label on ``cubrick.node.kernel`` spans, so profiler
    breakdowns attribute scan time per kernel family.
    """
    shape = "grouped" if query.group_by else "scalar"
    funcs = sorted({agg.func.value for agg in query.aggregations})
    return f"{shape}:{'+'.join(funcs)}" if funcs else shape


# ----------------------------------------------------------------------
# Aggregation state machinery
# ----------------------------------------------------------------------

#: Merge-friendly state per aggregate:
#:   SUM   -> float
#:   COUNT -> float (count)
#:   MIN   -> float or None
#:   MAX   -> float or None
#:   AVG   -> (sum, count)
#:   COUNT_DISTINCT -> DistinctState (compact sorted-unique value array)
AggState = object


class DistinctState:
    """Compact COUNT_DISTINCT partial state: a sorted-unique value array.

    This is what crosses node → coordinator instead of a Python
    frozenset: one int64/float64 numpy array per group, merged by
    ``np.union1d``-style concatenate+unique. ``coerce`` accepts legacy
    frozensets (and any iterable) so hand-written reference aggregators
    keep working against the same merge machinery.
    """

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray):
        self.values = values

    @classmethod
    def empty(cls) -> "DistinctState":
        return cls(np.empty(0, dtype=np.int64))

    @classmethod
    def coerce(cls, obj) -> "DistinctState":
        if isinstance(obj, DistinctState):
            return obj
        if isinstance(obj, np.ndarray):
            return cls(np.unique(obj))
        values = list(obj)
        if not values:
            return cls.empty()
        return cls(np.unique(np.asarray(values)))

    def union(self, other: "DistinctState") -> "DistinctState":
        if not len(other.values):
            return self
        if not len(self.values):
            return other
        return DistinctState(np.union1d(self.values, other.values))

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other) -> bool:
        mine = self.values
        theirs = (
            other.values
            if isinstance(other, DistinctState)
            else DistinctState.coerce(other).values
        )
        return len(mine) == len(theirs) and bool(np.all(mine == theirs))

    def __repr__(self) -> str:
        return f"DistinctState({self.values.tolist()!r})"


def initial_state(func: AggFunc) -> AggState:
    if func is AggFunc.SUM or func is AggFunc.COUNT:
        return 0.0
    if func is AggFunc.MIN or func is AggFunc.MAX:
        return None
    if func is AggFunc.COUNT_DISTINCT:
        return DistinctState.empty()
    return (0.0, 0.0)  # AVG


def merge_states(func: AggFunc, a: AggState, b: AggState) -> AggState:
    if func is AggFunc.SUM or func is AggFunc.COUNT:
        return float(a) + float(b)
    if func is AggFunc.MIN:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)
    if func is AggFunc.MAX:
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)
    if func is AggFunc.COUNT_DISTINCT:
        return DistinctState.coerce(a).union(DistinctState.coerce(b))
    return (a[0] + b[0], a[1] + b[1])  # AVG


def finalize_state(func: AggFunc, state: AggState) -> Optional[float]:
    if func is AggFunc.AVG:
        total, count = state
        return total / count if count else None
    if func is AggFunc.MIN or func is AggFunc.MAX:
        return state
    if func is AggFunc.COUNT_DISTINCT:
        return float(len(state))
    return float(state)


@dataclass
class _Block:
    """Array-form per-group states from one brick scan (or a compaction).

    ``keys`` is an ``(n_groups, n_key_cols)`` int64 array of distinct
    group keys in lexicographic order; ``states`` holds one array-form
    state per aggregation (see
    :func:`repro.cubrick.kernels.grouped_state_arrays`). Blocks append
    in O(1) during scans and merges; they are only consolidated when the
    block list grows past the compaction threshold, and once more at
    finalize.
    """

    keys: np.ndarray
    states: list


#: Consolidate pending blocks whenever this many accumulate, bounding
#: the memory a long merge chain (node → coordinator) can hold.
_COMPACT_THRESHOLD = 64


@dataclass
class PartialResult:
    """Per-group aggregate states from one partition (or a merge).

    Two accumulation paths coexist:

    * :meth:`accumulate_block` — the vectorised scan path: per-brick
      group keys and array-form states append as a :class:`_Block`
      without touching a Python dict. Blocks merge by concatenation and
      are consolidated lazily (dense re-encode + bincount/scatter
      kernels), so node→coordinator merges stay O(groups) array work.
    * :meth:`accumulate` — the row/scalar path: plain-Python states
      keyed by group tuple, used by ungrouped aggregates and by
      row-at-a-time reference aggregators in tests.
    """

    query: Query
    rows_scanned: int = 0
    bricks_scanned: int = 0
    #: Merge/consolidate telemetry: lazy consolidation passes run and
    #: array blocks folded by them, accumulated across merges so the
    #: coordinator's merge span can report the whole chain's work.
    compactions: int = 0
    blocks_consolidated: int = 0
    _blocks: list[_Block] = field(default_factory=list, repr=False)
    _groups: dict[tuple[int, ...], list[AggState]] = field(
        default_factory=dict, repr=False
    )

    @property
    def groups(self) -> dict[tuple[int, ...], list[AggState]]:
        """All per-group states as plain-Python state objects.

        Consolidates any pending array blocks first; the returned dict
        is a materialised *view* — mutate states through
        :meth:`accumulate`, not through this dict.
        """
        if not self._blocks:
            return self._groups
        out: dict[tuple[int, ...], list[AggState]] = {}
        block = self._consolidated()
        if block is not None:
            keys = [tuple(row) for row in block.keys.tolist()]
            for i, agg in enumerate(self.query.aggregations):
                states = _block_states_to_python(
                    agg.func, block.states[i], len(keys)
                )
                for key, state in zip(keys, states):
                    out.setdefault(key, []).append(state)
        for key, states in self._groups.items():
            existing = out.get(key)
            if existing is None:
                out[key] = list(states)
            else:
                for i, agg in enumerate(self.query.aggregations):
                    existing[i] = merge_states(
                        agg.func, existing[i], states[i]
                    )
        return out

    def accumulate(self, key: tuple[int, ...], states: list[AggState]) -> None:
        existing = self._groups.get(key)
        if existing is None:
            self._groups[key] = list(states)
        else:
            for i, agg in enumerate(self.query.aggregations):
                existing[i] = merge_states(agg.func, existing[i], states[i])

    def accumulate_block(self, keys: np.ndarray, states: list) -> None:
        """Append one brick scan's array-form states (the fast path)."""
        self._blocks.append(_Block(keys=keys, states=states))
        if len(self._blocks) >= _COMPACT_THRESHOLD:
            self._compact()

    def merge(self, other: "PartialResult") -> "PartialResult":
        if other.query.aggregations != self.query.aggregations:
            raise QueryError("cannot merge partials from different queries")
        if other.query.group_by != self.query.group_by:
            # Same aggregations but different grouping would merge states
            # keyed by incompatible tuples into silently wrong results.
            raise QueryError(
                "cannot merge partials with different group-bys: "
                f"{self.query.group_by} vs {other.query.group_by}"
            )
        self._blocks.extend(other._blocks)
        if len(self._blocks) >= _COMPACT_THRESHOLD:
            self._compact()
        for key, states in other._groups.items():
            self.accumulate(key, states)
        self.rows_scanned += other.rows_scanned
        self.bricks_scanned += other.bricks_scanned
        self.compactions += other.compactions
        self.blocks_consolidated += other.blocks_consolidated
        return self

    # ------------------------------------------------------------------
    # Block consolidation
    # ------------------------------------------------------------------

    def _compact(self) -> None:
        if len(self._blocks) > 1:
            self.compactions += 1
            self.blocks_consolidated += len(self._blocks)
            self._blocks = [_consolidate_blocks(self.query, self._blocks)]

    def _consolidated(self) -> Optional[_Block]:
        """All pending blocks merged into one canonical block."""
        if not self._blocks:
            return None
        self._compact()
        return self._blocks[0]

    def _dict_as_block(self) -> Optional[_Block]:
        """The row-path dict rendered as a block (grouped queries only)."""
        if not self._groups:
            return None
        n_cols = len(self.query.group_by)
        keys = np.asarray(
            [list(key) for key in self._groups], dtype=np.int64
        ).reshape(len(self._groups), n_cols)
        # Blocks are canonical (lex-sorted by key); dict insertion order
        # is whatever the row path happened to see first.
        order = np.lexsort(keys.T[::-1])
        keys = keys[order]
        values = list(self._groups.values())
        all_states = [values[j] for j in order.tolist()]
        states = [
            _python_states_to_block(agg.func, [s[i] for s in all_states])
            for i, agg in enumerate(self.query.aggregations)
        ]
        return _Block(keys=keys, states=states)

    def finalize(self) -> "QueryResult":
        columns = list(self.query.group_by) + [
            agg.label() for agg in self.query.aggregations
        ]
        if not self.query.group_by or (
            not self._blocks and len(self._groups) <= 1
        ):
            # Scalar queries (and tiny dict-only partials) take the
            # plain-Python path.
            rows = []
            for key in sorted(self.groups):
                states = self.groups[key]
                values = [
                    finalize_state(agg.func, state)
                    for agg, state in zip(self.query.aggregations, states)
                ]
                rows.append(tuple(key) + tuple(values))
        else:
            rows = self._finalize_grouped()
        rows = self._shape_rows(rows, columns)
        return QueryResult(
            columns=tuple(columns),
            rows=rows,
            rows_scanned=self.rows_scanned,
            bricks_scanned=self.bricks_scanned,
        )

    def _finalize_grouped(self) -> list[tuple]:
        """Vectorised finalize: one consolidation, then array→row zip."""
        blocks = list(self._blocks)
        dict_block = self._dict_as_block()
        if dict_block is not None:
            blocks.append(dict_block)
        if not blocks:
            return []
        if len(blocks) > 1:
            self.compactions += 1
            self.blocks_consolidated += len(blocks)
        block = _consolidate_blocks(self.query, blocks)
        n_groups = len(block.keys)
        key_columns = [
            block.keys[:, j].tolist() for j in range(block.keys.shape[1])
        ]
        value_columns = [
            _finalize_block_state(agg.func, state, n_groups)
            for agg, state in zip(self.query.aggregations, block.states)
        ]
        return list(zip(*key_columns, *value_columns))

    def _shape_rows(self, rows: list[tuple], columns: list[str]) -> list[tuple]:
        """Apply the query's HAVING / ORDER BY / LIMIT shaping.

        Only correct after *all* partials are merged — which is exactly
        where it runs: the coordinator finalizes once per query.
        """
        query = self.query
        for predicate in query.having:
            index = columns.index(predicate.column)
            rows = [r for r in rows if predicate.matches(r[index])]
        if query.order_by is not None:
            index = columns.index(query.order_by)
            # None values (empty MIN/AVG) sort last regardless of order.
            rows = sorted(
                rows,
                key=lambda r: (r[index] is None,
                               -r[index] if query.descending and
                               r[index] is not None else r[index]),
            )
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows


# ----------------------------------------------------------------------
# Block-state conversion and consolidation
# ----------------------------------------------------------------------


def _python_states_to_block(func: AggFunc, states: list):
    """Array-form block state from a list of plain-Python states."""
    if func is AggFunc.MIN or func is AggFunc.MAX:
        return np.asarray(
            [np.nan if s is None else float(s) for s in states],
            dtype=np.float64,
        )
    if func is AggFunc.AVG:
        return (
            np.asarray([float(s[0]) for s in states], dtype=np.float64),
            np.asarray([float(s[1]) for s in states], dtype=np.float64),
        )
    if func is AggFunc.COUNT_DISTINCT:
        owner_parts, value_parts = [], []
        for i, state in enumerate(states):
            values = DistinctState.coerce(state).values
            if len(values):
                owner_parts.append(np.full(len(values), i, dtype=np.int64))
                value_parts.append(values)
        if not owner_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return np.concatenate(owner_parts), np.concatenate(value_parts)
    return np.asarray([float(s) for s in states], dtype=np.float64)


def _block_states_to_python(func: AggFunc, state, n_groups: int) -> list:
    """Plain-Python states (one per group) from an array-form block state."""
    if func is AggFunc.MIN or func is AggFunc.MAX:
        return [None if np.isnan(v) else v for v in state.tolist()]
    if func is AggFunc.AVG:
        sums, counts = state
        return list(zip(sums.tolist(), counts.tolist()))
    if func is AggFunc.COUNT_DISTINCT:
        owners, values = state
        # owners is sorted ascending; slice each group's run of values
        # (already sorted-unique within the group).
        bounds = np.searchsorted(owners, np.arange(n_groups + 1))
        return [
            DistinctState(values[bounds[g]:bounds[g + 1]])
            for g in range(n_groups)
        ]
    return state.tolist()


def _finalize_block_state(func: AggFunc, state, n_groups: int) -> list:
    """Final per-group values (column form) from an array-form state."""
    if func is AggFunc.MIN or func is AggFunc.MAX:
        return [None if np.isnan(v) else v for v in state.tolist()]
    if func is AggFunc.AVG:
        sums, counts = state
        return [
            s / c if c else None
            for s, c in zip(sums.tolist(), counts.tolist())
        ]
    if func is AggFunc.COUNT_DISTINCT:
        owners, __ = state
        return np.bincount(owners, minlength=n_groups).astype(
            np.float64
        ).tolist()
    return state.tolist()


def _empty_block_state(func: AggFunc):
    if func is AggFunc.AVG:
        return (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64))
    if func is AggFunc.COUNT_DISTINCT:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
    return np.empty(0, dtype=np.float64)


def _consolidate_blocks(query: Query, blocks: list[_Block]) -> _Block:
    """Merge blocks into one canonical lex-sorted block.

    All block keys concatenate into one array, re-encode to a dense
    global group index, and every state array scatters into its global
    slots — SUM/COUNT/AVG by indexed add (keys are distinct within a
    block, so plain fancy-index ``+=`` is exact and runs in block
    order), MIN/MAX by ``np.fmin``/``np.fmax`` against a NaN-initialised
    accumulator (NaN = "no value yet", so dict-path ``None`` states pass
    through), COUNT_DISTINCT by remapping owners and re-deduplicating
    the pair arrays. Deterministic for a fixed block order.
    """
    from repro.cubrick import kernels

    blocks = [b for b in blocks if len(b.keys)]
    if not blocks:
        n_cols = max(len(query.group_by), 1)
        return _Block(
            keys=np.empty((0, n_cols), dtype=np.int64),
            states=[
                _empty_block_state(agg.func) for agg in query.aggregations
            ],
        )
    if len(blocks) == 1:
        return blocks[0]
    all_keys = np.concatenate([b.keys for b in blocks], axis=0)
    group_idx, unique_keys = kernels.encode_group_keys(
        [all_keys[:, j] for j in range(all_keys.shape[1])]
    )
    n_groups = len(unique_keys)
    offsets = np.cumsum([0] + [len(b.keys) for b in blocks])
    maps = [
        group_idx[offsets[i]:offsets[i + 1]] for i in range(len(blocks))
    ]
    states = []
    for i, agg in enumerate(query.aggregations):
        func = agg.func
        if func is AggFunc.MIN or func is AggFunc.MAX:
            combine = np.fmin if func is AggFunc.MIN else np.fmax
            out = np.full(n_groups, np.nan)
            for m, b in zip(maps, blocks):
                out[m] = combine(out[m], b.states[i])
            states.append(out)
        elif func is AggFunc.AVG:
            sums = np.zeros(n_groups)
            counts = np.zeros(n_groups)
            for m, b in zip(maps, blocks):
                s, c = b.states[i]
                sums[m] += s
                counts[m] += c
            states.append((sums, counts))
        elif func is AggFunc.COUNT_DISTINCT:
            owner_parts, value_parts = [], []
            for m, b in zip(maps, blocks):
                owners, values = b.states[i]
                if len(owners):
                    owner_parts.append(m[owners])
                    value_parts.append(values)
            if owner_parts:
                states.append(
                    kernels.group_distinct_pairs(
                        np.concatenate(owner_parts),
                        np.concatenate(value_parts),
                        n_groups,
                    )
                )
            else:
                states.append(_empty_block_state(func))
        else:  # SUM / COUNT
            out = np.zeros(n_groups)
            for m, b in zip(maps, blocks):
                out[m] += b.states[i]
            states.append(out)
    return _Block(keys=unique_keys, states=states)


@dataclass
class QueryResult:
    """Final materialised result, plus execution metadata.

    ``metadata`` carries the piggy-backed info the Cubrick proxy uses to
    keep its partition-count cache fresh (paper §IV-C strategy 4).
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    rows_scanned: int = 0
    bricks_scanned: int = 0
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Optional[float]:
        """Value of a single-row, single-aggregate result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} cols"
            )
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, float]]:
        return [dict(zip(self.columns, row)) for row in self.rows]
