"""Query model: filters, aggregations, partial and final results.

Cubrick serves low-latency OLAP aggregations: a query names a table,
a set of dimension filters, optional group-by dimensions and one or more
metric aggregations. Execution is distributed — every host holding a
partition computes a *partial result*, and the query coordinator merges
partials and materialises the final result (paper §I, §IV-C).

Partial aggregates are kept in merge-friendly state form (``avg`` is a
(sum, count) pair) so partials combine associatively regardless of how
rows were split across partitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import QueryError


class FilterOp(enum.Enum):
    EQ = "eq"
    IN = "in"
    BETWEEN = "between"


@dataclass(frozen=True)
class Filter:
    """A predicate over one dimension column."""

    dimension: str
    op: FilterOp
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.op is FilterOp.EQ and len(self.values) != 1:
            raise QueryError(f"EQ filter needs exactly one value: {self.values}")
        if self.op is FilterOp.IN and not self.values:
            raise QueryError("IN filter needs at least one value")
        if self.op is FilterOp.BETWEEN:
            if len(self.values) != 2:
                raise QueryError(f"BETWEEN filter needs (low, high): {self.values}")
            low, high = self.values
            if low > high:
                raise QueryError(f"BETWEEN range is empty: {self.values}")

    @classmethod
    def eq(cls, dimension: str, value: int) -> "Filter":
        return cls(dimension=dimension, op=FilterOp.EQ, values=(int(value),))

    @classmethod
    def isin(cls, dimension: str, values: list[int] | tuple[int, ...]) -> "Filter":
        return cls(dimension=dimension, op=FilterOp.IN,
                   values=tuple(int(v) for v in values))

    @classmethod
    def between(cls, dimension: str, low: int, high: int) -> "Filter":
        return cls(dimension=dimension, op=FilterOp.BETWEEN,
                   values=(int(low), int(high)))


class AggFunc(enum.Enum):
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    # Exact distinct count; the partial state is the value set, which
    # merges associatively across partitions like every other state.
    COUNT_DISTINCT = "count_distinct"


@dataclass(frozen=True)
class Aggregation:
    """One aggregate over a metric column."""

    func: AggFunc
    metric: str

    def label(self) -> str:
        return f"{self.func.value}({self.metric})"


class CompareOp(enum.Enum):
    GT = ">"
    GE = ">="
    LT = "<"
    LE = "<="
    EQ = "="


@dataclass(frozen=True)
class Having:
    """A post-aggregation predicate over a result column.

    ``column`` is an aggregation label (``"sum(clicks)"``) or a group
    column; evaluated after all partials are merged, alongside ORDER BY.
    """

    column: str
    op: CompareOp
    value: float

    def matches(self, actual) -> bool:
        if actual is None:
            return False
        if self.op is CompareOp.GT:
            return actual > self.value
        if self.op is CompareOp.GE:
            return actual >= self.value
        if self.op is CompareOp.LT:
            return actual < self.value
        if self.op is CompareOp.LE:
            return actual <= self.value
        return actual == self.value


@dataclass(frozen=True)
class Join:
    """An equi-join from the fact table to a *replicated* dimension table.

    Interactive analytic DBMSs replicate small, frequently-joined tables
    to every node so joins with large distributed tables never cross the
    network (paper §II-B). Joined columns are referenced in filters and
    group-bys with dotted names (``"dim_users.country"``); rows whose
    key has no match in the dimension table are dropped (inner join).
    """

    table: str  # the replicated dimension table
    fact_key: str  # join column on the fact table
    dim_key: str  # key column on the dimension table

    def __post_init__(self) -> None:
        if not self.table or not self.fact_key or not self.dim_key:
            raise QueryError("join needs table, fact_key and dim_key")

    def column_of(self, dotted: str) -> Optional[str]:
        """The dimension-table column a dotted reference names (or None)."""
        prefix = f"{self.table}."
        if dotted.startswith(prefix):
            return dotted[len(prefix):]
        return None


@dataclass(frozen=True)
class Query:
    """An OLAP aggregation query against one table (plus optional joins
    to replicated dimension tables)."""

    table: str
    aggregations: tuple[Aggregation, ...]
    group_by: tuple[str, ...] = ()
    filters: tuple[Filter, ...] = ()
    joins: tuple[Join, ...] = ()
    # Post-aggregation shaping, applied after the coordinator merges all
    # partials: HAVING predicates, then ORDER BY a group column or an
    # aggregation label ("sum(clicks)"), then LIMIT.
    having: tuple[Having, ...] = ()
    order_by: Optional[str] = None
    descending: bool = True
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.aggregations:
            raise QueryError("query needs at least one aggregation")
        join_tables = [j.table for j in self.joins]
        if len(join_tables) != len(set(join_tables)):
            raise QueryError("duplicate join table")
        if self.limit is not None and self.limit <= 0:
            raise QueryError(f"limit must be positive: {self.limit}")
        labels = {agg.label() for agg in self.aggregations}
        if self.order_by is not None:
            if self.order_by not in labels and self.order_by not in self.group_by:
                raise QueryError(
                    f"order_by {self.order_by!r} is neither a group column "
                    f"nor an aggregation label ({sorted(labels)})"
                )
        for predicate in self.having:
            if predicate.column not in labels and \
                    predicate.column not in self.group_by:
                raise QueryError(
                    f"having column {predicate.column!r} is neither a group "
                    f"column nor an aggregation label ({sorted(labels)})"
                )

    @classmethod
    def build(
        cls,
        table: str,
        aggregations: list[Aggregation],
        *,
        group_by: Optional[list[str]] = None,
        filters: Optional[list[Filter]] = None,
        joins: Optional[list[Join]] = None,
        having: Optional[list[Having]] = None,
        order_by: Optional[str] = None,
        descending: bool = True,
        limit: Optional[int] = None,
    ) -> "Query":
        return cls(
            table=table,
            aggregations=tuple(aggregations),
            group_by=tuple(group_by or ()),
            filters=tuple(filters or ()),
            joins=tuple(joins or ()),
            having=tuple(having or ()),
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    def joined_columns(self) -> set[str]:
        """Dotted dimension-table references used by this query."""
        names = set(self.group_by)
        names.update(f.dimension for f in self.filters)
        return {n for n in names if "." in n}


# ----------------------------------------------------------------------
# Aggregation state machinery
# ----------------------------------------------------------------------

#: Merge-friendly state per aggregate:
#:   SUM   -> float
#:   COUNT -> float (count)
#:   MIN   -> float or None
#:   MAX   -> float or None
#:   AVG   -> (sum, count)
AggState = object


def initial_state(func: AggFunc) -> AggState:
    if func is AggFunc.SUM or func is AggFunc.COUNT:
        return 0.0
    if func is AggFunc.MIN or func is AggFunc.MAX:
        return None
    if func is AggFunc.COUNT_DISTINCT:
        return frozenset()
    return (0.0, 0.0)  # AVG


def merge_states(func: AggFunc, a: AggState, b: AggState) -> AggState:
    if func is AggFunc.SUM or func is AggFunc.COUNT:
        return float(a) + float(b)
    if func is AggFunc.MIN:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)
    if func is AggFunc.MAX:
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)
    if func is AggFunc.COUNT_DISTINCT:
        return frozenset(a) | frozenset(b)
    return (a[0] + b[0], a[1] + b[1])  # AVG


def finalize_state(func: AggFunc, state: AggState) -> Optional[float]:
    if func is AggFunc.AVG:
        total, count = state
        return total / count if count else None
    if func is AggFunc.MIN or func is AggFunc.MAX:
        return state
    if func is AggFunc.COUNT_DISTINCT:
        return float(len(state))
    return float(state)


@dataclass
class PartialResult:
    """Per-group aggregate states from one partition (or a merge)."""

    query: Query
    groups: dict[tuple[int, ...], list[AggState]] = field(default_factory=dict)
    rows_scanned: int = 0
    bricks_scanned: int = 0

    def accumulate(self, key: tuple[int, ...], states: list[AggState]) -> None:
        existing = self.groups.get(key)
        if existing is None:
            self.groups[key] = list(states)
        else:
            for i, agg in enumerate(self.query.aggregations):
                existing[i] = merge_states(agg.func, existing[i], states[i])

    def merge(self, other: "PartialResult") -> "PartialResult":
        if other.query.aggregations != self.query.aggregations:
            raise QueryError("cannot merge partials from different queries")
        if other.query.group_by != self.query.group_by:
            # Same aggregations but different grouping would merge states
            # keyed by incompatible tuples into silently wrong results.
            raise QueryError(
                "cannot merge partials with different group-bys: "
                f"{self.query.group_by} vs {other.query.group_by}"
            )
        for key, states in other.groups.items():
            self.accumulate(key, states)
        self.rows_scanned += other.rows_scanned
        self.bricks_scanned += other.bricks_scanned
        return self

    def finalize(self) -> "QueryResult":
        rows = []
        for key in sorted(self.groups):
            states = self.groups[key]
            values = [
                finalize_state(agg.func, state)
                for agg, state in zip(self.query.aggregations, states)
            ]
            rows.append(tuple(key) + tuple(values))
        columns = list(self.query.group_by) + [
            agg.label() for agg in self.query.aggregations
        ]
        rows = self._shape_rows(rows, columns)
        return QueryResult(
            columns=tuple(columns),
            rows=rows,
            rows_scanned=self.rows_scanned,
            bricks_scanned=self.bricks_scanned,
        )

    def _shape_rows(self, rows: list[tuple], columns: list[str]) -> list[tuple]:
        """Apply the query's HAVING / ORDER BY / LIMIT shaping.

        Only correct after *all* partials are merged — which is exactly
        where it runs: the coordinator finalizes once per query.
        """
        query = self.query
        for predicate in query.having:
            index = columns.index(predicate.column)
            rows = [r for r in rows if predicate.matches(r[index])]
        if query.order_by is not None:
            index = columns.index(query.order_by)
            # None values (empty MIN/AVG) sort last regardless of order.
            rows = sorted(
                rows,
                key=lambda r: (r[index] is None,
                               -r[index] if query.descending and
                               r[index] is not None else r[index]),
            )
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows


@dataclass
class QueryResult:
    """Final materialised result, plus execution metadata.

    ``metadata`` carries the piggy-backed info the Cubrick proxy uses to
    keep its partition-count cache fresh (paper §IV-C strategy 4).
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    rows_scanned: int = 0
    bricks_scanned: int = 0
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Optional[float]:
        """Value of a single-row, single-aggregate result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} cols"
            )
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, float]]:
        return [dict(zip(self.columns, row)) for row in self.rows]
