"""Table schemas for Cubrick.

Cubrick is an OLAP store: tables declare *dimension* columns (integer
coded, used for filtering/grouping and for the Granular Partitioning
index) and *metric* columns (numeric, used in aggregations) — the model
described in the Cubrick paper [22] that this system builds on.

Table names may not contain ``#``: Cubrick reserves it as the internal
separator between a table name and its partition index
(``dim_users#0`` … ``dim_users#3`` — paper §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidTableNameError, SchemaError

PARTITION_SEPARATOR = "#"

#: Dimensions at or above this cardinality default to per-brick
#: dictionary encoding (entity-style columns: users, devices, ads).
#: Below it the raw int64 column is already compact enough that the
#: dictionary would cost more than the per-scan ``np.unique`` it saves.
DICT_ENCODE_THRESHOLD = 1024


def validate_table_name(name: str) -> str:
    """Validate and return a table name (no ``#``, non-empty)."""
    if not name:
        raise InvalidTableNameError("table name must be non-empty")
    if PARTITION_SEPARATOR in name:
        raise InvalidTableNameError(
            f"table name {name!r} contains reserved character "
            f"{PARTITION_SEPARATOR!r}"
        )
    return name


def partition_name(table: str, index: int) -> str:
    """The internal name of one table partition, e.g. ``dim_users#2``."""
    if index < 0:
        raise SchemaError(f"partition index must be non-negative: {index}")
    return f"{table}{PARTITION_SEPARATOR}{index}"


def split_partition_name(name: str) -> tuple[str, int]:
    """Inverse of :func:`partition_name`."""
    table, sep, index = name.rpartition(PARTITION_SEPARATOR)
    if not sep or not table:
        raise SchemaError(f"not a partition name: {name!r}")
    try:
        return table, int(index)
    except ValueError:
        raise SchemaError(f"not a partition name: {name!r}") from None


@dataclass(frozen=True)
class Dimension:
    """An integer-coded dimension column.

    ``cardinality`` bounds the value domain ``[0, cardinality)``;
    ``range_size`` is the Granular Partitioning bucket width on this
    dimension (every dimension is range-partitioned — paper §IV).
    """

    name: str
    cardinality: int
    range_size: int = 0  # 0 = one bucket spanning the whole domain
    #: Per-brick dictionary encoding: True/False forces it on/off, None
    #: defers to the cardinality heuristic (``DICT_ENCODE_THRESHOLD``).
    dict_encode: bool | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("dimension name must be non-empty")
        if self.cardinality <= 0:
            raise SchemaError(
                f"dimension {self.name}: cardinality must be positive, "
                f"got {self.cardinality}"
            )
        if self.range_size < 0:
            raise SchemaError(
                f"dimension {self.name}: range_size must be non-negative"
            )

    @property
    def should_dict_encode(self) -> bool:
        """Whether bricks keep a per-brick dictionary for this column."""
        if self.dict_encode is not None:
            return self.dict_encode
        return self.cardinality >= DICT_ENCODE_THRESHOLD

    @property
    def effective_range_size(self) -> int:
        return self.range_size if self.range_size > 0 else self.cardinality

    @property
    def bucket_count(self) -> int:
        """Number of Granular Partitioning buckets on this dimension."""
        size = self.effective_range_size
        return (self.cardinality + size - 1) // size

    def bucket_of(self, value: int) -> int:
        """The bucket index containing ``value``."""
        if not 0 <= value < self.cardinality:
            raise SchemaError(
                f"dimension {self.name}: value {value} outside "
                f"[0, {self.cardinality})"
            )
        return value // self.effective_range_size


@dataclass(frozen=True)
class Metric:
    """A numeric metric column (aggregated at query time)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("metric name must be non-empty")


@dataclass(frozen=True)
class TableSchema:
    """A Cubrick table: dimensions + metrics."""

    name: str
    dimensions: tuple[Dimension, ...]
    metrics: tuple[Metric, ...]

    def __post_init__(self) -> None:
        validate_table_name(self.name)
        if not self.dimensions:
            raise SchemaError(f"table {self.name}: at least one dimension required")
        # Metrics may be empty: replicated dimension tables (paper §II-B)
        # carry only key/attribute columns.
        names = [d.name for d in self.dimensions] + [m.name for m in self.metrics]
        if len(names) != len(set(names)):
            raise SchemaError(f"table {self.name}: duplicate column names")

    @classmethod
    def build(
        cls,
        name: str,
        dimensions: list[Dimension] | tuple[Dimension, ...],
        metrics: list[Metric] | tuple[Metric, ...],
    ) -> "TableSchema":
        return cls(name=name, dimensions=tuple(dimensions), metrics=tuple(metrics))

    @property
    def dimension_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def metric_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.metrics)

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.dimension_names + self.metric_names

    @property
    def encoded_dimension_names(self) -> tuple[str, ...]:
        """Dimensions bricks dictionary-encode (high-cardinality ones)."""
        return tuple(d.name for d in self.dimensions if d.should_dict_encode)

    def dimension(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name == name:
                return d
        raise SchemaError(f"table {self.name}: unknown dimension {name!r}")

    def has_dimension(self, name: str) -> bool:
        return any(d.name == name for d in self.dimensions)

    def has_metric(self, name: str) -> bool:
        return any(m.name == name for m in self.metrics)

    def to_dict(self) -> dict:
        """JSON-serialisable description of this schema."""
        return {
            "name": self.name,
            "dimensions": [
                {
                    "name": d.name,
                    "cardinality": d.cardinality,
                    "range_size": d.range_size,
                    "dict_encode": d.dict_encode,
                }
                for d in self.dimensions
            ],
            "metrics": [{"name": m.name} for m in self.metrics],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TableSchema":
        """Inverse of :meth:`to_dict`."""
        try:
            dimensions = [
                Dimension(
                    name=d["name"],
                    cardinality=int(d["cardinality"]),
                    range_size=int(d.get("range_size", 0)),
                    dict_encode=d.get("dict_encode"),
                )
                for d in payload["dimensions"]
            ]
            metrics = [Metric(name=m["name"]) for m in payload["metrics"]]
            return cls.build(payload["name"], dimensions, metrics)
        except (KeyError, TypeError) as exc:
            raise SchemaError(f"malformed schema payload: {exc}") from exc

    def validate_row(self, row: dict[str, float]) -> None:
        """Check a row has every column with in-domain dimension values."""
        for d in self.dimensions:
            if d.name not in row:
                raise SchemaError(f"row missing dimension {d.name!r}")
            value = row[d.name]
            if int(value) != value:
                raise SchemaError(
                    f"dimension {d.name!r} must be integer, got {value!r}"
                )
            if not 0 <= int(value) < d.cardinality:
                raise SchemaError(
                    f"dimension {d.name!r} value {value} outside "
                    f"[0, {d.cardinality})"
                )
        for m in self.metrics:
            if m.name not in row:
                raise SchemaError(f"row missing metric {m.name!r}")


@dataclass
class TableInfo:
    """Catalog entry: schema plus current partitioning state.

    ``replicated`` marks small dimension tables that are fully copied to
    every cluster node instead of being sharded, so joins against them
    resolve locally (paper §II-B).
    """

    schema: TableSchema
    num_partitions: int = 8  # the paper's starting point for new tables
    generation: int = 0  # bumped by every re-partition
    # Bumped by every ingest (bulk load or streaming-loader flush).
    # Result-cache keys embed it, so a write makes all previously cached
    # answers for the table unreachable (repro.sched.cache).
    ingest_generation: int = 0
    replicated: bool = False
    # Online reshard state (repro.autoscale.reshard). The *serving*
    # layout may live under a generation-tagged physical alias of the
    # logical name ("" = the logical name itself); while a staged
    # reshard is in flight, ``pending_physical``/``pending_partitions``
    # describe the layout being built. Queries keep routing to the
    # serving layout until the cutover flips these fields atomically.
    serving_physical: str = ""
    pending_physical: str = ""
    pending_partitions: int = 0

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise SchemaError(
                f"table {self.schema.name}: num_partitions must be positive"
            )

    @property
    def physical_table(self) -> str:
        """Physical name the serving layout is registered under."""
        return self.serving_physical or self.schema.name

    @property
    def resharding(self) -> bool:
        """Whether a staged reshard is currently in flight."""
        return bool(self.pending_physical)

    def bump_ingest(self) -> int:
        """Record one ingest; returns the new ingestion generation."""
        self.ingest_generation += 1
        return self.ingest_generation


@dataclass
class Catalog:
    """The cluster-wide table catalog."""

    tables: dict[str, TableInfo] = field(default_factory=dict)

    def create(self, schema: TableSchema, *, num_partitions: int = 8,
               replicated: bool = False) -> TableInfo:
        from repro.errors import TableAlreadyExistsError

        if schema.name in self.tables:
            raise TableAlreadyExistsError(f"table {schema.name} already exists")
        info = TableInfo(
            schema=schema, num_partitions=num_partitions, replicated=replicated
        )
        self.tables[schema.name] = info
        return info

    def get(self, name: str) -> TableInfo:
        from repro.errors import TableNotFoundError

        try:
            return self.tables[name]
        except KeyError:
            pass
        # Generation aliases (``table@gN``) are physical layouts of a
        # logical table: they share its schema and catalog entry.
        from repro.cubrick.sharding import logical_table

        logical = logical_table(name)
        if logical != name and logical in self.tables:
            return self.tables[logical]
        raise TableNotFoundError(f"unknown table: {name}") from None

    def drop(self, name: str) -> None:
        from repro.errors import TableNotFoundError

        if name not in self.tables:
            raise TableNotFoundError(f"unknown table: {name}")
        del self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def table_names(self) -> list[str]:
        return sorted(self.tables)
