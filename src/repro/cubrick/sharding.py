"""Mapping table partitions to SM shards (paper §IV-A).

SM exposes a flat shard space ``[0..maxShards)``; Cubrick must map every
table partition (``table#idx``) into it. Three mappers are implemented:

* :class:`NaiveHashMapper` — ``hash(f"{table}#{idx}") % maxShards``.
  Simple, but partitions of the *same* table can collide onto one shard,
  permanently doubling one server's work for that table (the paper's
  ``test_table`` example).

* :class:`MonotonicHashMapper` — Cubrick's production fix: hash only
  partition zero and monotonically increment for the remaining
  partitions. Same-table collisions are impossible while tables have at
  most ``maxShards`` partitions.

* :class:`ReplicaMapper` — the alternative (used by other Facebook
  systems, e.g. Scuba): map each table to a *single* shard and store the
  partitions as that shard's replicas. Avoids shard collisions entirely,
  but forces every table to have exactly ``replication_factor + 1``
  partitions and breaks the replicas-hold-identical-data invariant.

The module also provides the collision taxonomy of §IV-A1: *partition
collisions* (different application keys on one shard — expected and
unavoidable) and *shard collisions* (shards of one table co-located on
one host — resolved by SM migrating one of them away; Cubrick raises a
non-retryable error to refuse migrations that would create one).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Protocol

from repro.cubrick.schema import partition_name
from repro.errors import ConfigurationError


def stable_hash(key: str) -> int:
    """Deterministic 64-bit string hash (process-independent)."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


# ----------------------------------------------------------------------
# Generation-tagged shard maps (online resharding)
# ----------------------------------------------------------------------

#: Separator between a logical table name and its layout generation tag.
#: Table names only forbid ``#`` (the partition separator), so the tag
#: stays a legal table name and the whole registration/attach/execute
#: machinery works on it unchanged.
GENERATION_SEPARATOR = "@g"


def generation_alias(table: str, generation: int) -> str:
    """Physical table name of one layout generation.

    Generation 0 is the layout created with the table and keeps the
    plain logical name; later generations (produced by online reshards)
    are registered under ``table@g<n>``. Distinct physical names mean a
    staging layout never collides with the serving one — in the shard
    directory, in node partition storage, or in the same-table
    co-location refusal check.
    """
    if generation < 0:
        raise ConfigurationError(f"generation must be non-negative: {generation}")
    if generation == 0:
        return table
    return f"{table}{GENERATION_SEPARATOR}{generation}"


def logical_table(physical: str) -> str:
    """Logical table name behind a (possibly generation-tagged) alias."""
    base, sep, tag = physical.rpartition(GENERATION_SEPARATOR)
    if sep and base and tag.isdigit():
        return base
    return physical


_JUMP_MULTIPLIER = 2862933555777941757
_UINT64_MASK = 0xFFFFFFFFFFFFFFFF


def jump_consistent_hash(key: int, num_buckets: int) -> int:
    """Jump consistent hash (Lamping & Veach, 2014).

    Maps a 64-bit key to ``[0, num_buckets)`` such that growing the
    bucket count from n to n+1 remaps only ~1/(n+1) of the keys — the
    property the paper says Cubrick would need "in case changing the
    maximum number of shards had to be supported" (§IV-A).
    """
    if num_buckets <= 0:
        raise ConfigurationError(f"num_buckets must be positive: {num_buckets}")
    key &= _UINT64_MASK
    b, j = -1, 0
    while j < num_buckets:
        b = j
        key = (key * _JUMP_MULTIPLIER + 1) & _UINT64_MASK
        j = int((b + 1) * (1 << 31) / ((key >> 33) + 1))
    return b


class ShardMapper(Protocol):
    """Maps (table, partition index) to an SM shard id."""

    max_shards: int

    def shard_of(self, table: str, partition_index: int) -> int:
        """Shard id for one table partition."""
        ...

    def shards_of(self, table: str, num_partitions: int) -> list[int]:
        """Shard ids for all partitions of a table."""
        ...


@dataclass(frozen=True)
class NaiveHashMapper:
    """Hash every partition name independently (collision-prone)."""

    max_shards: int = 100_000

    def __post_init__(self) -> None:
        if self.max_shards <= 0:
            raise ConfigurationError(f"max_shards must be positive: {self.max_shards}")

    def shard_of(self, table: str, partition_index: int) -> int:
        return stable_hash(partition_name(table, partition_index)) % self.max_shards

    def shards_of(self, table: str, num_partitions: int) -> list[int]:
        return [self.shard_of(table, i) for i in range(num_partitions)]


@dataclass(frozen=True)
class MonotonicHashMapper:
    """Hash partition 0, monotonically increment the rest (production)."""

    max_shards: int = 100_000

    def __post_init__(self) -> None:
        if self.max_shards <= 0:
            raise ConfigurationError(f"max_shards must be positive: {self.max_shards}")

    def shard_of(self, table: str, partition_index: int) -> int:
        base = stable_hash(partition_name(table, 0)) % self.max_shards
        return (base + partition_index) % self.max_shards

    def shards_of(self, table: str, num_partitions: int) -> list[int]:
        base = stable_hash(partition_name(table, 0)) % self.max_shards
        return [(base + i) % self.max_shards for i in range(num_partitions)]


@dataclass(frozen=True)
class ConsistentHashMapper:
    """Monotonic mapping whose base comes from a consistent hash.

    Behaves like :class:`MonotonicHashMapper` (partition 0 anchors the
    table, remaining partitions increment — no same-table collisions)
    but derives the anchor with jump consistent hashing, so growing
    ``max_shards`` from n to m remaps only ~(m-n)/m of the tables
    instead of nearly all of them. This is the variant the paper says
    Cubrick would adopt if the shard-space size ever had to change.
    """

    max_shards: int = 100_000

    def __post_init__(self) -> None:
        if self.max_shards <= 0:
            raise ConfigurationError(f"max_shards must be positive: {self.max_shards}")

    def shard_of(self, table: str, partition_index: int) -> int:
        base = jump_consistent_hash(stable_hash(table), self.max_shards)
        return (base + partition_index) % self.max_shards

    def shards_of(self, table: str, num_partitions: int) -> list[int]:
        base = jump_consistent_hash(stable_hash(table), self.max_shards)
        return [(base + i) % self.max_shards for i in range(num_partitions)]


@dataclass(frozen=True)
class ReplicaMapper:
    """Map a table to one shard; partitions become shard replicas.

    Limitations (paper §IV-A "Other approaches"): every table must have
    exactly ``replicas`` partitions, and the replicas of the shard no
    longer hold identical data — which forecloses reusing SM features
    that assume replica equivalence.
    """

    max_shards: int = 100_000
    replicas: int = 8

    def __post_init__(self) -> None:
        if self.max_shards <= 0:
            raise ConfigurationError(f"max_shards must be positive: {self.max_shards}")
        if self.replicas <= 0:
            raise ConfigurationError(f"replicas must be positive: {self.replicas}")

    def shard_of(self, table: str, partition_index: int) -> int:
        if not 0 <= partition_index < self.replicas:
            raise ConfigurationError(
                f"replica mapping fixes partitions at {self.replicas}; "
                f"index {partition_index} is out of range"
            )
        return stable_hash(table) % self.max_shards

    def shards_of(self, table: str, num_partitions: int) -> list[int]:
        if num_partitions != self.replicas:
            raise ConfigurationError(
                f"replica mapping requires exactly {self.replicas} partitions, "
                f"got {num_partitions}"
            )
        return [self.shard_of(table, i) for i in range(num_partitions)]


# ----------------------------------------------------------------------
# Shard directory: which table partitions live inside which shard
# ----------------------------------------------------------------------


class ShardDirectory:
    """Registry of the table-partition → shard mapping for one service.

    Partition collisions (different tables on one shard) are expected
    and recorded — those partitions simply travel together on migration
    (paper §IV-A1). The directory is what a Cubrick node consults in
    ``addShard`` to know which partitions it must create/copy.
    """

    def __init__(self, mapper: ShardMapper):
        self.mapper = mapper
        self._shard_contents: dict[int, list[tuple[str, int]]] = {}
        self._table_shards: dict[str, list[int]] = {}

    def register_table(self, table: str, num_partitions: int) -> list[int]:
        """Map a new table's partitions to shards; returns the shard ids."""
        if table in self._table_shards:
            raise ConfigurationError(f"table {table} already registered")
        shards = self.mapper.shards_of(table, num_partitions)
        self._table_shards[table] = shards
        for index, shard in enumerate(shards):
            self._shard_contents.setdefault(shard, []).append((table, index))
        return shards

    def unregister_table(self, table: str) -> list[int]:
        """Remove a table; returns the shards it occupied."""
        shards = self._table_shards.pop(table, None)
        if shards is None:
            raise ConfigurationError(f"table {table} not registered")
        for shard in set(shards):
            contents = self._shard_contents.get(shard, [])
            contents[:] = [(t, i) for t, i in contents if t != table]
            if not contents:
                self._shard_contents.pop(shard, None)
        return shards

    def contents(self, shard_id: int) -> list[tuple[str, int]]:
        """The (table, partition index) pairs stored in one shard."""
        return list(self._shard_contents.get(shard_id, []))

    def shards_for_table(self, table: str) -> list[int]:
        shards = self._table_shards.get(table)
        if shards is None:
            raise ConfigurationError(f"table {table} not registered")
        return list(shards)

    def shard_for_partition(self, table: str, partition_index: int) -> int:
        shards = self.shards_for_table(table)
        if not 0 <= partition_index < len(shards):
            raise ConfigurationError(
                f"table {table} has {len(shards)} partitions; "
                f"index {partition_index} out of range"
            )
        return shards[partition_index]

    def tables(self) -> list[str]:
        return sorted(self._table_shards)

    def occupied_shards(self) -> list[int]:
        return sorted(self._shard_contents)


# ----------------------------------------------------------------------
# Collision analysis (paper §IV-A1, Figure 4a)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CollisionReport:
    """Collision census over a deployment of tables.

    Fractions are per-table: a table counts once no matter how many of
    its partitions collide.
    """

    tables: int
    same_table_partition_collisions: int  # same table, same shard
    cross_table_partition_collisions: int  # different tables, same shard
    shard_collisions: int  # same table, different shards, same host

    @property
    def same_table_fraction(self) -> float:
        return self._fraction(self.same_table_partition_collisions)

    @property
    def cross_table_fraction(self) -> float:
        return self._fraction(self.cross_table_partition_collisions)

    @property
    def shard_collision_fraction(self) -> float:
        return self._fraction(self.shard_collisions)

    def _fraction(self, count: int) -> float:
        return count / self.tables if self.tables else 0.0


def analyze_collisions(
    table_partitions: Mapping[str, int],
    mapper: ShardMapper,
    shard_to_host: Mapping[int, str] | None = None,
) -> CollisionReport:
    """Census of partition and shard collisions for a set of tables.

    ``table_partitions`` maps table name → number of partitions;
    ``shard_to_host`` (optional) enables the shard-collision check
    (same table's shards co-located on one host by SM's placement).
    """
    shard_tables: dict[int, set[str]] = {}
    table_shards: dict[str, list[int]] = {}
    same_table = 0
    for table, count in table_partitions.items():
        shards = mapper.shards_of(table, count)
        table_shards[table] = shards
        if len(set(shards)) != len(shards):
            same_table += 1
        for shard in set(shards):
            shard_tables.setdefault(shard, set()).add(table)

    cross_table_tables: set[str] = set()
    for tables_on_shard in shard_tables.values():
        if len(tables_on_shard) > 1:
            cross_table_tables.update(tables_on_shard)

    shard_collision_tables = 0
    if shard_to_host is not None:
        for table, shards in table_shards.items():
            hosts_seen: set[str] = set()
            collided = False
            for shard in set(shards):
                host = shard_to_host.get(shard)
                if host is None:
                    continue
                if host in hosts_seen:
                    collided = True
                    break
                hosts_seen.add(host)
            if collided:
                shard_collision_tables += 1

    return CollisionReport(
        tables=len(table_partitions),
        same_table_partition_collisions=same_table,
        cross_table_partition_collisions=len(cross_table_tables),
        shard_collisions=shard_collision_tables,
    )
