"""A small SQL dialect for Cubrick queries.

Cubrick powers dashboards and interactive data-exploration tools; this
module provides the query surface those tools would speak. The dialect
covers exactly what the engine executes:

.. code-block:: sql

    SELECT sum(clicks), count(clicks)
    FROM events
    JOIN dim_users ON events.user_id = dim_users.user_id
    WHERE day BETWEEN 0 AND 6 AND dim_users.country IN (1, 2, 3)
    GROUP BY dim_users.country
    ORDER BY sum(clicks) DESC
    LIMIT 5

This module is the catalog-less compatibility surface over the full
:mod:`repro.sql` frontend (hand-written lexer, recursive-descent parser,
typed AST). :func:`parse_query` accepts everything the legacy dialect
did plus the frontend's richer predicates (``!=``, ``<``, ``<=``, ``>``,
``>=``, ``NOT IN``); predicates that need schema knowledge to lower
(``OR``, ``NOT BETWEEN``, general ``NOT``) raise and point the caller at
the catalog-aware planner behind ``deployment.sql``. All errors are
:class:`~repro.errors.SqlError`, a :class:`~repro.errors.QueryError`
subclass, so existing callers keep working unchanged.

``render_query`` is unchanged from the legacy dialect (with a ``NOT
IN`` spelling added) — the scheduler's result cache keys on its output,
and ``parse_query(render_query(q)) == q`` holds for every expressible
query (verified by a property test).
"""

from __future__ import annotations

from repro.cubrick.query import FilterOp, Query
from repro.sql.parser import parse
from repro.sql.planner import compile_statement


def render_query(query: Query) -> str:
    """Render a :class:`Query` back to the SQL dialect.

    ``parse_query(render_query(q))`` reproduces ``q`` for every query the
    dialect can express (verified by a property test).
    """
    parts = ["SELECT "]
    parts.append(", ".join(
        f"{agg.func.value}({agg.metric})" for agg in query.aggregations
    ))
    parts.append(f" FROM {query.table}")
    for join in query.joins:
        parts.append(
            f" JOIN {join.table} ON {query.table}.{join.fact_key} = "
            f"{join.table}.{join.dim_key}"
        )
    if query.filters:
        clauses = []
        for flt in query.filters:
            if flt.op is FilterOp.EQ:
                clauses.append(f"{flt.dimension} = {flt.values[0]}")
            elif flt.op is FilterOp.BETWEEN:
                clauses.append(
                    f"{flt.dimension} BETWEEN {flt.values[0]} AND "
                    f"{flt.values[1]}"
                )
            elif flt.op is FilterOp.NOT_IN:
                values = ", ".join(str(v) for v in flt.values)
                clauses.append(f"{flt.dimension} NOT IN ({values})")
            else:
                values = ", ".join(str(v) for v in flt.values)
                clauses.append(f"{flt.dimension} IN ({values})")
        parts.append(" WHERE " + " AND ".join(clauses))
    if query.group_by:
        parts.append(" GROUP BY " + ", ".join(query.group_by))
    if query.having:
        clauses = [
            f"{h.column} {h.op.value} {_render_number(h.value)}"
            for h in query.having
        ]
        parts.append(" HAVING " + " AND ".join(clauses))
    if query.order_by is not None:
        direction = "DESC" if query.descending else "ASC"
        parts.append(f" ORDER BY {query.order_by} {direction}")
    if query.limit is not None:
        parts.append(f" LIMIT {query.limit}")
    return "".join(parts)


def _render_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def parse_query(sql: str) -> Query:
    """Parse a SQL string into a :class:`~repro.cubrick.query.Query`.

    >>> query = parse_query(
    ...     "SELECT sum(clicks) FROM events WHERE day BETWEEN 0 AND 6"
    ... )
    >>> query.table
    'events'
    """
    return compile_statement(parse(sql), source=sql)
