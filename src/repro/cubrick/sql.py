"""A small SQL dialect for Cubrick queries.

Cubrick powers dashboards and interactive data-exploration tools; this
module provides the query surface those tools would speak. The dialect
covers exactly what the engine executes:

.. code-block:: sql

    SELECT sum(clicks), count(clicks)
    FROM events
    JOIN dim_users ON events.user_id = dim_users.user_id
    WHERE day BETWEEN 0 AND 6 AND dim_users.country IN (1, 2, 3)
    GROUP BY dim_users.country
    ORDER BY sum(clicks) DESC
    LIMIT 5

Supported: ``sum/count/min/max/avg/count_distinct`` aggregates; ``=``,
``IN (...)`` and ``BETWEEN ... AND ...`` predicates joined by ``AND``;
one or more ``JOIN ... ON`` clauses against replicated dimension tables;
``GROUP BY``, ``HAVING`` (``> >= < <= =`` comparisons over result
columns, joined by ``AND``), ``ORDER BY ... [ASC|DESC]``, ``LIMIT``.
Keywords are case-insensitive; column names are not.
"""

from __future__ import annotations

import re

from repro.cubrick.query import (
    AggFunc,
    Aggregation,
    CompareOp,
    Filter,
    FilterOp,
    Having,
    Join,
    Query,
)
from repro.errors import QueryError

_TOKEN_RE = re.compile(
    r"""
    \s*(
        \bSELECT\b|\bFROM\b|\bJOIN\b|\bON\b|\bWHERE\b|\bGROUP\s+BY\b|
        \bHAVING\b|\bORDER\s+BY\b|\bLIMIT\b|\bAND\b|\bBETWEEN\b|\bIN\b|
        \bASC\b|\bDESC\b|
        [A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?  # (dotted) name
        |-?\d+(?:\.\d+)?   # number
        |>=|<=|[(),=*<>]
    )
    """,
    re.IGNORECASE | re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "join", "on", "where", "group by", "having",
    "order by", "limit", "and", "between", "in", "asc", "desc",
}


def _tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise QueryError(
                f"SQL syntax error near {text[position:position + 20]!r}"
            )
        token = match.group(1)
        normalized = re.sub(r"\s+", " ", token).lower()
        tokens.append(normalized if normalized in _KEYWORDS else token)
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of SQL input")
        self._index += 1
        return token

    def _expect(self, expected: str) -> str:
        token = self._next()
        if token != expected:
            raise QueryError(f"expected {expected!r}, got {token!r}")
        return token

    def _accept(self, expected: str) -> bool:
        if self._peek() == expected:
            self._index += 1
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Query:
        self._expect("select")
        aggregations = self._aggregation_list()
        self._expect("from")
        table = self._name()
        joins = []
        while self._accept("join"):
            joins.append(self._join(table))
        filters = []
        if self._accept("where"):
            filters = self._predicates()
        group_by = []
        if self._accept("group by"):
            group_by = self._name_list()
        having = []
        if self._accept("having"):
            having = [self._having_predicate()]
            while self._accept("and"):
                having.append(self._having_predicate())
        order_by = None
        descending = True
        if self._accept("order by"):
            order_by = self._order_target()
            if self._accept("asc"):
                descending = False
            elif self._accept("desc"):
                descending = True
        limit = None
        if self._accept("limit"):
            limit = int(self._number())
        if self._peek() is not None:
            raise QueryError(f"unexpected trailing token {self._peek()!r}")
        return Query.build(
            table,
            aggregations,
            group_by=group_by,
            filters=filters,
            joins=joins,
            having=having,
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    def _aggregation_list(self) -> list[Aggregation]:
        aggregations = [self._aggregation()]
        while self._accept(","):
            aggregations.append(self._aggregation())
        return aggregations

    def _aggregation(self) -> Aggregation:
        name = self._next()
        try:
            func = AggFunc(name.lower())
        except ValueError:
            raise QueryError(f"unknown aggregate function {name!r}") from None
        self._expect("(")
        column = self._next()
        if column == "*":
            if func is not AggFunc.COUNT:
                raise QueryError(f"{name}(*) is only valid for count")
            column = "*"
        self._expect(")")
        return Aggregation(func, column)

    def _join(self, fact_table: str) -> Join:
        dim_table = self._name()
        self._expect("on")
        left = self._name()
        self._expect("=")
        right = self._name()
        fact_key = dim_key = None
        for side in (left, right):
            table, __, column = side.partition(".")
            if not column:
                raise QueryError(
                    f"join condition must use table.column, got {side!r}"
                )
            if table == fact_table:
                fact_key = column
            elif table == dim_table:
                dim_key = column
            else:
                raise QueryError(
                    f"join condition references unknown table {table!r}"
                )
        if fact_key is None or dim_key is None:
            raise QueryError(
                "join condition must relate the fact and dimension tables"
            )
        return Join(table=dim_table, fact_key=fact_key, dim_key=dim_key)

    def _predicates(self) -> list[Filter]:
        filters = [self._predicate()]
        while self._accept("and"):
            filters.append(self._predicate())
        return filters

    def _predicate(self) -> Filter:
        column = self._name()
        token = self._next()
        if token == "=":
            return Filter.eq(column, int(self._number()))
        if token == "between":
            low = int(self._number())
            self._expect("and")
            high = int(self._number())
            return Filter.between(column, low, high)
        if token == "in":
            self._expect("(")
            values = [int(self._number())]
            while self._accept(","):
                values.append(int(self._number()))
            self._expect(")")
            return Filter.isin(column, values)
        raise QueryError(f"unsupported predicate operator {token!r}")

    def _having_predicate(self) -> Having:
        column = self._order_target()  # same grammar: name or agg label
        token = self._next()
        try:
            op = CompareOp(token)
        except ValueError:
            raise QueryError(
                f"unsupported HAVING operator {token!r}"
            ) from None
        return Having(column=column, op=op, value=self._number())

    def _order_target(self) -> str:
        name = self._next()
        # Aggregation label form: func ( column )
        if self._accept("("):
            column = self._next()
            self._expect(")")
            return f"{name.lower()}({column})"
        return name

    def _name_list(self) -> list[str]:
        names = [self._name()]
        while self._accept(","):
            names.append(self._name())
        return names

    def _name(self) -> str:
        token = self._next()
        if token in _KEYWORDS or not re.match(r"^[A-Za-z_]", token):
            raise QueryError(f"expected a name, got {token!r}")
        return token

    def _number(self) -> float:
        token = self._next()
        try:
            return float(token)
        except ValueError:
            raise QueryError(f"expected a number, got {token!r}") from None


def render_query(query: Query) -> str:
    """Render a :class:`Query` back to the SQL dialect.

    ``parse_query(render_query(q))`` reproduces ``q`` for every query the
    dialect can express (verified by a property test).
    """
    parts = ["SELECT "]
    parts.append(", ".join(
        f"{agg.func.value}({agg.metric})" for agg in query.aggregations
    ))
    parts.append(f" FROM {query.table}")
    for join in query.joins:
        parts.append(
            f" JOIN {join.table} ON {query.table}.{join.fact_key} = "
            f"{join.table}.{join.dim_key}"
        )
    if query.filters:
        clauses = []
        for flt in query.filters:
            if flt.op is FilterOp.EQ:
                clauses.append(f"{flt.dimension} = {flt.values[0]}")
            elif flt.op is FilterOp.BETWEEN:
                clauses.append(
                    f"{flt.dimension} BETWEEN {flt.values[0]} AND "
                    f"{flt.values[1]}"
                )
            else:
                values = ", ".join(str(v) for v in flt.values)
                clauses.append(f"{flt.dimension} IN ({values})")
        parts.append(" WHERE " + " AND ".join(clauses))
    if query.group_by:
        parts.append(" GROUP BY " + ", ".join(query.group_by))
    if query.having:
        clauses = [
            f"{h.column} {h.op.value} {_render_number(h.value)}"
            for h in query.having
        ]
        parts.append(" HAVING " + " AND ".join(clauses))
    if query.order_by is not None:
        direction = "DESC" if query.descending else "ASC"
        parts.append(f" ORDER BY {query.order_by} {direction}")
    if query.limit is not None:
        parts.append(f" LIMIT {query.limit}")
    return "".join(parts)


def _render_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def parse_query(sql: str) -> Query:
    """Parse a SQL string into a :class:`~repro.cubrick.query.Query`.

    >>> query = parse_query(
    ...     "SELECT sum(clicks) FROM events WHERE day BETWEEN 0 AND 6"
    ... )
    >>> query.table
    'events'
    """
    tokens = _tokenize(sql)
    if not tokens:
        raise QueryError("empty SQL input")
    return _Parser(tokens).parse()
