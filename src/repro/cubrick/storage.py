"""Partition storage: columnar execution over bricks.

One :class:`PartitionStorage` holds the rows of a single table partition
(``table#idx``) on one host, organised into bricks by the Granular
Partitioning index. Query execution is fully vectorised: filters become
boolean masks, composite group keys are encoded into a single int64 code
per row, and the per-group aggregates run through the bincount/reduceat
kernels of :mod:`repro.cubrick.kernels` — no per-group Python loop over
row data. Every touched brick's hotness counter is bumped (feeding
adaptive compression — paper §IV-F2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.cubrick.bricks import DIMENSION_DTYPE, METRIC_DTYPE, Brick
from repro.cubrick.granular import GranularIndex
from repro.cubrick.kernels import (
    EncodedColumn,
    encode_group_keys,
    group_counts,
    grouped_state_arrays,
    scalar_state,
)
from repro.cubrick.query import (
    AggFunc,
    Filter,
    FilterOp,
    PartialResult,
    Query,
)
from repro.cubrick.schema import TableSchema
from repro.errors import CubrickError, QueryError, SchemaError

if TYPE_CHECKING:
    from repro.obs import Observability


class PartitionStorage:
    """In-memory columnar storage for one table partition.

    ``obs`` is optional: partitions created in unit tests carry no
    telemetry, while partitions created by a node share the deployment's
    :class:`~repro.obs.Observability`. Instruments are labelled by table
    (not partition) to keep cardinality bounded.
    """

    def __init__(
        self,
        schema: TableSchema,
        partition_index: int,
        obs: "Optional[Observability]" = None,
    ):
        self.schema = schema
        self.partition_index = partition_index
        self.index = GranularIndex(schema)
        self._bricks: dict[int, Brick] = {}
        self._encoded_dims = frozenset(schema.encoded_dimension_names)
        self._rows = 0
        if obs is not None:
            metrics = obs.metrics
            self._scanned_counter = metrics.counter(
                "cubrick.storage.bricks_scanned", table=schema.name
            )
            self._pruned_counter = metrics.counter(
                "cubrick.storage.bricks_pruned", table=schema.name
            )
            self._rows_scanned_counter = metrics.counter(
                "cubrick.storage.rows_scanned", table=schema.name
            )
            self._rows_inserted_counter = metrics.counter(
                "cubrick.storage.rows_inserted", table=schema.name
            )
        else:
            self._scanned_counter = None
            self._pruned_counter = None
            self._rows_scanned_counter = None
            self._rows_inserted_counter = None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def insert(self, row: dict[str, float]) -> int:
        """Insert one validated row; returns the target brick id."""
        self.schema.validate_row(row)
        brick_id = self.index.brick_of(row)
        brick = self._bricks.get(brick_id)
        if brick is None:
            brick = Brick(
                brick_id,
                self.schema.dimension_names,
                self.schema.metric_names,
                encoded_dimensions=self.schema.encoded_dimension_names,
            )
            self._bricks[brick_id] = brick
        brick.append(row)
        self._rows += 1
        if self._rows_inserted_counter is not None:
            self._rows_inserted_counter.inc()
        return brick_id

    def insert_many(self, rows: Iterable[dict[str, float]]) -> int:
        """Insert many rows; returns how many were inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def insert_columns(
        self, columns: dict[str, np.ndarray], *, validated: bool = False
    ) -> int:
        """Vectorised bulk load from column arrays (the fast path).

        All schema columns must be present with equal lengths; dimension
        domains are validated vectorised, rows are routed to bricks in
        one pass (the ingestion-rate story of the Cubrick paper [22]).
        ``validated=True`` skips the per-column domain checks for callers
        that already validated every row (the streaming loader validates
        at append time — re-checking on flush would double the cost).
        """
        lengths = {
            name: len(np.asarray(columns[name]))
            for name in self.schema.column_names
            if name in columns
        }
        missing = set(self.schema.column_names) - set(lengths)
        if missing:
            raise CubrickError(f"missing columns in bulk load: {sorted(missing)}")
        if len(set(lengths.values())) > 1:
            raise CubrickError(f"ragged column lengths: {lengths}")
        n = next(iter(lengths.values()))
        if n == 0:
            return 0
        if validated:
            dim_arrays = {
                d.name: np.asarray(columns[d.name], dtype=DIMENSION_DTYPE)
                for d in self.schema.dimensions
            }
        else:
            dim_arrays = {
                d.name: self._validated_dimension_column(d, columns[d.name])
                for d in self.schema.dimensions
            }
        metric_arrays = {
            m.name: np.asarray(columns[m.name], dtype=np.float64)
            for m in self.schema.metrics
        }
        brick_ids = self.index.bricks_of_columns(dim_arrays)
        order = np.argsort(brick_ids, kind="stable")
        sorted_ids = brick_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for start, end in zip(starts, ends):
            brick_id = int(sorted_ids[start])
            brick = self._bricks.get(brick_id)
            if brick is None:
                brick = Brick(
                    brick_id,
                    self.schema.dimension_names,
                    self.schema.metric_names,
                    encoded_dimensions=self.schema.encoded_dimension_names,
                )
                self._bricks[brick_id] = brick
            rows_slice = order[start:end]
            chunk = {
                name: arr[rows_slice] for name, arr in dim_arrays.items()
            }
            chunk.update(
                {name: arr[rows_slice] for name, arr in metric_arrays.items()}
            )
            brick.append_columns(chunk)
        self._rows += n
        if self._rows_inserted_counter is not None:
            self._rows_inserted_counter.inc(n)
        return n

    @staticmethod
    def _validated_dimension_column(dim, raw) -> np.ndarray:
        """Vectorised domain validation for one bulk-load dimension column.

        Values must be integral and inside ``[0, cardinality)`` *before*
        the int64 cast — a float like ``3.7`` or an out-of-range value
        would otherwise be truncated/wrapped and silently routed to an
        aliased brick. Raises :class:`CubrickError` (via its
        :class:`SchemaError` subclass) naming the offending column.
        """
        values = np.asarray(raw)
        if values.size == 0:
            return values.astype(DIMENSION_DTYPE)
        if not np.issubdtype(values.dtype, np.integer):
            if not np.issubdtype(values.dtype, np.floating):
                raise SchemaError(
                    f"dimension {dim.name!r}: non-numeric bulk-load column "
                    f"(dtype {values.dtype})"
                )
            fractional = values != np.floor(values)
            if fractional.any():
                first = int(np.flatnonzero(fractional)[0])
                raise SchemaError(
                    f"dimension {dim.name!r}: non-integer value "
                    f"{float(values[first])!r} at row {first}"
                )
        out_of_domain = (values < 0) | (values >= dim.cardinality)
        if out_of_domain.any():
            first = int(np.flatnonzero(out_of_domain)[0])
            raise SchemaError(
                f"dimension {dim.name!r}: value {values[first]} at row "
                f"{first} outside [0, {dim.cardinality})"
            )
        return values.astype(DIMENSION_DTYPE)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def brick_count(self) -> int:
        return len(self._bricks)

    def bricks(self) -> list[Brick]:
        return [self._bricks[bid] for bid in sorted(self._bricks)]

    def brick(self, brick_id: int) -> Optional[Brick]:
        return self._bricks.get(brick_id)

    def footprint_bytes(self) -> int:
        """Actual memory footprint (respects compression)."""
        return sum(b.footprint_bytes() for b in self._bricks.values())

    def decompressed_bytes(self) -> int:
        """Footprint if everything were decompressed (LB generation 2)."""
        return sum(b.decompressed_bytes() for b in self._bricks.values())

    def all_rows(self) -> list[dict[str, float]]:
        """Materialise every row (used by re-partitioning/migration).

        Each column is converted to a Python list once (one C-level pass
        per column) instead of calling ``.item()`` per cell.
        """
        out: list[dict[str, float]] = []
        names = self.schema.column_names
        for brick in self.bricks():
            arrays = brick.columns()
            column_lists = [arrays[name].tolist() for name in names]
            out.extend(
                dict(zip(names, values)) for values in zip(*column_lists)
            )
        return out

    def all_columns(self) -> dict[str, np.ndarray]:
        """Materialise every row as column arrays (the migration fast
        path: feed straight into :meth:`insert_columns`)."""
        names = self.schema.column_names
        parts: dict[str, list[np.ndarray]] = {name: [] for name in names}
        for brick in self.bricks():
            arrays = brick.columns()
            for name in names:
                parts[name].append(arrays[name])
        out: dict[str, np.ndarray] = {}
        for name in names:
            dtype = (
                DIMENSION_DTYPE
                if self.schema.has_dimension(name)
                else METRIC_DTYPE
            )
            out[name] = (
                np.concatenate(parts[name])
                if parts[name]
                else np.empty(0, dtype=dtype)
            )
        return out

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def explain(self, query: Query) -> dict[str, int]:
        """Describe what executing the query here would scan.

        Returns ``{"bricks_total", "bricks_scanned", "rows_estimated"}``
        — the Granular Partitioning pruning decision, without executing
        or touching hotness counters.
        """
        buckets = self._filter_buckets(query.filters)
        candidates = list(self.index.prune(buckets, sorted(self._bricks)))
        rows = sum(self._bricks[bid].rows for bid in candidates)
        return {
            "bricks_total": len(self._bricks),
            "bricks_scanned": len(candidates),
            "rows_estimated": rows,
        }

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> PartialResult:
        """Evaluate the query over this partition; returns a partial.

        ``lookups`` supplies join materialisation for dotted column
        references: ``"dim.attr" -> (fact_key, lookup_array)`` where
        ``lookup_array[key]`` is the attribute value (or -1 for keys
        absent from the dimension table — such fact rows are dropped,
        i.e. inner-join semantics). Built by the node from its local
        replica of the dimension table (paper §II-B).
        """
        effective_lookups = lookups if lookups is not None else {}
        self._validate_query(query, effective_lookups)
        partial = self.scan_bricks(
            query, self.candidate_brick_ids(query), effective_lookups
        )
        self.record_scan(partial)
        return partial

    def candidate_brick_ids(self, query: Query) -> list[int]:
        """Brick ids surviving Granular Partitioning pruning, in id order.

        The scan unit list for both the serial path and the
        :class:`~repro.cubrick.parallel.ParallelScanner` fan-out —
        scanning these in id order is what makes results deterministic
        regardless of how the list is split across workers.
        """
        buckets = self._filter_buckets(query.filters)
        return list(self.index.prune(buckets, sorted(self._bricks)))

    def scan_bricks(
        self,
        query: Query,
        brick_ids: Iterable[int],
        lookups: Optional[dict[str, tuple[str, np.ndarray]]] = None,
    ) -> PartialResult:
        """Scan the given bricks (already pruned) into one partial.

        Does not touch observability counters — callers that complete a
        logical query over this partition call :meth:`record_scan` on
        the merged partial exactly once.
        """
        effective_lookups = lookups if lookups is not None else {}
        self._validate_query(query, effective_lookups)
        partial = PartialResult(query=query)
        for brick_id in brick_ids:
            brick = self._bricks[brick_id]
            brick.touch()
            partial.bricks_scanned += 1
            self._scan_brick(brick, query, partial, effective_lookups)
        return partial

    def project(
        self, columns: list[str], filters: tuple[Filter, ...] = ()
    ) -> dict[str, np.ndarray]:
        """Materialise the named columns of rows matching the filters.

        The projection path behind distributed joins against *sharded*
        dimension tables: the coordinator collects each partition's key
        and attribute columns (optionally pre-filtered — predicate
        pushdown) and builds join lookups from them. Plain column names
        only; bucket pruning and hotness accounting apply as in a scan.
        """
        for name in columns:
            if not (self.schema.has_dimension(name)
                    or self.schema.has_metric(name)):
                raise QueryError(
                    f"table {self.schema.name}: unknown column {name!r}"
                )
        for flt in filters:
            if "." in flt.dimension:
                raise QueryError(
                    f"table {self.schema.name}: projection filters must "
                    f"use plain column names, got {flt.dimension!r}"
                )
            if not self.schema.has_dimension(flt.dimension):
                raise QueryError(
                    f"table {self.schema.name}: unknown filter dimension "
                    f"{flt.dimension!r}"
                )
        buckets = self._filter_buckets(tuple(filters))
        candidates = self.index.prune(buckets, sorted(self._bricks))
        parts: dict[str, list[np.ndarray]] = {name: [] for name in columns}
        for brick_id in candidates:
            brick = self._bricks[brick_id]
            if brick.rows == 0:
                continue
            brick.touch()
            arrays = brick.columns()
            mask = self._build_mask(arrays, tuple(filters), brick.rows, {})
            unmasked = bool(mask.all())
            for name in columns:
                values = arrays[name]
                parts[name].append(values if unmasked else values[mask])
        out: dict[str, np.ndarray] = {}
        for name in columns:
            if parts[name]:
                out[name] = np.concatenate(parts[name])
            else:
                dtype = (
                    DIMENSION_DTYPE
                    if self.schema.has_dimension(name)
                    else METRIC_DTYPE
                )
                out[name] = np.empty(0, dtype=dtype)
        return out

    def record_scan(self, partial: PartialResult) -> None:
        """Record one completed partition scan in the obs counters."""
        if self._scanned_counter is not None:
            self._scanned_counter.inc(partial.bricks_scanned)
            self._pruned_counter.inc(len(self._bricks) - partial.bricks_scanned)
            self._rows_scanned_counter.inc(partial.rows_scanned)

    def _validate_query(
        self, query: Query, lookups: dict[str, tuple[str, np.ndarray]]
    ) -> None:
        for flt in query.filters:
            self._validate_column_ref(flt.dimension, lookups, "filter")
        for dim in query.group_by:
            self._validate_column_ref(dim, lookups, "group-by")
        for agg in query.aggregations:
            if agg.func is AggFunc.COUNT:
                continue
            if agg.func is AggFunc.COUNT_DISTINCT:
                # Distinct counts apply to any column (dimension or metric).
                if not (self.schema.has_metric(agg.metric)
                        or self.schema.has_dimension(agg.metric)):
                    raise QueryError(
                        f"table {self.schema.name}: unknown column "
                        f"{agg.metric!r}"
                    )
                continue
            if not self.schema.has_metric(agg.metric):
                raise QueryError(
                    f"table {self.schema.name}: unknown metric {agg.metric!r}"
                )

    def _validate_column_ref(
        self, name: str, lookups: dict[str, tuple[str, np.ndarray]], kind: str
    ) -> None:
        if "." in name:
            if name not in lookups:
                raise QueryError(
                    f"table {self.schema.name}: joined column {name!r} has "
                    f"no lookup (missing join or replicated table?)"
                )
            return
        if not self.schema.has_dimension(name):
            raise QueryError(
                f"table {self.schema.name}: unknown {kind} dimension {name!r}"
            )

    def _filter_buckets(self, filters: tuple[Filter, ...]) -> dict[str, set[int]]:
        buckets: dict[str, set[int]] = {}
        for flt in filters:
            if "." in flt.dimension:
                continue  # joined columns cannot prune fact bricks
            if flt.op is FilterOp.NOT_IN:
                # Complement filters say nothing about where surviving
                # rows live (and their excluded values may legitimately
                # be outside the dimension domain) — no pruning.
                continue
            if flt.op is FilterOp.BETWEEN:
                allowed = self.index.candidate_buckets(
                    flt.dimension, None, (flt.values[0], flt.values[1])
                )
            else:
                allowed = self.index.candidate_buckets(
                    flt.dimension, flt.values, None
                )
            if flt.dimension in buckets:
                buckets[flt.dimension] &= allowed
            else:
                buckets[flt.dimension] = allowed
        return buckets

    def _scan_brick(self, brick: Brick, query: Query, partial: PartialResult,
                    lookups: dict[str, tuple[str, np.ndarray]]) -> None:
        if brick.rows == 0:
            return
        arrays = brick.columns()
        mask = self._build_mask(arrays, query.filters, brick.rows, lookups)
        # Inner-join semantics: rows whose key misses the dimension table
        # are dropped whenever the query references a joined column.
        for name in query.joined_columns():
            values = self._resolve_column(name, arrays, lookups)
            mask &= values >= 0
        matched = int(mask.sum())
        partial.rows_scanned += brick.rows
        if matched == 0:
            return
        unmasked = matched == brick.rows

        def column(name: str):
            # Dictionary-encoded dimensions hand the scan their dense
            # per-brick codes — no per-scan np.unique sort downstream.
            if "." not in name and name in self._encoded_dims:
                enc = brick.encoded(name)
                codes = enc.codes if unmasked else enc.codes[mask]
                return EncodedColumn(codes, enc.dictionary)
            values = self._resolve_column(name, arrays, lookups)
            return values if unmasked else values[mask]

        # Metric columns are masked at most once even when aggregated
        # several ways.
        masked_columns: dict = {}

        def agg_values(agg):
            if agg.func is AggFunc.COUNT:
                return None
            values = masked_columns.get(agg.metric)
            if values is None:
                values = column(agg.metric)
                masked_columns[agg.metric] = values
            return values

        if not query.group_by:
            partial.accumulate((), [
                scalar_state(agg.func, agg_values(agg), matched)
                for agg in query.aggregations
            ])
            return

        group_idx, unique_keys = encode_group_keys(
            [column(dim) for dim in query.group_by]
        )
        n_groups = len(unique_keys)
        counts = (
            group_counts(group_idx, n_groups)
            if any(agg.func is AggFunc.COUNT or agg.func is AggFunc.AVG
                   for agg in query.aggregations)
            else None
        )
        partial.accumulate_block(unique_keys, [
            grouped_state_arrays(
                agg.func, group_idx, agg_values(agg), n_groups, counts
            )
            for agg in query.aggregations
        ])

    @staticmethod
    def _resolve_column(
        name: str,
        arrays: dict[str, np.ndarray],
        lookups: dict[str, tuple[str, np.ndarray]],
    ) -> np.ndarray:
        """Column values for a plain or joined (dotted) reference."""
        if "." in name:
            fact_key, lookup = lookups[name]
            return lookup[arrays[fact_key]]
        return arrays[name]

    @classmethod
    def _build_mask(cls, arrays: dict[str, np.ndarray],
                    filters: tuple[Filter, ...], rows: int,
                    lookups: dict[str, tuple[str, np.ndarray]]) -> np.ndarray:
        mask = np.ones(rows, dtype=bool)
        for flt in filters:
            column = cls._resolve_column(flt.dimension, arrays, lookups)
            if flt.op is FilterOp.EQ:
                mask &= column == flt.values[0]
            elif flt.op is FilterOp.IN:
                mask &= np.isin(column, np.asarray(flt.values))
            elif flt.op is FilterOp.NOT_IN:
                mask &= ~np.isin(column, np.asarray(flt.values))
            else:  # BETWEEN
                mask &= (column >= flt.values[0]) & (column <= flt.values[1])
        return mask

