"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class. The hierarchy mirrors the paper's
failure taxonomy: retryable errors (transient hardware/network issues that
the Cubrick proxy retries in a different region) versus non-retryable
errors (logical conditions such as shard collisions, which Shard Manager
must resolve by picking a different placement rather than retrying).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class ClusterError(ReproError):
    """Base class for cluster-substrate errors."""


class HostNotFoundError(ClusterError):
    """A host id does not exist in the cluster topology."""


class HostUnavailableError(ClusterError):
    """The target host is failed, drained, or decommissioned."""


class CapacityExceededError(ClusterError):
    """A placement would exceed the host's reported capacity."""


class ShardManagerError(ReproError):
    """Base class for Shard Manager errors."""


class RetryableShardError(ShardManagerError):
    """A transient error; the caller (SM server or proxy) may retry."""


class NonRetryableShardError(ShardManagerError):
    """The application server cannot take this shard on this host.

    Raised by Cubrick's ``addShard`` implementation when the migration
    would create a shard collision (two shards holding partitions of the
    same table on one host). Shard Manager reacts by trying a different
    target server instead of retrying the same one (paper §IV-A).
    """


class ShardNotFoundError(ShardManagerError):
    """The shard id is not registered with the Shard Manager."""


class ShardAlreadyAssignedError(ShardManagerError):
    """An addShard call targeted a host that already owns the shard."""


class MigrationError(ShardManagerError):
    """A shard migration workflow could not be completed."""


class ServiceDiscoveryError(ReproError):
    """Base class for SMC (service discovery) errors."""


class ShardMappingUnknownError(ServiceDiscoveryError):
    """No host mapping is known (yet) for the requested shard."""


class CubrickError(ReproError):
    """Base class for Cubrick DBMS errors."""


class TableNotFoundError(CubrickError):
    """The referenced table does not exist in the catalog."""


class TableAlreadyExistsError(CubrickError):
    """A CREATE TABLE collided with an existing table name."""


class PartitionNotFoundError(CubrickError):
    """The referenced table partition is not present on this node."""


class InvalidTableNameError(CubrickError):
    """Table names may not contain the reserved ``#`` separator."""


class SchemaError(CubrickError):
    """A record or query does not match the table schema."""


class QueryError(CubrickError):
    """A query is malformed or references unknown columns."""


class SqlError(QueryError):
    """A SQL statement failed to lex, parse or plan.

    Carries the character ``position`` of the offending token and (when
    known) the ``statement`` text, so frontends can render a caret
    pointing at the error. Subclasses :class:`QueryError` so existing
    handlers of malformed programmatic queries keep working.
    """

    def __init__(self, message: str, *, statement: str | None = None,
                 position: int | None = None):
        super().__init__(message)
        self.message = message
        self.statement = statement
        self.position = position

    def context(self) -> str:
        """The statement with a caret under the offending position."""
        if self.statement is None or self.position is None:
            return self.message
        caret = " " * self.position + "^"
        return f"{self.message}\n  {self.statement}\n  {caret}"

    def __str__(self) -> str:
        if self.position is None:
            return self.message
        return f"{self.message} (at position {self.position})"


class QueryFailedError(CubrickError):
    """Query execution failed at runtime (e.g. a participating host died).

    Instances carry the region and host that failed so the Cubrick proxy
    can blacklist and retry in a different region (paper §IV-D).
    """

    def __init__(self, message: str, *, region: str | None = None,
                 host: str | None = None, retryable: bool = True):
        super().__init__(message)
        self.region = region
        self.host = host
        self.retryable = retryable


class AdmissionControlError(CubrickError):
    """The proxy rejected the query before execution (overload/blacklist)."""


class RegionUnavailableError(CubrickError):
    """No region can currently serve the query's tables."""


class ConsensusError(ReproError):
    """Base class for replicated metadata-log failures."""


class QuorumUnavailableError(ConsensusError):
    """A quorum read/write could not reach a majority of replicas."""
