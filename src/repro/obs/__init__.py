"""repro.obs — cluster-wide telemetry for the reproduction.

Three coordinated pieces behind one :class:`Observability` facade:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms keyed by ``name + label tuple``;
* :class:`~repro.obs.trace.Tracer` — per-query span trees from the
  Cubrick proxy down to per-host brick scans;
* :class:`~repro.obs.events.EventLog` — a structured JSON-lines event
  ring buffer for post-mortem dumps.

All three read time from one injectable clock. The deployment wires in
the DES virtual clock, so every export is a pure function of the seed:
two identically-seeded runs produce byte-identical JSON. Components can
be constructed without an ``Observability`` (each then gets a private
one on a zero clock), which keeps unit tests unentangled while letting
:class:`~repro.core.deployment.CubrickDeployment` share a single
process-wide instance across all layers.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    interpolated_percentile,
    interpolated_percentiles,
)
from repro.obs.trace import Span, Tracer
from repro.obs.export import prometheus_text, spans_jsonl
from repro.obs.profiler import Profiler
from repro.obs.slo import SLObjective, SloEngine

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Profiler",
    "SLObjective",
    "SloEngine",
    "Span",
    "Tracer",
    "interpolated_percentile",
    "interpolated_percentiles",
    "prometheus_text",
    "spans_jsonl",
]

#: Counter name incremented each time the event ring buffer overflows;
#: created lazily on the first drop so overflow-free snapshots are
#: unchanged, but a lossy run can never look clean.
EVENTS_DROPPED_COUNTER = "repro.obs.events_dropped"


class Observability:
    """One clock, one registry, one tracer, one event log."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        event_capacity: int = 4096,
        keep_recent_traces: int = 128,
        keep_slowest_traces: int = 8,
    ):
        self.clock: Callable[[], float] = clock if clock is not None else lambda: 0.0
        self.metrics = MetricsRegistry(clock=self.clock)
        self.tracer = Tracer(
            self.clock,
            keep_recent=keep_recent_traces,
            keep_slowest=keep_slowest_traces,
        )
        self.events = EventLog(
            self.clock,
            capacity=event_capacity,
            on_drop=lambda n: self.metrics.counter(
                EVENTS_DROPPED_COUNTER
            ).inc(n),
        )

    def export(self, *, slowest_traces: Optional[int] = None,
               events: Optional[int] = None) -> dict:
        """Machine-readable snapshot of everything (JSON-ready dict)."""
        return {
            "metrics": self.metrics.snapshot(),
            "traces": {
                "finished": self.tracer.finished_traces,
                "slowest": self.tracer.to_dicts(slowest_traces),
            },
            "events": {
                "emitted": self.events.emitted,
                "dropped": self.events.dropped,
                "tail": self.events.tail(events),
            },
        }

    def export_json(self, *, indent: Optional[int] = 2,
                    slowest_traces: Optional[int] = None,
                    events: Optional[int] = None) -> str:
        """Deterministic JSON export (sorted keys, virtual timestamps)."""
        return json.dumps(
            self.export(slowest_traces=slowest_traces, events=events),
            sort_keys=True,
            indent=indent,
        )

    def dump(self, path: str) -> None:
        """Write :meth:`export_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.export_json())
            handle.write("\n")
