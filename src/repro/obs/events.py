"""Structured event log with a bounded ring buffer.

Every notable state change (host failover, shard refusal, SLA miss,
session expiry...) is emitted as one structured event: a flat dict with
a virtual-time timestamp, a monotone sequence number and a ``kind``
following the ``subsystem.component.event`` naming convention. The ring
buffer keeps the last N events so a failing experiment can dump recent
history as JSON lines without unbounded memory growth; ``dropped``
counts what scrolled off.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Optional


class EventLog:
    """Bounded, JSON-lines-serialisable structured event buffer."""

    def __init__(
        self,
        clock: Callable[[], float] = lambda: 0.0,
        *,
        capacity: int = 4096,
        on_drop: Optional[Callable[[int], None]] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"event log capacity must be positive: {capacity}")
        self.clock = clock
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._last_time = float("-inf")
        self.emitted = 0
        #: Called with the number of events scrolled off (always 1) each
        #: time the ring overflows; Observability wires a metrics counter
        #: in so overflow shows up in snapshots, not just post-mortems.
        self.on_drop = on_drop

    def emit(self, kind: str, **fields: object) -> dict:
        """Record one event; reserved keys: ``time``, ``seq``, ``kind``."""
        reserved = {"time", "seq", "kind"} & set(fields)
        if reserved:
            raise ValueError(f"event fields shadow reserved keys: {sorted(reserved)}")
        self._seq += 1
        # Non-decreasing clamp: event timestamps are ordered by (time,
        # seq) in dumps, and real-clock jitter between clock domains
        # must not produce a log that appears to run backwards. On the
        # monotone DES clock the clamp never fires.
        now = max(self.clock(), self._last_time)
        self._last_time = now
        event = {"time": now, "seq": self._seq, "kind": kind}
        event.update(sorted(fields.items()))
        overflowing = len(self._events) == self.capacity
        self._events.append(event)
        self.emitted += 1
        if overflowing and self.on_drop is not None:
            self.on_drop(1)
        return event

    @property
    def dropped(self) -> int:
        """Events that scrolled off the ring buffer."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def tail(self, n: Optional[int] = None) -> list[dict]:
        """The most recent ``n`` events (all buffered ones by default)."""
        events = list(self._events)
        return events if n is None else events[-n:]

    def of_kind(self, kind: str) -> list[dict]:
        return [e for e in self._events if e["kind"] == kind]

    def to_jsonl(self, n: Optional[int] = None) -> str:
        """JSON-lines dump of the last ``n`` events (deterministic)."""
        return "\n".join(
            json.dumps(event, sort_keys=True) for event in self.tail(n)
        )

    def dump(self, path: str, n: Optional[int] = None) -> int:
        """Write the last ``n`` events as JSON lines; returns the count."""
        events = self.tail(n)
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return len(events)
