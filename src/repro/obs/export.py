"""Exporters: Prometheus text format and an OTLP-ish span dump.

Both formats are byte-deterministic under a fixed seed: instruments are
emitted in ``(name, labels)`` order, spans in trace/tree order, floats
through Python's shortest-repr formatting, and every timestamp comes
from the DES virtual clock. Two identically-seeded runs therefore
``cmp`` equal — the CI obs-profile job relies on that.

* :func:`prometheus_text` — the Prometheus exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le=...}`` series with a
  ``+Inf`` bucket, ``_sum``/``_count``). Metric names keep the repo's
  dotted convention internally and are sanitised to ``_`` here.
* :func:`spans_jsonl` — one JSON object per span (flattened, with
  ``parentSpanId``), OTLP-flavoured field names, one line each: the
  shape OTLP collectors and trace viewers ingest.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Sanitise a dotted internal metric name for Prometheus."""
    sanitised = _NAME_SANITISER.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _format_value(value: float) -> str:
    """Deterministic sample rendering: integral floats without ``.0``."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Iterable[tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{key}="{_escape_label(str(val))}"' for key, val in labels
    )
    return f"{{{rendered}}}" if rendered else ""


def prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry in Prometheus exposition format (deterministic)."""
    by_name: dict[str, list] = {}
    for (name, __), instrument in sorted(metrics._instruments.items()):
        by_name.setdefault(name, []).append(instrument)
    lines: list[str] = []
    for name in sorted(by_name):
        instruments = by_name[name]
        prom = prometheus_name(name)
        kind = type(instruments[0]).__name__.lower()
        lines.append(f"# TYPE {prom} {kind}")
        for instrument in instruments:
            if isinstance(instrument, (Counter, Gauge)):
                labels = _format_labels(instrument.labels)
                lines.append(f"{prom}{labels} {_format_value(instrument.value)}")
            elif isinstance(instrument, Histogram):
                cumulative = 0
                base = list(instrument.labels)
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    labels = _format_labels(base + [("le", _format_value(bound))])
                    lines.append(f"{prom}_bucket{labels} {cumulative}")
                labels = _format_labels(base + [("le", "+Inf")])
                lines.append(f"{prom}_bucket{labels} {instrument.count}")
                labels = _format_labels(base)
                lines.append(
                    f"{prom}_sum{labels} {_format_value(instrument.total)}"
                )
                lines.append(f"{prom}_count{labels} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _span_record(span: Span, parent_id: int) -> dict:
    attributes: dict[str, object] = {}
    for key in sorted(span.labels):
        attributes[key] = span.labels[key]
    for key in sorted(span.annotations):
        attributes[key] = span.annotations[key]
    return {
        "traceId": span.trace_id,
        "spanId": span.span_id,
        "parentSpanId": parent_id,
        "name": span.name,
        "kind": "SPAN_KIND_INTERNAL",
        "startTime": span.start,
        # Clamped: real-clock jitter must not export end < start (OTLP
        # consumers reject negative-duration spans). No-op on the
        # monotone DES clock.
        "endTime": span.start if span.end is None else max(span.end, span.start),
        "attributes": attributes,
    }


def spans_jsonl(
    source: Union["Observability", Tracer],
    *,
    roots: Optional[Iterable[Span]] = None,
) -> str:
    """OTLP-ish JSON-lines dump of span trees (flattened, deterministic).

    Defaults to every trace still in the tracer's ``recent`` ring,
    oldest first; each tree is emitted depth-first with explicit
    ``parentSpanId`` links (0 = root).
    """
    tracer: Tracer = getattr(source, "tracer", source)
    spans = list(roots) if roots is not None else list(tracer.recent)
    lines: list[str] = []

    def visit(span: Span, parent_id: int) -> None:
        lines.append(json.dumps(_span_record(span, parent_id), sort_keys=True))
        for child in span.children:
            visit(child, span.span_id)

    for root in spans:
        visit(root, 0)
    return "\n".join(lines) + ("\n" if lines else "")


def write_text(path: str, text: str) -> None:
    """Write an export to ``path`` exactly as rendered (byte-stable)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
