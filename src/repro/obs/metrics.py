"""Metrics registry: counters, gauges and fixed-bucket histograms.

The measurement substrate for the whole reproduction. Instruments are
keyed by ``(name, label tuple)`` and follow the naming convention
``subsystem.component.metric`` (e.g. ``cubrick.proxy.latency_seconds``,
``shardmanager.placement.decisions``). All timestamps come from an
injectable *clock* — the deployment wires the DES virtual clock in, so
snapshots are a pure function of the seed and two identically-seeded
runs export byte-identical metrics.

Percentile math lives here too (:func:`interpolated_percentile`), shared
by histogram readouts and the fan-out experiment's summary rows so the
CLI and the experiment always agree on what "p99" means: linearly
interpolated order statistics, never max-of-sample.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

#: Default histogram buckets: log-spaced upper bounds in seconds, tuned
#: for query/propagation latencies (1 ms .. 30 s).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelValue = Union[str, int, float, bool]
Labels = tuple[tuple[str, str], ...]


def _canonical_labels(labels: dict[str, LabelValue]) -> Labels:
    """Sorted, stringified label tuple — the instrument key half."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _interpolation_rank(count: int, q: float) -> float:
    """The fractional order-statistic rank for percentile ``q``.

    One definition for the whole codebase: rank = ``(n - 1) * q / 100``
    (the "linear" method). Every percentile readout — raw samples,
    retained histogram samples, bucket interpolation — derives from this
    rank, so the CLI, experiments and exporters always agree on what
    "p99" means. Raises on out-of-range ``q`` and on empty data.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range [0, 100]: {q}")
    if count == 0:
        raise ValueError("no samples")
    return (count - 1) * (q / 100.0)


def _percentile_from_sorted(data: np.ndarray, q: float) -> float:
    """Interpolated percentile of an already-sorted sample array."""
    rank = _interpolation_rank(int(data.size), q)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(data[int(rank)])
    fraction = rank - lo
    return float(data[lo] * (1.0 - fraction) + data[hi] * fraction)


def interpolated_percentile(
    samples: Union[Sequence[float], np.ndarray], q: float
) -> float:
    """Linearly interpolated percentile of raw samples.

    ``q`` is in ``[0, 100]``. Matches the "linear" definition (rank =
    ``(n - 1) * q / 100`` with interpolation between the straddling
    order statistics), so small sample sets yield interpolated values
    instead of collapsing high percentiles to the sample maximum.
    """
    data = np.sort(np.asarray(samples, dtype=np.float64))
    if data.size == 0:
        raise ValueError("no samples")
    return _percentile_from_sorted(data, q)


def interpolated_percentiles(
    samples: Union[Sequence[float], np.ndarray], qs: Iterable[float]
) -> list[float]:
    """Vector form of :func:`interpolated_percentile` (sorts once)."""
    data = np.sort(np.asarray(samples, dtype=np.float64))
    if data.size == 0:
        raise ValueError("no samples")
    return [_percentile_from_sorted(data, q) for q in qs]


@dataclass
class Counter:
    """Monotonically increasing count (queries served, shards created...)."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0 or not math.isfinite(amount):
            raise ValueError(f"counter increment must be finite and >= 0: {amount}")
        self.value += amount
        return self.value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": "counter",
            "value": self.value,
        }


@dataclass
class Gauge:
    """Point-in-time value (registered hosts, footprint bytes...)."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    def set(self, value: float) -> float:
        if not math.isfinite(value):
            raise ValueError(f"gauge value must be finite: {value}")
        self.value = float(value)
        return self.value

    def inc(self, amount: float = 1.0) -> float:
        return self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> float:
        return self.set(self.value - amount)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": "gauge",
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket distribution with interpolated percentile readout.

    Buckets are upper bounds; observations above the last bound land in
    an overflow bucket. ``track_samples=True`` additionally retains the
    raw observations so ``percentile`` is exact (used where experiment
    summaries and the histogram must agree to the last digit); without
    it, percentiles are linearly interpolated inside the bucket that
    holds the target rank.
    """

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Optional[Sequence[float]] = None,
        track_samples: bool = False,
    ):
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name}: bucket bounds must be strictly increasing"
            )
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: Optional[list[float]] = [] if track_samples else None

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name}: non-finite sample {value}")
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self._samples is not None:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated percentile — exact when samples are retained."""
        return self.percentiles((q,))[0]

    def percentiles(self, qs: Iterable[float]) -> list[float]:
        """Several percentiles at once; sorts retained samples once.

        Both readout paths share the interpolation math in
        :func:`_interpolation_rank` / :func:`_percentile_from_sorted`:
        with retained samples the rank interpolates between order
        statistics; without, the same rank is located in the cumulative
        bucket counts and interpolated within that bucket.
        """
        if self.count == 0:
            raise ValueError(f"histogram {self.name}: no observations")
        if self._samples is not None:
            data = np.sort(np.asarray(self._samples, dtype=np.float64))
            return [_percentile_from_sorted(data, q) for q in qs]
        return [self._bucket_percentile(q) for q in qs]

    def _bucket_percentile(self, q: float) -> float:
        """Percentile estimated by interpolating within one bucket."""
        assert self.min is not None and self.max is not None
        rank = _interpolation_rank(self.count, q)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count > rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if bucket_count == 1:
                    return float(min(max(lower, self.min), upper))
                within = (rank - cumulative) / (bucket_count - 1)
                return float(lower + (upper - lower) * within)
            cumulative += bucket_count
        return float(self.max)

    def readout(self) -> dict:
        """Summary for snapshots: count/sum/min/max/mean/p50/p95/p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        p50, p95, p99 = self.percentiles((50.0, 95.0, 99.0))
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": "histogram",
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            **self.readout(),
        }


Instrument = Union[Counter, Gauge, Histogram]


@dataclass
class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, label tuple)``.

    One registry per deployment; injectable anywhere that measures.
    Re-requesting an existing key returns the same instrument object;
    requesting an existing key as a different instrument type raises.
    """

    clock: Callable[[], float] = field(default=lambda: 0.0)
    _instruments: dict[tuple[str, Labels], Instrument] = field(
        default_factory=dict
    )

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._get_or_create(Counter, name, _canonical_labels(labels))

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._get_or_create(Gauge, name, _canonical_labels(labels))

    def histogram(
        self,
        name: str,
        *,
        buckets: Optional[Sequence[float]] = None,
        track_samples: bool = False,
        **labels: LabelValue,
    ) -> Histogram:
        key = (name, _canonical_labels(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"instrument {key} already registered as "
                    f"{type(existing).__name__}, not Histogram"
                )
            return existing
        histogram = Histogram(
            name, key[1], buckets=buckets, track_samples=track_samples
        )
        self._instruments[key] = histogram
        return histogram

    def _get_or_create(self, cls, name: str, labels: Labels):
        key = (name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"instrument {key} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = cls(name=name, labels=labels)
        self._instruments[key] = instrument
        return instrument

    def get(self, name: str, **labels: LabelValue) -> Optional[Instrument]:
        """Look up an instrument without creating it."""
        return self._instruments.get((name, _canonical_labels(labels)))

    def find(self, prefix: str) -> list[Instrument]:
        """All instruments whose name starts with ``prefix``, sorted."""
        return [
            instrument
            for (name, __), instrument in sorted(self._instruments.items())
            if name.startswith(prefix)
        ]

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> list[dict]:
        """Deterministic, JSON-ready dump of every instrument.

        Sorted by ``(name, labels)`` so two identically-seeded runs
        produce identical output regardless of creation order.
        """
        return [
            instrument.to_dict()
            for __, instrument in sorted(self._instruments.items())
        ]
