"""Query profiler: span trees → per-stage self-time/rows breakdowns.

The tracer records *what happened* (one span tree per query); this
module answers *where the time went*. Each span maps to a pipeline
stage — scheduler queue wait → admission → proxy retry/backoff →
coordinator fan-out → per-node brick scan → kernel family →
merge/consolidate — and the profiler attributes the root span's wall
time across stages by an interval sweep over the trace's simulated
timeline:

* every span covers an interval (clamped to its parent's — the
  instrumentation reconstructs the simulated schedule with
  :meth:`~repro.obs.trace.Span.shift` and explicit durations);
* each instant of the root interval is charged to the **deepest** span
  covering it (ties break deterministically by latest start, then
  span id — parallel sibling scans share a stage, so the tie rarely
  matters);
* a stage's *self time* is the total length of the instants charged to
  it.

Because the elementary segments partition the root interval exactly,
stage self-times always sum to the root span's wall time — the
invariant the acceptance tests assert to within one DES tick.

Aggregation is per query (one :class:`QueryProfile` per trace), per
stage and per tenant, plus a folded-stack export in the flamegraph
collapsed format (``stage;stage;stage <microseconds>``), which common
flamegraph renderers consume directly. All inputs are virtual-clock
spans, so identically-seeded runs fold to byte-identical files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.obs.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

#: Span-name → stage mapping for the known pipeline stages; unknown
#: span names profile under their own name so new instrumentation is
#: never silently dropped.
STAGE_BY_SPAN = {
    "repro.sched.query": "sched",
    "repro.sched.queue.wait": "queue_wait",
    "repro.sched.admission": "admission",
    "cubrick.proxy.query": "proxy",
    "cubrick.coordinator.execute": "coordinator",
    "cubrick.node.scan": "scan",
    "cubrick.coordinator.merge": "merge",
}

#: Root span names that start a query trace (managed submissions are
#: rooted at the scheduler, direct proxy submissions at the proxy).
QUERY_ROOTS = ("repro.sched.query", "cubrick.proxy.query")


def stage_of(span: Span) -> str:
    """The pipeline stage a span belongs to."""
    if span.name == "cubrick.node.kernel":
        return f"kernel:{span.labels.get('family', 'unknown')}"
    return STAGE_BY_SPAN.get(span.name, span.name)


@dataclass
class StageStats:
    """Self-time and scan-volume totals for one stage."""

    stage: str
    self_time: float = 0.0
    spans: int = 0
    rows_scanned: int = 0
    bricks_scanned: int = 0

    def add(self, other: "StageStats") -> None:
        self.self_time += other.self_time
        self.spans += other.spans
        self.rows_scanned += other.rows_scanned
        self.bricks_scanned += other.bricks_scanned


@dataclass
class QueryProfile:
    """One profiled query trace: wall time attributed across stages."""

    trace_id: int
    root_name: str
    table: str
    tenant: str
    wall_time: float
    stages: dict[str, StageStats] = field(default_factory=dict)
    #: Folded stack path → attributed seconds, for flamegraph export.
    folded: dict[str, float] = field(default_factory=dict)
    rows_scanned: int = 0
    bricks_scanned: int = 0
    outcome: str = "ok"

    @property
    def self_time_total(self) -> float:
        """Sum of stage self-times; equals ``wall_time`` by construction."""
        return sum(stats.self_time for stats in self.stages.values())


@dataclass
class _Node:
    """One span flattened for the sweep: clamped interval + lineage."""

    span: Span
    depth: int
    start: float
    end: float
    stage: str
    path: str  # ";"-joined stage chain from the root


def _flatten(root: Span) -> list[_Node]:
    nodes: list[_Node] = []

    def visit(span: Span, depth: int, lo: float, hi: float, prefix: str) -> None:
        end = span.end if span.end is not None else span.start
        start = min(max(span.start, lo), hi)
        end = min(max(end, lo), hi)
        stage = stage_of(span)
        path = f"{prefix};{stage}" if prefix else stage
        nodes.append(_Node(span, depth, start, end, stage, path))
        for child in span.children:
            visit(child, depth + 1, start, end, path)

    visit(root, 0, root.start, root.end if root.end is not None else root.start, "")
    return nodes


def profile_trace(root: Span) -> QueryProfile:
    """Attribute one trace's wall time across stages by interval sweep."""
    nodes = _flatten(root)
    profile = QueryProfile(
        trace_id=root.trace_id,
        root_name=root.name,
        table=str(root.labels.get("table", "?")),
        tenant=str(root.labels.get("tenant", "-")),
        wall_time=root.duration,
        outcome=str(root.annotations.get("outcome", "ok")),
    )
    for node in nodes:
        stats = profile.stages.setdefault(node.stage, StageStats(node.stage))
        stats.spans += 1
        stats.rows_scanned += int(node.span.annotations.get("rows_scanned", 0))
        stats.bricks_scanned += int(
            node.span.annotations.get("bricks_scanned", 0)
        )
        if node.span.name == "cubrick.node.scan":
            profile.rows_scanned += int(
                node.span.annotations.get("rows_scanned", 0)
            )
            profile.bricks_scanned += int(
                node.span.annotations.get("bricks_scanned", 0)
            )

    boundaries = sorted({b for n in nodes for b in (n.start, n.end)})
    for lo, hi in zip(boundaries, boundaries[1:]):
        length = hi - lo
        if length <= 0.0:
            continue
        # The deepest span covering this segment owns it; among equal
        # depths the latest-starting (then highest span id) wins — a
        # deterministic choice, and parallel siblings share a stage.
        owner = max(
            (n for n in nodes if n.start <= lo and n.end >= hi),
            key=lambda n: (n.depth, n.start, n.span.span_id),
        )
        profile.stages[owner.stage].self_time += length
        profile.folded[owner.path] = profile.folded.get(owner.path, 0.0) + length
    return profile


class Profiler:
    """Profiles the query traces a tracer retained.

    Works over the tracer's ``recent`` ring (every completed trace the
    buffer still holds) rather than only the slowest top-K, so per-stage
    and per-tenant totals describe the retained workload window.
    """

    def __init__(self, source: Union["Observability", Tracer]):
        self.tracer: Tracer = getattr(source, "tracer", source)

    def query_roots(self) -> list[Span]:
        """Retained query-trace roots, oldest first."""
        return [
            span for span in self.tracer.recent if span.name in QUERY_ROOTS
        ]

    def profiles(
        self, roots: Optional[Iterable[Span]] = None
    ) -> list[QueryProfile]:
        spans = list(roots) if roots is not None else self.query_roots()
        return [profile_trace(span) for span in spans]

    def top(
        self, n: int, roots: Optional[Iterable[Span]] = None
    ) -> list[QueryProfile]:
        """The ``n`` profiled queries with the most wall time."""
        ranked = sorted(
            self.profiles(roots),
            key=lambda p: (-p.wall_time, p.trace_id),
        )
        return ranked[:n]

    def by_stage(
        self, profiles: Optional[list[QueryProfile]] = None
    ) -> dict[str, StageStats]:
        """Stage totals across the profiled queries (sorted by stage)."""
        if profiles is None:
            profiles = self.profiles()
        out: dict[str, StageStats] = {}
        for profile in profiles:
            for stage, stats in profile.stages.items():
                out.setdefault(stage, StageStats(stage)).add(stats)
        return {stage: out[stage] for stage in sorted(out)}

    def by_tenant(
        self, profiles: Optional[list[QueryProfile]] = None
    ) -> dict[str, dict[str, StageStats]]:
        """Per-tenant stage totals (tenants and stages sorted)."""
        if profiles is None:
            profiles = self.profiles()
        out: dict[str, dict[str, StageStats]] = {}
        for profile in profiles:
            bucket = out.setdefault(profile.tenant, {})
            for stage, stats in profile.stages.items():
                bucket.setdefault(stage, StageStats(stage)).add(stats)
        return {
            tenant: {stage: out[tenant][stage] for stage in sorted(out[tenant])}
            for tenant in sorted(out)
        }

    def folded(self, profiles: Optional[list[QueryProfile]] = None) -> str:
        """Flamegraph collapsed-stack export (integer microseconds).

        One line per distinct stage path, sorted, values summed across
        the profiled queries. Zero-weight paths are dropped. Integer
        microsecond values keep the file byte-deterministic.
        """
        if profiles is None:
            profiles = self.profiles()
        weights: dict[str, float] = {}
        for profile in profiles:
            for path, seconds in profile.folded.items():
                weights[path] = weights.get(path, 0.0) + seconds
        lines = []
        for path in sorted(weights):
            micros = round(weights[path] * 1e6)
            if micros > 0:
                lines.append(f"{path} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")
