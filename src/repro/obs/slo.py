"""SLO engine: declarative objectives, burn-rate alerts, budget ledger.

The paper's interactive-latency claim is an SLO story: the wall is
breached only if p99 stays interactive while the fleet scales. This
module closes the loop from the metrics registry to decisions:

* :class:`SLObjective` — a declarative objective over registry metrics.
  ``availability`` objectives classify a labelled counter family's
  increments into good/bad (e.g. ``repro.sched.sla{outcome=ok|miss}``);
  ``latency`` objectives count histogram observations at or below a
  threshold bucket bound as good.
* :class:`SloEngine` — sampled on the DES clock (wire :meth:`tick` into
  ``Simulator.schedule_periodic``). Each tick snapshots every
  objective's cumulative good/total counts; burn rates are windowed
  deltas over those samples. Multi-window burn-rate rules (the SRE
  page/ticket pattern) raise an alert only when both the short and the
  long window burn faster than the rule's threshold, and resolve it
  when the short window recovers — the alert timeline is a
  deterministic function of the seed.
* an **error-budget ledger**: over the budget window, the allowed bad
  fraction is ``1 - target``; the ledger reports how much of that
  budget the measured bad events consumed.

:meth:`SloEngine.burn_rate_signal` is the hook
:class:`~repro.autoscale.controller.WallBreachController` consumes
(``burn_rate_fn=engine.burn_rate_signal``): sustained burn above the
controller's threshold counts as overload alongside utilization and
queue pressure.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.metrics import Counter, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.sim.engine import Simulator

#: Default multi-window burn-rate rules: (name, short, long, threshold).
#: A burn rate of 1.0 consumes exactly the error budget over the budget
#: window; the classic fast-burn page fires at 14.4x, the slow-burn
#: ticket at 6x (Google SRE workbook numbers, scaled to DES seconds).
DEFAULT_BURN_RULES: tuple[tuple[str, float, float, float], ...] = (
    ("fast_burn", 60.0, 600.0, 14.4),
    ("slow_burn", 300.0, 3600.0, 6.0),
)


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over registry metrics.

    ``kind="availability"``: ``metric`` names a counter family; counters
    whose ``class_label`` value is in ``good_values`` count as good,
    every other counter of the family as bad. ``labels`` restricts the
    family to counters carrying those label values.

    ``kind="latency"``: ``metric`` names a histogram; observations in
    buckets with upper bound <= ``threshold`` count as good.
    """

    name: str
    target: float
    kind: str = "availability"
    metric: str = "repro.sched.sla"
    labels: tuple[tuple[str, str], ...] = ()
    class_label: str = "outcome"
    good_values: tuple[str, ...] = ("ok",)
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1): {self.target}")
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind: {self.kind}")
        if self.kind == "latency" and self.threshold is None:
            raise ValueError(f"latency SLO {self.name} needs a threshold")

    def sample(self, metrics: MetricsRegistry) -> tuple[float, float]:
        """Cumulative (good, total) event counts right now."""
        if self.kind == "latency":
            return self._sample_latency(metrics)
        return self._sample_availability(metrics)

    def _sample_availability(
        self, metrics: MetricsRegistry
    ) -> tuple[float, float]:
        required = dict(self.labels)
        good = total = 0.0
        for instrument in metrics.find(self.metric):
            if instrument.name != self.metric or not isinstance(
                instrument, Counter
            ):
                continue
            labels = dict(instrument.labels)
            if any(labels.get(k) != v for k, v in required.items()):
                continue
            total += instrument.value
            if labels.get(self.class_label) in self.good_values:
                good += instrument.value
        return good, total

    def _sample_latency(self, metrics: MetricsRegistry) -> tuple[float, float]:
        histogram = metrics.get(self.metric, **dict(self.labels))
        if not isinstance(histogram, Histogram) or histogram.count == 0:
            return 0.0, 0.0
        # Buckets are upper bounds; everything at or below the threshold
        # bound is a good observation.
        cutoff = bisect.bisect_right(histogram.bounds, self.threshold)
        good = float(sum(histogram.counts[:cutoff]))
        return good, float(histogram.count)


@dataclass(frozen=True)
class BurnAlert:
    """One alert-state transition on the DES clock."""

    time: float
    objective: str
    rule: str
    state: str  # "firing" | "resolved"
    burn_short: float
    burn_long: float

    def render(self) -> str:
        return (
            f"{self.time:12.3f}s  {self.objective:<24} {self.rule:<10} "
            f"{self.state:<9} short={self.burn_short:.4f} "
            f"long={self.burn_long:.4f}"
        )


class SloEngine:
    """Evaluates objectives on the DES clock; keeps budgets and alerts."""

    def __init__(
        self,
        obs: "Observability",
        *,
        budget_window: float = 3600.0,
        burn_rules: tuple[tuple[str, float, float, float], ...] = (
            DEFAULT_BURN_RULES
        ),
        signal_window: float = 300.0,
    ):
        if budget_window <= 0:
            raise ValueError(f"budget window must be positive: {budget_window}")
        self.obs = obs
        self.budget_window = budget_window
        self.burn_rules = tuple(burn_rules)
        self.signal_window = signal_window
        self.objectives: dict[str, SLObjective] = {}
        #: Per objective: (time, good, total) cumulative samples, one per
        #: tick, pruned beyond the longest window anyone can ask about.
        self._samples: dict[str, list[tuple[float, float, float]]] = {}
        self._firing: set[tuple[str, str]] = set()
        self.alerts: list[BurnAlert] = []
        self.ticks = 0
        self._keep = max(
            [budget_window, signal_window]
            + [rule[2] for rule in self.burn_rules]
        )

    # ------------------------------------------------------------------
    # Registration & lifecycle
    # ------------------------------------------------------------------

    def register(self, objective: SLObjective) -> SLObjective:
        if objective.name in self.objectives:
            raise ValueError(f"objective {objective.name!r} already registered")
        self.objectives[objective.name] = objective
        now = self.obs.clock()
        # Baseline sample: windowed deltas measure burn *since
        # registration*, not counts accumulated before the SLO existed.
        self._samples[objective.name] = [
            (now, *objective.sample(self.obs.metrics))
        ]
        return objective

    def attach(
        self,
        simulator: "Simulator",
        *,
        interval: float = 5.0,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Schedule periodic ticks; returns the cancel function."""
        return simulator.schedule_periodic(interval, self.tick, until=until)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Snapshot every objective and update alert states."""
        now = self.obs.clock()
        self.ticks += 1
        for name, objective in sorted(self.objectives.items()):
            good, total = objective.sample(self.obs.metrics)
            samples = self._samples[name]
            samples.append((now, good, total))
            while len(samples) > 2 and samples[1][0] <= now - self._keep:
                samples.pop(0)
            self._update_alerts(now, objective)

    def _window_delta(
        self, name: str, window: float
    ) -> tuple[float, float]:
        """(bad, total) event deltas over the trailing ``window`` seconds."""
        samples = self._samples[name]
        now, good_now, total_now = samples[-1]
        cut = now - window
        base = samples[0]
        for sample in samples:
            if sample[0] > cut:
                break
            base = sample
        bad = (total_now - base[2]) - (good_now - base[1])
        total = total_now - base[2]
        return max(0.0, bad), max(0.0, total)

    def burn_rate(self, name: str, window: float) -> float:
        """Error-budget burn rate over the window; 1.0 = exactly on budget.

        Burn = measured bad fraction divided by the allowed bad fraction
        (``1 - target``). No traffic in the window burns nothing.
        """
        objective = self.objectives[name]
        bad, total = self._window_delta(name, window)
        if total <= 0.0:
            return 0.0
        return (bad / total) / (1.0 - objective.target)

    def burn_rate_signal(self) -> float:
        """Worst sustained burn across objectives (the controller hook)."""
        if not self.objectives:
            return 0.0
        return max(
            self.burn_rate(name, self.signal_window)
            for name in self.objectives
        )

    # ------------------------------------------------------------------
    # Alerts
    # ------------------------------------------------------------------

    def _update_alerts(self, now: float, objective: SLObjective) -> None:
        for rule, short, long_, threshold in self.burn_rules:
            burn_short = self.burn_rate(objective.name, short)
            burn_long = self.burn_rate(objective.name, long_)
            key = (objective.name, rule)
            firing = key in self._firing
            # Fire on both windows hot (fast reaction, long-window
            # confirmation); resolve as soon as the short window cools.
            if not firing and burn_short >= threshold and burn_long >= threshold:
                self._firing.add(key)
                self._record_alert(
                    now, objective.name, rule, "firing", burn_short, burn_long
                )
            elif firing and burn_short < threshold:
                self._firing.discard(key)
                self._record_alert(
                    now, objective.name, rule, "resolved", burn_short, burn_long
                )

    def _record_alert(
        self,
        now: float,
        objective: str,
        rule: str,
        state: str,
        burn_short: float,
        burn_long: float,
    ) -> None:
        alert = BurnAlert(
            time=now,
            objective=objective,
            rule=rule,
            state=state,
            burn_short=burn_short,
            burn_long=burn_long,
        )
        self.alerts.append(alert)
        self.obs.events.emit(
            "obs.slo.alert",
            objective=objective,
            rule=rule,
            state=state,
            burn_short=round(burn_short, 6),
            burn_long=round(burn_long, 6),
        )

    def alert_timeline(self) -> str:
        """Deterministic text rendering of every alert transition."""
        return "\n".join(alert.render() for alert in self.alerts) + (
            "\n" if self.alerts else ""
        )

    # ------------------------------------------------------------------
    # Error budgets
    # ------------------------------------------------------------------

    def ledger(self) -> list[dict]:
        """Per-objective error-budget accounting over the budget window."""
        rows = []
        for name in sorted(self.objectives):
            objective = self.objectives[name]
            bad, total = self._window_delta(name, self.budget_window)
            allowed = (1.0 - objective.target) * total
            if allowed > 0.0:
                consumed = bad / allowed
            else:
                consumed = 1.0 if bad > 0.0 else 0.0
            compliance = 1.0 - (bad / total) if total > 0.0 else 1.0
            rows.append(
                {
                    "objective": name,
                    "kind": objective.kind,
                    "target": objective.target,
                    "window": self.budget_window,
                    "good": total - bad,
                    "total": total,
                    "bad": bad,
                    "compliance": compliance,
                    "budget_consumed": consumed,
                    "budget_remaining": 1.0 - consumed,
                    "met": compliance >= objective.target,
                }
            )
        return rows

    def render_ledger(self) -> str:
        """Deterministic text table of the error-budget ledger."""
        lines = [
            f"{'objective':<24} {'target':>8} {'compliance':>11} "
            f"{'bad':>8} {'total':>8} {'budget used':>12}  met"
        ]
        for row in self.ledger():
            lines.append(
                f"{row['objective']:<24} {row['target']:>8.4f} "
                f"{row['compliance']:>11.6f} {row['bad']:>8.0f} "
                f"{row['total']:>8.0f} {row['budget_consumed']:>11.1%}  "
                f"{'yes' if row['met'] else 'NO'}"
            )
        return "\n".join(lines) + "\n"
