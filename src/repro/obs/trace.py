"""Per-query tracing: span trees on the virtual clock.

A *trace* is one tree of spans rooted at the Cubrick proxy: the root
span covers the whole proxied query, with child spans for each regional
coordinator attempt, per-host brick scans under those, and leaf spans
for partition/kernel work. Subsystems that act outside any query (SM
migrations, datastore watch deliveries) open root spans of their own.

Because the simulation models latency *statistically* — sampled service
times rather than advancing the DES clock during execution — spans
carry an explicit :meth:`Span.set_duration` used to record the simulated
time a stage took. Spans whose duration is never set close with the
virtual-clock delta (zero for synchronous in-sim work), which keeps the
span *structure* intact for annotation-only leaves.

The tracer keeps a bounded deque of recent traces plus a top-K list of
the slowest ones, so long experiments can still show their worst
queries without unbounded memory.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator, Optional


class Span:
    """One named stage of a trace, with labels, annotations and children."""

    __slots__ = (
        "name", "trace_id", "span_id", "start", "end",
        "labels", "annotations", "children",
    )

    def __init__(
        self,
        name: str,
        trace_id: int = 0,
        span_id: int = 0,
        start: float = 0.0,
        labels: Optional[dict[str, object]] = None,
        annotations: Optional[dict[str, object]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.start = start
        self.end: Optional[float] = None
        self.labels = labels if labels is not None else {}
        self.annotations = annotations if annotations is not None else {}
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Seconds of (simulated) time this span covers; 0 while open.

        Clamped non-negative: under the serving tier's real clock a span
        can be backdated past a slightly-jittered close timestamp, and a
        negative duration would poison percentile readouts. On the
        monotone DES clock the clamp never fires.
        """
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def set_duration(self, duration: float) -> None:
        """Record the simulated duration of this span explicitly."""
        if duration < 0:
            raise ValueError(f"span {self.name}: negative duration {duration}")
        self.end = self.start + duration

    def annotate(self, **fields: object) -> "Span":
        """Attach key/value diagnostics (row counts, outcomes...)."""
        self.annotations.update(fields)
        return self

    def shift(self, offset: float) -> "Span":
        """Translate this span and its whole subtree later by ``offset``.

        The simulated clock does not advance while a query executes, so
        sequential work (retry attempts, backoff, post-scan merges) is
        initially stamped at the same instant. Callers that know the
        simulated schedule shift sub-spans onto it, which is what lets
        the profiler attribute wall time by interval sweep.
        """
        if offset == 0.0:
            return self
        self.start += offset
        if self.end is not None:
            self.end += offset
        for child in self.children:
            child.shift(offset)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready representation (deterministic field order)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "labels": {k: self.labels[k] for k in sorted(self.labels)},
            "annotations": {
                k: self.annotations[k] for k in sorted(self.annotations)
            },
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"duration={self.duration:.6f}s, children={len(self.children)})"
        )


class Tracer:
    """Opens and collects span trees; nesting follows the call stack.

    The simulation executes queries synchronously, so a plain span stack
    gives correct parent/child attribution without any context-variable
    machinery.
    """

    def __init__(
        self,
        clock: Callable[[], float] = lambda: 0.0,
        *,
        keep_recent: int = 128,
        keep_slowest: int = 8,
    ):
        if keep_recent <= 0 or keep_slowest <= 0:
            raise ValueError("tracer capacities must be positive")
        self.clock = clock
        self._stack: list[Span] = []
        self._trace_seq = 0
        self._span_seq = 0
        self.finished_traces = 0
        self.recent: deque[Span] = deque(maxlen=keep_recent)
        self._keep_slowest = keep_slowest
        # Top-K slowest roots, kept *per root-span name* so second-scale
        # background traces (SMC propagation) cannot evict millisecond
        # query traces from the readout.
        self._slowest: dict[str, list[Span]] = {}

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Span]:
        """Open a span as a child of the current one (or a new root)."""
        self._span_seq += 1
        if not self._stack:
            self._trace_seq += 1
            trace_id = self._trace_seq
        else:
            trace_id = self._stack[-1].trace_id
        span = Span(
            name,
            trace_id=trace_id,
            span_id=self._span_seq,
            start=self.clock(),
            labels=labels,
        )
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            popped = self._stack.pop()
            assert popped is span, "span stack corrupted"
            if span.end is None:
                # Non-decreasing clamp: a backdated start (queue-wait
                # roots) combined with real-clock jitter must never
                # close a span before it opened.
                span.end = max(self.clock(), span.start)
            if not self._stack:
                self._finish_root(span)

    def _finish_root(self, root: Span) -> None:
        self.finished_traces += 1
        self.recent.append(root)
        bucket = self._slowest.setdefault(root.name, [])
        bucket.append(root)
        # Deterministic ranking: duration desc, then earlier trace wins.
        bucket.sort(key=lambda s: (-s.duration, s.trace_id))
        del bucket[self._keep_slowest:]

    def slowest(
        self, n: Optional[int] = None, *, name: Optional[str] = None
    ) -> list[Span]:
        """The slowest completed root spans, slowest first.

        ``name`` restricts to roots of one span name; otherwise the
        per-name top lists are merged (grouped by name, names sorted)
        so every kind of trace stays visible in exports.
        """
        if name is not None:
            spans = list(self._slowest.get(name, []))
        else:
            spans = [
                span
                for root_name in sorted(self._slowest)
                for span in self._slowest[root_name]
            ]
        return spans if n is None else spans[:n]

    def to_dicts(self, n: Optional[int] = None, *,
                 name: Optional[str] = None) -> list[dict]:
        return [span.to_dict() for span in self.slowest(n, name=name)]
