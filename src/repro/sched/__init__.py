"""Workload management: admission control, executor queues, result cache.

The subsystem sits in front of the Cubrick deployment and models the
production traffic-management layer the paper's SLA story depends on:
per-node executor queues with concurrency slots and EDF dispatch,
token-bucket admission with adaptive SLA-defending shedding, and a
versioned-key query result cache. See ARCHITECTURE.md § Workload
management.
"""

from repro.sched.admission import (
    REASON_OK,
    REASON_QUOTA,
    REASON_SHED,
    REASON_TENANT_QUOTA,
    AdaptiveShedder,
    AdmissionControllerV2,
    AdmissionDecision,
    SlidingWindowAdmission,
    TokenBucket,
)
from repro.sched.cache import (
    CACHE_HIT_LATENCY,
    CacheStats,
    QueryResultCache,
    plan_key,
)
from repro.sched.manager import JobRecord, SchedPolicy, WorkloadManager
from repro.sched.queue import (
    OUTCOME_EXPIRED,
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_QUEUE_FULL,
    ExecutorQueue,
    NodeSlots,
    PriorityClass,
    QueueStats,
    ScheduledJob,
)

__all__ = [
    "AdaptiveShedder",
    "AdmissionControllerV2",
    "AdmissionDecision",
    "CACHE_HIT_LATENCY",
    "CacheStats",
    "ExecutorQueue",
    "JobRecord",
    "NodeSlots",
    "OUTCOME_EXPIRED",
    "OUTCOME_FAILED",
    "OUTCOME_OK",
    "OUTCOME_QUEUE_FULL",
    "PriorityClass",
    "QueryResultCache",
    "QueueStats",
    "REASON_OK",
    "REASON_QUOTA",
    "REASON_SHED",
    "REASON_TENANT_QUOTA",
    "ScheduledJob",
    "SchedPolicy",
    "SlidingWindowAdmission",
    "TokenBucket",
    "WorkloadManager",
    "plan_key",
]
