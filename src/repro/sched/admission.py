"""Admission control: sliding windows, token buckets, adaptive shedding.

Three generations of the proxy front door live here:

* :class:`SlidingWindowAdmission` — the original 37-line sliding-window
  QPS limiter absorbed from ``repro.cubrick.proxy`` (the proxy keeps a
  behaviour-identical ``AdmissionController`` shim subclassing it).
  Includes the fast-path fix: arrivals are recorded even while no limit
  is configured, so tightening ``max_qps`` mid-run sees the true recent
  rate instead of an empty window.
* :class:`TokenBucket` — deterministic token bucket refilled from the
  virtual clock; the building block for global and per-tenant quotas.
* :class:`AdmissionControllerV2` — the workload-management front door:
  a global bucket, per-tenant buckets (the multi-tenant fairness lever,
  paper §II-C) and an optional :class:`AdaptiveShedder` that reads the
  observed success ratio from the shared ``repro.obs`` metrics registry
  and sheds lowest-priority-first to defend the SLA under overload.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError
from repro.sched.queue import PriorityClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import MetricsRegistry

#: Admission decision reasons (also used as obs counter labels).
REASON_OK = "ok"
REASON_QUOTA = "quota"
REASON_TENANT_QUOTA = "tenant_quota"
REASON_SHED = "shed"


@dataclass
class SlidingWindowAdmission:
    """Sliding-window QPS limiter, global plus per-table quotas.

    Per-table quotas are the multi-tenant fairness lever: the paper
    notes multi-tenant systems must keep single users or tables from
    monopolising cluster capacity (§II-C); table-level rate limits are
    the query-side counterpart of the table-size limits it describes.
    """

    max_qps: float = float("inf")
    window: float = 1.0
    table_qps: dict = field(default_factory=dict)
    _recent: deque = field(default_factory=deque)
    _recent_per_table: dict = field(default_factory=dict)

    def set_table_quota(self, table: str, max_qps: float) -> None:
        if max_qps <= 0:
            raise ValueError(f"table quota must be positive: {max_qps}")
        self.table_qps[table] = max_qps

    def admit(self, now: float, table: Optional[str] = None) -> bool:
        # Admitted queries are recorded unconditionally — even while no
        # limit is configured. The old fast path returned early when
        # ``max_qps`` was infinite and the table had no quota, so
        # tightening the global limit mid-run started from an *empty*
        # window and over-admitted a full window's worth of traffic.
        while self._recent and now - self._recent[0] >= self.window:
            self._recent.popleft()
        if len(self._recent) >= self.max_qps * self.window:
            return False
        quota = self.table_qps.get(table) if table is not None else None
        if quota is not None:
            recent = self._recent_per_table.setdefault(table, deque())
            while recent and now - recent[0] >= self.window:
                recent.popleft()
            if len(recent) >= quota * self.window:
                return False
            recent.append(now)
        self._recent.append(now)
        return True


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/s up to ``burst``.

    Refill is computed from the caller-supplied virtual time, so two
    identically-seeded runs make identical decisions. The bucket starts
    full at the time of its first use.
    """

    def __init__(self, rate: float, burst: Optional[float] = None):
        if rate <= 0:
            raise ConfigurationError(f"token rate must be positive: {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst <= 0:
            raise ConfigurationError(f"burst must be positive: {self.burst}")
        self.tokens = self.burst
        self._last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._last is None:
            self._last = now
            return
        elapsed = max(0.0, now - self._last)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last = now

    def peek(self, now: float, n: float = 1.0) -> bool:
        """Would ``n`` tokens be available at ``now``? (refills, no take)"""
        self._refill(now)
        return self.tokens >= n

    def take(self, now: float, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; returns success."""
        self._refill(now)
        if self.tokens < n:
            return False
        self.tokens -= n
        return True


class AdaptiveShedder:
    """SLA-defending load shedder, lowest-priority-first.

    Reads the observed success ratio from the shared metrics registry
    (the ``repro.sched.sla{outcome=ok|miss}`` counters the workload
    manager maintains) over a sliding window, combines it with queue
    pressure, and keeps a shed *level* in ``[0, 1]``:

    * SLA breach or near-full queues → level jumps up (multiplicative);
    * healthy window → level decays linearly with virtual time.

    The level maps onto the priority ladder: BACKGROUND sheds first
    (level ≥ 0.25), BATCH next (level ≥ 0.5); INTERACTIVE is the class
    the SLA defends and is never shed. Everything is driven by the
    virtual clock and counter values — no RNG, no wall time — so seeded
    runs shed byte-identically.
    """

    #: Shed thresholds per priority class (INTERACTIVE never sheds).
    THRESHOLDS = {
        PriorityClass.BACKGROUND: 0.25,
        PriorityClass.BATCH: 0.5,
        PriorityClass.INTERACTIVE: float("inf"),
    }

    def __init__(
        self,
        metrics: "MetricsRegistry",
        *,
        sla_target: float = 0.99,
        window: float = 5.0,
        min_samples: int = 20,
        step_up: float = 0.25,
        recovery_per_second: float = 0.1,
        pressure_trigger: float = 0.8,
        pressure_fn: Optional[Callable[[], float]] = None,
    ):
        if not 0.0 < sla_target <= 1.0:
            raise ConfigurationError(f"sla_target out of range: {sla_target}")
        if window <= 0:
            raise ConfigurationError(f"window must be positive: {window}")
        self._ok = metrics.counter("repro.sched.sla", outcome="ok")
        self._miss = metrics.counter("repro.sched.sla", outcome="miss")
        self.sla_target = sla_target
        self.window = window
        self.min_samples = min_samples
        self.step_up = step_up
        self.recovery_per_second = recovery_per_second
        self.pressure_trigger = pressure_trigger
        self.pressure_fn = pressure_fn
        self.level = 0.0
        self.max_level = 0.0
        self._snapshots: deque = deque()  # (time, ok_count, miss_count)
        self._last_update: Optional[float] = None

    def observed_success_ratio(self, now: float) -> Optional[float]:
        """Success ratio over the trailing window, from the obs counters.

        Returns None until the window holds ``min_samples`` outcomes.
        """
        self._snapshots.append((now, self._ok.value, self._miss.value))
        while self._snapshots and now - self._snapshots[0][0] > self.window:
            self._snapshots.popleft()
        then_time, ok0, miss0 = self._snapshots[0]
        ok = self._ok.value - ok0
        miss = self._miss.value - miss0
        total = ok + miss
        if total < self.min_samples:
            return None
        return ok / total

    def update(self, now: float) -> float:
        """Advance the shed level; returns the new level."""
        ratio = self.observed_success_ratio(now)
        pressure = self.pressure_fn() if self.pressure_fn is not None else 0.0
        breaching = (ratio is not None and ratio < self.sla_target) or (
            pressure >= self.pressure_trigger
        )
        if breaching:
            self.level = min(1.0, self.level + self.step_up)
        elif self._last_update is not None:
            elapsed = max(0.0, now - self._last_update)
            self.level = max(0.0, self.level - elapsed * self.recovery_per_second)
        self._last_update = now
        self.max_level = max(self.max_level, self.level)
        return self.level

    def should_shed(self, now: float, priority: PriorityClass) -> bool:
        """Decide for one arrival (also advances the level)."""
        self.update(now)
        return self.level >= self.THRESHOLDS[priority]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str  # REASON_OK | REASON_QUOTA | REASON_TENANT_QUOTA | REASON_SHED


class AdmissionControllerV2:
    """Token-bucket admission with per-tenant quotas and adaptive shedding.

    Decision order: shed check first (shedding exists to protect the
    work the buckets would otherwise admit), then the global bucket,
    then the tenant's bucket. Bucket tokens are only consumed when the
    query is admitted — a rejection never burns quota.
    """

    def __init__(
        self,
        *,
        global_rate: Optional[float] = None,
        global_burst: Optional[float] = None,
        tenant_rates: Optional[dict[str, float]] = None,
        default_tenant_rate: Optional[float] = None,
        shedder: Optional[AdaptiveShedder] = None,
    ):
        self.global_bucket = (
            TokenBucket(global_rate, global_burst) if global_rate is not None else None
        )
        self._tenant_rates = dict(tenant_rates or {})
        self.default_tenant_rate = default_tenant_rate
        self.tenant_buckets: dict[str, TokenBucket] = {}
        self.shedder = shedder

    def set_tenant_rate(self, tenant: str, rate: float) -> None:
        self._tenant_rates[tenant] = rate
        self.tenant_buckets.pop(tenant, None)

    def _bucket_for(self, tenant: Optional[str]) -> Optional[TokenBucket]:
        if tenant is None:
            return None
        bucket = self.tenant_buckets.get(tenant)
        if bucket is None:
            rate = self._tenant_rates.get(tenant, self.default_tenant_rate)
            if rate is None:
                return None
            bucket = TokenBucket(rate)
            self.tenant_buckets[tenant] = bucket
        return bucket

    def decide(
        self,
        now: float,
        *,
        tenant: Optional[str] = None,
        priority: PriorityClass = PriorityClass.INTERACTIVE,
    ) -> AdmissionDecision:
        """One admission decision at virtual time ``now``."""
        if self.shedder is not None and self.shedder.should_shed(now, priority):
            return AdmissionDecision(False, REASON_SHED)
        tenant_bucket = self._bucket_for(tenant)
        if self.global_bucket is not None and not self.global_bucket.peek(now):
            return AdmissionDecision(False, REASON_QUOTA)
        if tenant_bucket is not None and not tenant_bucket.peek(now):
            return AdmissionDecision(False, REASON_TENANT_QUOTA)
        # Both checks passed: commit the tokens.
        if self.global_bucket is not None:
            self.global_bucket.take(now)
        if tenant_bucket is not None:
            tenant_bucket.take(now)
        return AdmissionDecision(True, REASON_OK)
