"""Query result cache keyed by normalised plan + ingestion generation.

Dashboard workloads repeat: the same handful of queries per tenant run
over and over, and serving a repeat from the proxy without touching the
cluster is the cheapest capacity there is. Correctness is by *versioned
keys*, not explicit invalidation: a cache key includes the table's
partitioning generation (bumped by re-partitions) and its ingestion
generation (bumped by every load and by every streaming-loader flush),
so any write makes all previously cached answers for the table
unreachable — they age out of the LRU ring. An explicit
:meth:`QueryResultCache.invalidate_table` is provided for operators who
want the memory back immediately.

The normalised plan is the canonical SQL rendering from
:mod:`repro.cubrick.sql` — two structurally identical queries built
through different code paths share one cache line.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cubrick.query import Query, QueryResult

#: Modelled latency of answering from the proxy-local cache (seconds).
CACHE_HIT_LATENCY = 0.0002


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def plan_key(query: "Query") -> str:
    """Normalised plan text for one query (canonical SQL rendering)."""
    from repro.cubrick.sql import render_query

    return render_query(query)


class QueryResultCache:
    """Bounded LRU of finalised query results with versioned keys."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ConfigurationError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        # key -> QueryResult snapshot; key embeds both generations.
        self._entries: "OrderedDict[tuple, QueryResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(table: str, plan: str, generation: int, ingest_generation: int) -> tuple:
        return (table, generation, ingest_generation, plan)

    def get(
        self,
        query: "Query",
        *,
        generation: int,
        ingest_generation: int,
    ) -> Optional["QueryResult"]:
        """Cached result for this plan at these versions, or None.

        Returns an independent copy: callers mutate result metadata
        (latency accounting, attempt counts) and must never corrupt the
        cached snapshot.
        """
        key = self._key(query.table, plan_key(query), generation, ingest_generation)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return self._copy(entry)

    def put(
        self,
        query: "Query",
        result: "QueryResult",
        *,
        generation: int,
        ingest_generation: int,
    ) -> None:
        """Cache one result snapshot (full, non-degraded answers only).

        Partial or degraded answers are refused: a cache must never
        replay an answer that was only acceptable under the failure
        conditions of the moment it was computed.
        """
        if result.metadata.get("partial") or result.metadata.get("degraded"):
            return
        key = self._key(query.table, plan_key(query), generation, ingest_generation)
        self._entries[key] = self._copy(result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_table(self, table: str) -> int:
        """Drop every cached entry for ``table``; returns entries dropped."""
        stale = [key for key in self._entries if key[0] == table]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    @staticmethod
    def _copy(result: "QueryResult") -> "QueryResult":
        from repro.cubrick.query import QueryResult

        return QueryResult(
            columns=result.columns,
            rows=list(result.rows),
            rows_scanned=result.rows_scanned,
            bricks_scanned=result.bricks_scanned,
            metadata=dict(result.metadata),
        )
