"""WorkloadManager: the workload-management front door over the proxy.

Ties the subsystem together for one deployment::

    arrival ──► result cache ──► admission (buckets + shedder) ──► per-node
                (bypass)          reject: quota / tenant / shed     ExecutorQueue
                                                                    reject: queue_full
                                                                    drop:   deadline
                                                                        │
                                                                        ▼
                                                               CubrickProxy.submit

Every submitted query produces exactly one :class:`JobRecord` whose
outcome is one of ``ok | failed | cache_hit | shed | quota |
tenant_quota | queue_full | deadline``. Rejections and sheds are *not*
silent: each increments a ``repro.sched.admission`` counter labelled by
reason and emits a structured event, so overload shows up in ``repro
obs`` output and post-mortem dumps.

The SLA the manager accounts (and the adaptive shedder defends) is
**admitted-query success**: of the queries given a queue slot (or served
from cache), the fraction that completed within their deadline. Shed
and rejected queries hurt *goodput*, not the SLA — that is the paper's
trade restated for overload: shed explicitly and keep your promise to
what you admitted, or admit everything and break it for everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError
from repro.sched.admission import (
    REASON_OK,
    AdaptiveShedder,
    AdmissionControllerV2,
)
from repro.sched.cache import CACHE_HIT_LATENCY, QueryResultCache
from repro.sched.queue import (
    OUTCOME_OK,
    ExecutorQueue,
    PriorityClass,
    ScheduledJob,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import CubrickDeployment
    from repro.cubrick.query import Query, QueryResult


@dataclass(frozen=True)
class SchedPolicy:
    """Knobs for one workload-management configuration.

    :meth:`legacy` reproduces the pre-subsystem behaviour — unbounded
    queue depth, no admission beyond the proxy's sliding window, no
    shedding, no cache, deadlines recorded for SLA accounting but never
    enforced — the configuration the overload demo shows collapsing.
    """

    slots_per_node: int = 4
    max_queue_depth: Optional[int] = 32
    #: Per-query latency budget, seconds (relative to arrival). Used for
    #: EDF ordering, queue-side drops, and SLA accounting.
    deadline: Optional[float] = 2.0
    #: False = deadlines are accounted but never enforced (legacy).
    enforce_deadlines: bool = True
    global_rate: Optional[float] = None
    tenant_rate: Optional[float] = None
    adaptive_shedding: bool = True
    sla_target: float = 0.99
    shed_window: float = 5.0
    cache_capacity: int = 256

    @classmethod
    def managed(cls, **overrides) -> "SchedPolicy":
        """The defended configuration (defaults, overridable)."""
        return cls(**overrides)

    @classmethod
    def legacy(cls, **overrides) -> "SchedPolicy":
        """Pre-workload-management behaviour: admit everything, queue forever."""
        params = dict(
            max_queue_depth=None,
            enforce_deadlines=False,
            global_rate=None,
            tenant_rate=None,
            adaptive_shedding=False,
            cache_capacity=0,
        )
        params.update(overrides)
        return cls(**params)


@dataclass
class JobRecord:
    """The client-visible record of one submitted query."""

    index: int
    tenant: Optional[str]
    priority: PriorityClass
    table: str
    submitted: float
    outcome: str = "pending"
    queue_delay: float = 0.0
    latency: float = 0.0  # queue delay + service time (client-observed)
    sla_ok: bool = False
    node: Optional[str] = None  # executor queue that served it
    error: Optional[str] = None
    #: The answer itself (cache hit or fresh execution). The serving
    #: tier returns it to clients; simulation-side consumers that only
    #: tally outcomes can keep ignoring it.
    result: Optional["QueryResult"] = None

    @property
    def admitted(self) -> bool:
        """Given capacity: queued (even if later dropped) or cache-served."""
        return self.outcome in ("ok", "failed", "deadline", "cache_hit")


class WorkloadManager:
    """Admission, caching and executor queues in front of one deployment."""

    def __init__(
        self,
        deployment: "CubrickDeployment",
        *,
        policy: Optional[SchedPolicy] = None,
    ):
        self.deployment = deployment
        self.policy = policy if policy is not None else SchedPolicy()
        self.obs = deployment.obs
        simulator = deployment.simulator
        # One executor queue per region's coordinator node — the
        # execution entry point of each region in this architecture.
        self.queues: dict[str, ExecutorQueue] = {
            region: ExecutorQueue(
                simulator,
                name=region,
                slots=self.policy.slots_per_node,
                max_depth=self.policy.max_queue_depth,
                obs=self.obs,
            )
            for region in sorted(deployment.coordinators)
        }
        self._queue_order = sorted(self.queues)
        self._next_queue = 0
        shedder = None
        if self.policy.adaptive_shedding:
            shedder = AdaptiveShedder(
                self.obs.metrics,
                sla_target=self.policy.sla_target,
                window=self.policy.shed_window,
                pressure_fn=self.queue_pressure,
            )
        self.shedder = shedder
        if (
            self.policy.global_rate is not None
            or self.policy.tenant_rate is not None
            or shedder is not None
        ):
            self.admission: Optional[AdmissionControllerV2] = AdmissionControllerV2(
                global_rate=self.policy.global_rate,
                default_tenant_rate=self.policy.tenant_rate,
                shedder=shedder,
            )
        else:
            self.admission = None
        self.cache: Optional[QueryResultCache] = None
        if self.policy.cache_capacity > 0:
            # Install the proxy-level result cache (shared: direct
            # proxy.submit callers benefit too); reuse one if present.
            if deployment.proxy.result_cache is None:
                deployment.proxy.result_cache = QueryResultCache(
                    self.policy.cache_capacity
                )
            self.cache = deployment.proxy.result_cache
        self.records: list[JobRecord] = []
        self._outstanding = 0
        self._sla_ok = self.obs.metrics.counter("repro.sched.sla", outcome="ok")
        self._sla_miss = self.obs.metrics.counter("repro.sched.sla", outcome="miss")

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def queue_pressure(self) -> float:
        """Worst queue fullness across executor nodes, in [0, 1]."""
        return max(queue.pressure for queue in self.queues.values())

    def outstanding(self) -> int:
        """Jobs submitted but not yet resolved."""
        return self._outstanding

    def admitted_success_ratio(self) -> float:
        """SLA-met fraction of admitted (queued or cache-served) queries."""
        admitted = [r for r in self.records if r.admitted]
        if not admitted:
            return 1.0
        return sum(1 for r in admitted if r.sla_ok) / len(admitted)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: "Query",
        *,
        tenant: Optional[str] = None,
        priority: PriorityClass = PriorityClass.INTERACTIVE,
        on_done: Optional[Callable[[JobRecord], None]] = None,
    ) -> JobRecord:
        """Submit one query through admission, cache and the queues.

        Returns the job's record immediately; its ``outcome`` resolves
        either synchronously (cache hit, shed, rejection) or when the
        queue completes it in virtual time. ``on_done`` fires exactly
        once in both cases.
        """
        now = self.deployment.simulator.now
        record = JobRecord(
            index=len(self.records),
            tenant=tenant,
            priority=priority,
            table=query.table,
            submitted=now,
        )
        self.records.append(record)

        if self.cache is not None:
            info = self.deployment.catalog.get(query.table)
            hit = self.cache.get(
                query,
                generation=info.generation,
                ingest_generation=info.ingest_generation,
            )
            if hit is not None:
                record.outcome = "cache_hit"
                record.result = hit
                record.latency = CACHE_HIT_LATENCY
                record.sla_ok = True
                self._sla_ok.inc()
                self.obs.metrics.counter(
                    "repro.sched.cache", outcome="hit"
                ).inc()
                if on_done is not None:
                    on_done(record)
                return record
            self.obs.metrics.counter("repro.sched.cache", outcome="miss").inc()

        if self.admission is not None:
            decision = self.admission.decide(now, tenant=tenant, priority=priority)
            if not decision.admitted:
                record.outcome = decision.reason
                self._count_rejection(decision.reason, record)
                if on_done is not None:
                    on_done(record)
                return record
            self.obs.metrics.counter(
                "repro.sched.admission", reason=REASON_OK
            ).inc()

        queue_name = self._queue_order[self._next_queue % len(self._queue_order)]
        self._next_queue += 1
        record.node = queue_name
        deadline = None
        if self.policy.deadline is not None and self.policy.enforce_deadlines:
            deadline = now + self.policy.deadline
        job = ScheduledJob(
            label=f"{tenant or 'anon'}:{query.table}",
            priority=priority,
            deadline=deadline,
            execute=lambda: self._execute(query, record),
            on_complete=lambda job: self._finish(record, job, on_done),
        )
        self._outstanding += 1
        self.queues[queue_name].submit(job)
        return record

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _execute(self, query: "Query", record: JobRecord) -> float:
        """Run one query through the proxy; returns its total latency.

        The manager already consulted the cache, so lookup is skipped;
        the proxy still *stores* the fresh answer for future hits.

        A managed query's trace is rooted here: the root span is
        backdated to the job's arrival with an explicit queue-wait child
        covering [submitted, dispatch], then the proxy's span (and the
        whole coordinator/scan subtree) nests beneath it, so profiles
        attribute end-to-end wall time from submission to completion.
        """
        now = self.deployment.simulator.now
        queue_wait = max(0.0, now - record.submitted)
        with self.obs.tracer.span(
            "repro.sched.query",
            table=query.table,
            tenant=str(record.tenant),
            priority=record.priority.name.lower(),
        ) as root:
            root.start = record.submitted
            with self.obs.tracer.span("repro.sched.queue.wait") as wait_span:
                wait_span.start = record.submitted
                wait_span.set_duration(queue_wait)
                wait_span.annotate(queue=str(record.node))
            with self.obs.tracer.span("repro.sched.admission") as adm_span:
                adm_span.set_duration(0.0)
                adm_span.annotate(reason=REASON_OK)
            try:
                result = self.deployment.proxy.submit(query, cache_lookup=False)
            except Exception as exc:
                root.set_duration(queue_wait)
                root.annotate(outcome="failed", error=str(exc))
                raise
            record.result = result
            latency = float(result.metadata.get("latency_total", 0.0))
            root.set_duration(queue_wait + latency)
            root.annotate(outcome="ok", queue_wait=queue_wait)
        return latency

    def _finish(
        self,
        record: JobRecord,
        job: ScheduledJob,
        on_done: Optional[Callable[[JobRecord], None]],
    ) -> None:
        self._outstanding -= 1
        record.outcome = job.outcome
        record.queue_delay = job.queue_delay
        record.latency = job.total_latency
        record.error = job.error
        sla_deadline = (
            record.submitted + self.policy.deadline
            if self.policy.deadline is not None
            else None
        )
        if job.outcome == OUTCOME_OK:
            record.sla_ok = (
                sla_deadline is None
                or (job.completed is not None and job.completed <= sla_deadline)
            )
        else:
            record.sla_ok = False
        if record.admitted:
            (self._sla_ok if record.sla_ok else self._sla_miss).inc()
        if job.outcome in ("queue_full", "deadline"):
            self._count_rejection(job.outcome, record)
        if on_done is not None:
            on_done(record)

    def _count_rejection(self, reason: str, record: JobRecord) -> None:
        self.obs.metrics.counter("repro.sched.admission", reason=reason).inc()
        self.obs.events.emit(
            "repro.sched.rejected",
            reason=reason,
            tenant=str(record.tenant),
            table=record.table,
            priority=record.priority.name.lower(),
        )

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def drain(self, *, max_time: float = 900.0, step: float = 5.0) -> bool:
        """Advance virtual time until every submitted job resolves.

        Returns True when fully drained; False if ``max_time`` virtual
        seconds elapsed first (pathological backlogs — report what
        happened rather than spinning forever).
        """
        if step <= 0:
            raise ConfigurationError(f"drain step must be positive: {step}")
        simulator = self.deployment.simulator
        horizon = simulator.now + max_time
        while self._outstanding and simulator.now < horizon:
            simulator.run_until(min(simulator.now + step, horizon))
        return self._outstanding == 0
