"""Executor queues: concurrency slots, bounded depth, EDF dispatch.

Query execution in this reproduction is logically instantaneous — the
coordinator *samples* a service time and reports it as latency — so an
unmanaged deployment has unbounded concurrency: a thousand queries
arriving in the same virtual second all "execute" immediately and none
of them waits. Real engines have a fixed number of execution slots per
node, and under overload the difference between a bounded queue with a
dispatch discipline and an unbounded FIFO is the difference between a
defended SLA and a latency collapse ("Enhancing OLAP Resilience at
LinkedIn", PAPERS.md).

Two pieces model that here:

* :class:`ExecutorQueue` — a genuinely event-driven queue bound to the
  DES simulator. Jobs occupy one of ``slots`` concurrency slots for
  their (sampled) service time; slots free up via completion events on
  the virtual clock, so queueing delay is real virtual time that shows
  up in query latency. Waiting jobs dispatch in **priority-class order,
  then earliest-deadline-first (EDF)** within a class; jobs whose
  deadline lapses while queued are dropped without execution, and jobs
  arriving at a full queue are rejected immediately (load shedding at
  the queue, the last line of defence behind admission control).
* :class:`NodeSlots` — a lighter per-host concurrency shaper used inside
  the region coordinator: each host scan claims the earliest-free of
  ``slots`` lanes, and the lane wait is added to the scan's service
  time. It models slot contention *across* queries arriving at
  different virtual times without reordering (scans resolve at arrival).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.sim.engine import Simulator


class PriorityClass(enum.IntEnum):
    """Workload priority classes; lower value = more important.

    The shedding ladder drops BACKGROUND first, then BATCH; INTERACTIVE
    traffic is what the SLA defends and is never shed adaptively.
    """

    INTERACTIVE = 0
    BATCH = 1
    BACKGROUND = 2


#: Job outcome labels (also used as obs counter labels).
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_QUEUE_FULL = "queue_full"
OUTCOME_EXPIRED = "deadline"


@dataclass
class ScheduledJob:
    """One unit of work submitted to an :class:`ExecutorQueue`.

    ``execute`` runs the query synchronously and returns its service
    latency in virtual seconds (the DES clock does not advance during
    execution; the queue schedules the slot release that far in the
    future). ``deadline`` is an *absolute* virtual time; a job that is
    still queued past it is dropped without executing.
    """

    label: str
    priority: PriorityClass
    execute: Callable[[], float]
    deadline: Optional[float] = None
    on_complete: Optional[Callable[["ScheduledJob"], None]] = None
    # Filled in by the queue:
    arrival: float = 0.0
    started: Optional[float] = None
    completed: Optional[float] = None
    outcome: str = "pending"
    queue_delay: float = 0.0
    service_latency: float = 0.0
    error: Optional[str] = None

    @property
    def total_latency(self) -> float:
        """Queue wait plus service time (what the client observes)."""
        return self.queue_delay + self.service_latency

    @property
    def sla_ok(self) -> bool:
        """Completed successfully within its deadline (if it had one)."""
        if self.outcome != OUTCOME_OK:
            return False
        if self.deadline is None or self.completed is None:
            return self.outcome == OUTCOME_OK
        return self.completed <= self.deadline


@dataclass
class QueueStats:
    """Lifetime counters for one executor queue."""

    submitted: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    rejected_full: int = 0
    expired: int = 0
    max_depth: int = 0  # peak number of *waiting* jobs ever observed
    total_wait: float = 0.0  # summed queue delay of dispatched jobs

    def mean_wait(self) -> float:
        return self.total_wait / self.dispatched if self.dispatched else 0.0


class ExecutorQueue:
    """A bounded, EDF-ordered executor with DES-driven slot release."""

    def __init__(
        self,
        simulator: "Simulator",
        *,
        name: str = "executor",
        slots: int = 4,
        max_depth: Optional[int] = 64,
        obs: Optional["Observability"] = None,
    ):
        if slots <= 0:
            raise ConfigurationError(f"executor slots must be positive: {slots}")
        if max_depth is not None and max_depth < 0:
            raise ConfigurationError(
                f"queue depth must be non-negative: {max_depth}"
            )
        self.simulator = simulator
        self.name = name
        self.slots = slots
        self.max_depth = max_depth
        self.stats = QueueStats()
        self._running = 0
        # (priority, deadline-or-inf, seq, job): strict weak order with a
        # deterministic sequence tie-breaker, matching the DES engine.
        self._waiting: list[tuple[int, float, int, ScheduledJob]] = []
        self._seq = itertools.count()
        if obs is not None:
            self._jobs_counter = lambda outcome: obs.metrics.counter(
                "repro.sched.queue.jobs", node=name, outcome=outcome
            )
            self._wait_histogram = obs.metrics.histogram(
                "repro.sched.queue.wait_seconds", node=name
            )
            self._depth_gauge = obs.metrics.gauge(
                "repro.sched.queue.depth", node=name
            )
        else:
            self._jobs_counter = None
            self._wait_histogram = None
            self._depth_gauge = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def waiting(self) -> int:
        """Jobs queued but not yet dispatched."""
        return len(self._waiting)

    @property
    def running(self) -> int:
        """Jobs currently occupying a slot."""
        return self._running

    @property
    def pressure(self) -> float:
        """Queue fullness in [0, 1]; 0 when the depth is unbounded-empty."""
        if self.max_depth is None or self.max_depth == 0:
            # Unbounded queues report pressure relative to one "full"
            # round of slots so adaptive shedding still sees saturation.
            return min(1.0, len(self._waiting) / max(1, 4 * self.slots))
        return min(1.0, len(self._waiting) / self.max_depth)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: ScheduledJob) -> bool:
        """Enqueue one job at the current virtual time.

        Returns False (and resolves the job as ``queue_full``) when the
        waiting line is at ``max_depth``; True otherwise. The job's
        ``on_complete`` fires exactly once for every submitted job,
        whatever its outcome.
        """
        now = self.simulator.now
        job.arrival = now
        self.stats.submitted += 1
        if self._running < self.slots:
            self._start(job, now)
            return True
        if self.max_depth is not None and len(self._waiting) >= self.max_depth:
            self.stats.rejected_full += 1
            self._resolve(job, OUTCOME_QUEUE_FULL)
            return False
        deadline_key = job.deadline if job.deadline is not None else float("inf")
        heapq.heappush(
            self._waiting,
            (int(job.priority), deadline_key, next(self._seq), job),
        )
        self.stats.max_depth = max(self.stats.max_depth, len(self._waiting))
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._waiting))
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _start(self, job: ScheduledJob, now: float) -> None:
        """Dispatch one job: run it and schedule its slot release."""
        job.started = now
        job.queue_delay = now - job.arrival
        self.stats.dispatched += 1
        self.stats.total_wait += job.queue_delay
        if self._wait_histogram is not None:
            self._wait_histogram.observe(job.queue_delay)
        try:
            job.service_latency = float(job.execute())
        except Exception as exc:  # noqa: BLE001 - resolved, not swallowed
            job.error = f"{type(exc).__name__}: {exc}"
            self.stats.failed += 1
            self._resolve(job, OUTCOME_FAILED)
            # A failed query releases its slot immediately (the failure
            # latency is already part of the proxy's accounting).
            self._dispatch_waiting(now)
            return
        self._running += 1
        completion = now + job.service_latency
        self.simulator.schedule(completion, lambda: self._release(job))

    def _release(self, job: ScheduledJob) -> None:
        """Completion event: free the slot and pull the next waiter.

        Waiters are dispatched *before* the completed job's callback
        fires: a closed-loop client resubmitting synchronously from
        ``on_complete`` must queue behind jobs that arrived earlier.
        """
        self._running -= 1
        job.completed = self.simulator.now
        self.stats.completed += 1
        job.outcome = OUTCOME_OK
        if self._jobs_counter is not None:
            self._jobs_counter(OUTCOME_OK).inc()
        self._dispatch_waiting(self.simulator.now)
        if job.on_complete is not None:
            job.on_complete(job)

    def _dispatch_waiting(self, now: float) -> None:
        """Fill free slots from the waiting heap in (priority, EDF) order.

        Jobs whose deadline already passed are dropped without consuming
        a slot — executing them could only waste capacity the still-
        feasible jobs behind them need.
        """
        while self._running < self.slots and self._waiting:
            __, deadline_key, __, job = heapq.heappop(self._waiting)
            if deadline_key < now:
                job.queue_delay = now - job.arrival
                self.stats.expired += 1
                self._resolve(job, OUTCOME_EXPIRED)
                continue
            self._start(job, now)
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._waiting))

    def _resolve(self, job: ScheduledJob, outcome: str) -> None:
        job.outcome = outcome
        if self._jobs_counter is not None:
            self._jobs_counter(outcome).inc()
        if job.on_complete is not None:
            job.on_complete(job)


class NodeSlots:
    """Per-host execution lanes: scans wait for the earliest-free lane.

    The coordinator routes every host scan through the host's
    :class:`NodeSlots`; the returned wait is added to the scan's service
    time, so a host already busy with earlier queries answers later ones
    slower — per-node queueing delay appears in query latency without
    changing the synchronous execution model. Lane bookkeeping lives on
    the virtual clock, so identically-seeded runs shape identically.
    """

    def __init__(self, slots: int = 4, *, max_wait: Optional[float] = None):
        if slots <= 0:
            raise ConfigurationError(f"node slots must be positive: {slots}")
        if max_wait is not None and max_wait < 0:
            raise ConfigurationError(f"max_wait must be non-negative: {max_wait}")
        self.slots = slots
        self.max_wait = max_wait
        self._free_at: list[float] = [0.0] * slots  # min-heap of lane-free times
        heapq.heapify(self._free_at)
        self.scans = 0
        self.total_wait = 0.0

    def wait_for_lane(self, now: float) -> float:
        """Wait the next scan arriving at ``now`` would incur (peek)."""
        return max(0.0, self._free_at[0] - now)

    def occupy(self, now: float, service_time: float) -> float:
        """Claim a lane for one scan; returns the *effective* service time.

        The effective time is lane wait plus the scan's own service
        time. Raises nothing: saturation policy (``max_wait``) is the
        caller's to enforce via :meth:`wait_for_lane`.
        """
        lane_free = heapq.heappop(self._free_at)
        start = max(now, lane_free)
        wait = start - now
        heapq.heappush(self._free_at, start + service_time)
        self.scans += 1
        self.total_wait += wait
        return wait + service_time

    def saturated(self, now: float) -> bool:
        """True when the lane wait exceeds the configured bound."""
        return self.max_wait is not None and self.wait_for_lane(now) > self.max_wait
