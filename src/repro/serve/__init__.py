"""repro.serve — the real serving tier over the simulated fleet.

A real asyncio TCP gateway (``repro serve``) in front of the
byte-reproducible DES stack: clients speak a length-prefixed JSON
protocol (:mod:`repro.serve.protocol`); the gateway bridges their
queries onto SQL compilation, admission v2, the result cache, executor
queues and coordinator fan-out, all still running on virtual time. The
clock domains meet in exactly two places — the anchored
:class:`~repro.serve.clock.RealTimeClock` (the single sanctioned
TID251 wall-clock boundary) and the gateway's event-loop pump that
drives ``simulator.run_until(clock.now())``.

``repro bench-serve`` (:mod:`repro.serve.bench`) is the closed-loop
harness that measures the whole thing end to end: N concurrent clients
with Zipf tenant skew, reporting sustained QPS, p50/p95/p99, admission
rejects and cache hit rate as ``BENCH_serve.json``.
"""

from repro.serve.bench import render_report, run_bench_async, write_report
from repro.serve.client import ServeClient, ServeError
from repro.serve.clock import RealTimeClock
from repro.serve.deploy import (
    ServingDeployment,
    build_serving_deployment,
    serve_policy,
)
from repro.serve.gateway import GatewayStats, ServeGateway, query_from_spec
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameTooLargeError,
    MalformedFrameError,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "ConnectionClosed",
    "FrameTooLargeError",
    "GatewayStats",
    "MalformedFrameError",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RealTimeClock",
    "ServeClient",
    "ServeError",
    "ServeGateway",
    "ServingDeployment",
    "build_serving_deployment",
    "encode_frame",
    "query_from_spec",
    "read_frame",
    "render_report",
    "run_bench_async",
    "serve_policy",
    "write_frame",
    "write_report",
]
