"""``repro bench-serve``: the closed-loop serving benchmark.

Attaches the ROADMAP's missing number to the paper's claim: sustained
QPS and tail latency for interactive analytic queries under heavy
concurrent traffic, measured end to end through a real socket — client
→ wire protocol → gateway → admission → cache/queues → simulated fleet
→ back.

The harness is **closed-loop**: N asyncio clients, each with its own
TCP connection, each resubmitting as soon as its previous request
resolves (the saturation model — concurrency bounded by the client
population, matching :meth:`TrafficGenerator.run_closed_loop` on the
DES side). Tenant identity is Zipf-skewed with the exact weights the
DES load generator uses (:func:`repro.workloads.zipf_tenant_weights`),
each tenant replays a fixed dashboard pool of queries (the cache's
reason to exist), and tenant priorities cycle hot→sheddable exactly
like the overload experiment.

Everything runs in one process and one event loop — gateway, pump and
all clients — which is how a single machine sustains ≥1k concurrent
closed-loop connections without thread overheads. Latency is sampled
with a :class:`~repro.serve.clock.RealTimeClock` (the sanctioned
wall-clock boundary).

The report is machine-readable (``BENCH_serve.json``): sustained QPS,
p50/p95/p99, admission rejects by reason, cache hit rate, and the
gateway's own counters (protocol errors must be zero on a clean run).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import interpolated_percentiles
from repro.serve.client import ServeClient, ServeError
from repro.serve.clock import RealTimeClock
from repro.serve.deploy import build_serving_deployment
from repro.serve.gateway import ServeGateway
from repro.serve.protocol import ConnectionClosed
from repro.workloads.loadgen import _PRIORITY_CYCLE, zipf_tenant_weights
from repro.workloads.queries import QueryGenerator

#: How many connection attempts are in flight at once while ramping up
#: the client fleet (the listener's accept backlog is finite).
_CONNECT_BATCH = 50


class _BenchState:
    """Shared counters + latency samples across all client loops."""

    def __init__(self) -> None:
        self.requests = 0
        self.ok = 0
        self.cached = 0
        self.coalesced = 0
        self.degraded = 0
        self.errors: dict[str, int] = {}
        self.latencies: list[float] = []
        self.disconnects = 0

    def count_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1


def _tenant_pools(
    seed: int, tenants: int, query_pool_size: int, deployment
) -> list[list[str]]:
    """Per-tenant fixed SQL dashboards over the serving deployment.

    Rendered through the canonical SQL printer, so the gateway's SQL
    path (parse → compile → plan-key) round-trips them and identical
    pool entries share one cache key.
    """
    from repro.cubrick.sql import render_query

    rng = np.random.default_rng(seed)
    schemas = [
        info.schema
        for name, info in sorted(deployment.catalog.tables.items())
        if not info.replicated
    ]
    generator = QueryGenerator(schemas, rng)
    return [
        [render_query(generator.next_query()) for __ in range(query_pool_size)]
        for __ in range(tenants)
    ]


async def _client_loop(
    index: int,
    host: str,
    port: int,
    *,
    pools: list[list[str]],
    weights: np.ndarray,
    seed: int,
    clock: RealTimeClock,
    stop: asyncio.Event,
    state: _BenchState,
    think_time: float,
) -> None:
    """One closed-loop client: submit, await, think, repeat."""
    rng = np.random.default_rng([seed, index])
    client = ServeClient(host, port)
    try:
        await client.connect()
    except (ConnectionError, OSError):
        state.disconnects += 1
        return
    try:
        while not stop.is_set():
            tenant_rank = int(rng.choice(len(weights), p=weights))
            pool = pools[tenant_rank]
            statement = pool[int(rng.integers(len(pool)))]
            priority = _PRIORITY_CYCLE[
                tenant_rank % len(_PRIORITY_CYCLE)
            ].name.lower()
            start = clock.now()
            state.requests += 1
            try:
                result = await client.sql(
                    statement,
                    tenant=f"tenant{tenant_rank:02d}",
                    priority=priority,
                )
            except ServeError as exc:
                state.count_error(exc.code)
            except ConnectionClosed:
                state.disconnects += 1
                break
            else:
                state.ok += 1
                state.latencies.append(clock.now() - start)
                if result.get("cached"):
                    state.cached += 1
                if result.get("coalesced"):
                    state.coalesced += 1
                if result.get("degraded"):
                    state.degraded += 1
            if think_time > 0:
                await asyncio.sleep(think_time)
    finally:
        await client.close()


async def run_bench_async(
    *,
    clients: int = 200,
    duration: float = 10.0,
    seed: int = 0,
    tenants: int = 6,
    query_pool_size: int = 8,
    think_time: float = 0.0,
    gateway: Optional[ServeGateway] = None,
) -> dict:
    """Run the closed-loop benchmark; returns the report dict.

    With no ``gateway`` supplied, a standard serving deployment is
    built, warmed up and served in-process on an ephemeral loopback
    port, then drained afterwards.
    """
    if clients <= 0:
        raise ConfigurationError(f"clients must be positive: {clients}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive: {duration}")
    own_gateway = gateway is None
    if own_gateway:
        serving = build_serving_deployment(seed)
        gateway = ServeGateway(serving)
        host, port = await gateway.start()
    else:
        host, port = gateway.address
    deployment = gateway.deployment

    pools = _tenant_pools(seed, tenants, query_pool_size, deployment)
    weights = np.asarray(zipf_tenant_weights(tenants, 1.1))
    clock = RealTimeClock()
    stop = asyncio.Event()
    state = _BenchState()

    tasks: list[asyncio.Task] = []
    # Ramp the fleet up in batches: the accept backlog is finite, and a
    # thousand simultaneous SYNs would see refusals, not backpressure.
    for batch_start in range(0, clients, _CONNECT_BATCH):
        batch = range(
            batch_start, min(batch_start + _CONNECT_BATCH, clients)
        )
        tasks.extend(
            asyncio.ensure_future(
                _client_loop(
                    i,
                    host,
                    port,
                    pools=pools,
                    weights=weights,
                    seed=seed,
                    clock=clock,
                    stop=stop,
                    state=state,
                    think_time=think_time,
                )
            )
            for i in batch
        )
        await asyncio.sleep(0)

    bench_start = clock.now()
    await asyncio.sleep(duration)
    stop.set()
    await asyncio.gather(*tasks, return_exceptions=True)
    elapsed = max(clock.now() - bench_start, 1e-9)

    snapshot = gateway.snapshot()
    if own_gateway:
        await gateway.drain()

    cache = deployment.proxy.result_cache
    report: dict = {
        "benchmark": "serve",
        "config": {
            "clients": clients,
            "duration_seconds": duration,
            "seed": seed,
            "tenants": tenants,
            "query_pool_size": query_pool_size,
            "think_time": think_time,
        },
        "elapsed_seconds": elapsed,
        "requests": state.requests,
        "ok": state.ok,
        "qps": state.ok / elapsed,
        "latency_seconds": {},
        "client_errors": dict(sorted(state.errors.items())),
        "admission_rejects": snapshot.get("rejected", {}),
        "cached_responses": state.cached,
        "coalesced_responses": state.coalesced,
        "degraded_responses": state.degraded,
        "disconnects": state.disconnects,
        "protocol_errors": snapshot.get("protocol_errors", 0),
        "gateway": snapshot,
    }
    if state.latencies:
        p50, p95, p99 = interpolated_percentiles(
            state.latencies, (50, 95, 99)
        )
        report["latency_seconds"] = {
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "max": max(state.latencies),
            "samples": len(state.latencies),
        }
    if cache is not None:
        report["cache"] = {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_ratio": cache.stats.hit_ratio(),
        }
    return report


def render_report(report: dict) -> str:
    """Human-readable summary of one bench report."""
    latency = report.get("latency_seconds", {})
    cache = report.get("cache", {})
    lines = [
        f"bench-serve: {report['config']['clients']} closed-loop clients "
        f"for {report['config']['duration_seconds']:.1f}s "
        f"(seed={report['config']['seed']})",
        f"  sustained: {report['qps']:.1f} qps "
        f"({report['ok']}/{report['requests']} ok)",
    ]
    if latency:
        lines.append(
            f"  latency: p50={latency['p50'] * 1e3:.2f}ms "
            f"p95={latency['p95'] * 1e3:.2f}ms "
            f"p99={latency['p99'] * 1e3:.2f}ms "
            f"max={latency['max'] * 1e3:.2f}ms"
        )
    rejects = report.get("admission_rejects", {})
    lines.append(
        "  admission rejects: "
        + (
            " ".join(f"{k}={v}" for k, v in sorted(rejects.items()))
            if rejects
            else "none"
        )
    )
    if cache:
        lines.append(
            f"  cache: hits={cache['hits']} misses={cache['misses']} "
            f"hit_ratio={cache['hit_ratio']:.3f}"
        )
    lines.append(
        f"  coalesced={report['coalesced_responses']} "
        f"protocol_errors={report['protocol_errors']} "
        f"disconnects={report['disconnects']}"
    )
    return "\n".join(lines) + "\n"


def write_report(report: dict, path: str) -> None:
    """Write the machine-readable report (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
