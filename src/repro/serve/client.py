"""ServeClient: a minimal asyncio client for the gateway protocol.

Speaks the length-prefixed JSON protocol over one TCP connection, with
request-id correlation so callers may pipeline concurrent requests on a
single socket (responses can arrive out of order). This is what the
``repro bench-serve`` closed-loop harness drives — and a reference
implementation for anyone wiring up a client in another language.

Server-reported errors come back as :class:`ServeError` carrying the
typed ``code`` from the wire; transport failures raise
:class:`~repro.serve.protocol.ConnectionClosed`.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Optional

from repro.errors import ReproError
from repro.serve.protocol import (
    ConnectionClosed,
    encode_frame,
    read_frame,
)


class ServeError(ReproError):
    """A typed error response from the gateway."""

    def __init__(self, code: str, message: str, error: Optional[dict] = None):
        super().__init__(message)
        self.code = code
        self.error = error if error is not None else {}


class ServeClient:
    """One connection to a :class:`~repro.serve.gateway.ServeGateway`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._waiting: dict[int, asyncio.Future] = {}
        self._read_task: Optional[asyncio.Task] = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._read_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._read_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_waiters(ConnectionClosed("client closed"))

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                msg = await read_frame(self._reader)
                rid = msg.get("id")
                future = self._waiting.pop(rid, None)
                if future is not None and not future.done():
                    future.set_result(msg)
        except ConnectionClosed as exc:
            self._fail_waiters(exc)
        except asyncio.CancelledError:
            raise

    def _fail_waiters(self, exc: Exception) -> None:
        waiting, self._waiting = self._waiting, {}
        for future in waiting.values():
            if not future.done():
                future.set_exception(exc)

    async def request(self, message: dict) -> dict:
        """Send one request; await its correlated response (raw frame)."""
        if self._writer is None:
            raise ConnectionClosed("client is not connected")
        rid = next(self._ids)
        message = dict(message)
        message["id"] = rid
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        self._waiting[rid] = future
        try:
            self._writer.write(encode_frame(message))
            await self._writer.drain()
        except (ConnectionError, RuntimeError):
            self._waiting.pop(rid, None)
            raise ConnectionClosed("peer closed the connection") from None
        return await future

    async def call(self, message: dict) -> dict:
        """Request + unwrap: returns ``result``, raises :class:`ServeError`."""
        response = await self.request(message)
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error", {})
        raise ServeError(
            str(error.get("code", "internal")),
            str(error.get("message", "request failed")),
            error,
        )

    # ------------------------------------------------------------------
    # Convenience ops
    # ------------------------------------------------------------------

    async def ping(self) -> dict:
        return await self.call({"op": "ping"})

    async def stats(self) -> dict:
        return await self.call({"op": "stats"})

    async def sql(
        self,
        statement: str,
        *,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> dict:
        message: dict = {"op": "sql", "sql": statement}
        if tenant is not None:
            message["tenant"] = tenant
        if priority is not None:
            message["priority"] = priority
        return await self.call(message)

    async def query(self, spec: dict, **fields) -> dict:
        message = {"op": "query", **spec, **fields}
        return await self.call(message)

    async def load(self, table: str, rows: list) -> dict:
        return await self.call({"op": "load", "table": table, "rows": rows})

    async def invalidate(self, table: str) -> dict:
        return await self.call({"op": "invalidate", "table": table})
