"""RealTimeClock: the single sanctioned wall-clock boundary.

Everything under ``src/repro`` reads time from the injected DES clock —
the ruff TID251 ban on ``time.time``/``time.monotonic``/
``time.perf_counter`` enforces it, and that ban is what makes seeded
simulations byte-reproducible. The serving tier is the one place real
time must enter the system: a real asyncio gateway answers real clients,
so *something* has to translate wall-clock progress into virtual-clock
progress.

This module is that something, and the **only** such place: the TID251
per-file ignore in ``pyproject.toml`` names exactly this file. Every
other serving-tier component (gateway, pump, bench harness) takes a
:class:`RealTimeClock` — or any zero-argument float callable — by
injection, which keeps them testable with a fake clock and keeps the
wall clock corralled behind one auditable seam.

The clock satisfies the DES clock interface used throughout the repo
(a zero-argument callable returning seconds as ``float``; compare
``Observability(clock=...)`` and ``Simulator.now``). It is *anchored*:
``RealTimeClock(start=simulator.now)`` reads the current virtual time
as its epoch, so virtual and real time share one axis and the
event-loop pump can drive ``simulator.run_until(clock.now())``.
"""

from __future__ import annotations

import time


class RealTimeClock:
    """Monotonic wall clock re-based onto the simulation's time axis.

    ``now()`` (and calling the instance) returns ``start`` plus the
    monotonic wall-clock seconds elapsed since construction. Monotonic
    time never goes backwards, but the serving tier still treats
    cross-component timestamp arithmetic as jitter-prone (see the
    non-decreasing clamps in :mod:`repro.obs`): two clocks — this one
    and the pumped virtual clock — sample the same axis at slightly
    different instants.
    """

    __slots__ = ("start", "_origin")

    def __init__(self, start: float = 0.0):
        self.start = float(start)
        self._origin = time.monotonic()

    def now(self) -> float:
        """Seconds on the shared time axis (virtual epoch + real elapsed)."""
        return self.start + (time.monotonic() - self._origin)

    def __call__(self) -> float:
        return self.now()

    def __repr__(self) -> str:
        return f"RealTimeClock(start={self.start:.3f}, now={self.now():.3f})"
