"""Standard serving deployment: the fleet the gateway fronts.

One place builds the deployment ``repro serve`` and ``repro bench-serve``
run against, so the server, the benchmark harness and the tests all
agree on the fleet shape — the same three-region dashboard deployment
the overload experiment uses (:mod:`repro.workloads.loadgen`), warmed
up and wrapped in a :class:`~repro.sched.WorkloadManager`.

Building is pure DES: everything here runs under the virtual clock and
is seeded, so two builds with one seed are identical. Real time only
enters afterwards, when :class:`~repro.serve.gateway.ServeGateway`
anchors its :class:`~repro.serve.clock.RealTimeClock` at the warmed-up
deployment's ``simulator.now``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sched.manager import SchedPolicy, WorkloadManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.deployment import CubrickDeployment

#: Virtual seconds of warm-up before serving (matches the overload demo).
WARMUP_SECONDS = 30.0


def serve_policy(**overrides) -> SchedPolicy:
    """The gateway's default admission policy.

    Tuned for interactive serving rather than the overload experiment's
    deliberately tiny lanes: a few slots per region queue, bounded
    depth, adaptive shedding on, and a result cache big enough for every
    tenant's dashboard pool.
    """
    params = dict(
        slots_per_node=4,
        max_queue_depth=64,
        deadline=2.0,
        enforce_deadlines=True,
        adaptive_shedding=True,
        cache_capacity=512,
    )
    params.update(overrides)
    return SchedPolicy(**params)


@dataclass
class ServingDeployment:
    """The wired fleet a gateway serves: deployment + workload manager."""

    deployment: "CubrickDeployment"
    manager: WorkloadManager

    @property
    def simulator(self):
        return self.deployment.simulator

    @property
    def obs(self):
        return self.deployment.obs


def build_serving_deployment(
    seed: int = 0,
    *,
    policy: Optional[SchedPolicy] = None,
    warmup: float = WARMUP_SECONDS,
) -> ServingDeployment:
    """Build, load and warm up the standard serving fleet.

    Reuses the overload experiment's deployment (three regions, the
    300-row ``events`` dashboard table, the slow-median latency model)
    so serving results are comparable with the DES overload numbers.
    """
    from repro.workloads.loadgen import _build_overload_deployment

    deployment = _build_overload_deployment(seed)
    manager = WorkloadManager(
        deployment,
        policy=policy if policy is not None else serve_policy(),
    )
    if warmup > 0:
        deployment.simulator.run_until(deployment.simulator.now + warmup)
    return ServingDeployment(deployment=deployment, manager=manager)
