"""ServeGateway: the asyncio TCP front door over the simulated fleet.

The gateway turns the repository from a simulator into a runnable
service. Real clients connect over TCP and speak the length-prefixed
JSON protocol (:mod:`repro.serve.protocol`); their queries run through
the exact same stack every DES experiment exercises — SQL compilation,
admission v2, the result cache, EDF executor queues, coordinator
fan-out, the span tracer — none of which knows the wall clock exists.

Two clock domains, one axis
---------------------------

Everything below the gateway reads ``simulator.now``. The gateway owns
a :class:`~repro.serve.clock.RealTimeClock` anchored at the warmed-up
deployment's virtual time and runs an **event-loop pump**: a background
task that repeatedly advances ``simulator.run_until(clock.now())``, so
virtual time tracks real time and queued query completions fire at
(approximately) the real moment they were simulated for. The pump
sleeps until the earlier of the next DES event
(:attr:`~repro.sim.engine.Simulator.next_event_time`) and a fixed
heartbeat, and is woken immediately when a submission enqueues new
work — no busy polling, no added latency floor beyond the heartbeat.

Backpressure and loss
---------------------

* **Per-connection in-flight window** — each connection may have at
  most ``max_inflight`` requests being processed; at the limit the
  gateway simply stops reading frames from that socket, which
  propagates as TCP backpressure to the client.
* **Slow-client write timeout** — a response write that cannot drain
  within ``write_timeout`` real seconds drops the connection (the
  request itself was still processed and counted).
* **Coalescing** — identical in-flight queries (same canonical plan,
  same table generations, same tenant and priority) attach to the
  leader's execution instead of re-running it.
* **Graceful drain** — on SIGTERM (or :meth:`ServeGateway.drain`) the
  listener closes, new frames get ``shutting_down`` errors, every
  accepted in-flight request runs to completion with the pump alive,
  and metrics are flushed. An accepted request is never abandoned.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cubrick.query import AggFunc, Aggregation, Filter, FilterOp, Query
from repro.errors import (
    ConfigurationError,
    QueryError,
    ReproError,
    SqlError,
    TableNotFoundError,
)
from repro.sched.cache import plan_key
from repro.sched.manager import JobRecord
from repro.sched.queue import PriorityClass
from repro.serve.clock import RealTimeClock
from repro.serve.deploy import ServingDeployment
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ProtocolError,
    error_response,
    jsonable,
    ok_response,
    read_frame,
    write_frame,
)

#: JobRecord outcomes that mean "admission said no", reported to the
#: client as one typed ``rejected`` error with the outcome as reason.
REJECT_OUTCOMES = ("shed", "quota", "tenant_quota", "queue_full", "deadline")


def parse_priority(name: object) -> PriorityClass:
    """Wire priority string → :class:`PriorityClass` (default interactive)."""
    if name is None:
        return PriorityClass.INTERACTIVE
    try:
        return PriorityClass[str(name).upper()]
    except KeyError:
        raise QueryError(
            f"unknown priority {name!r} "
            f"(known: {[p.name.lower() for p in PriorityClass]})"
        ) from None


def query_from_spec(spec: dict) -> Query:
    """Build a :class:`Query` from the wire protocol's programmatic form.

    Raises :class:`~repro.errors.QueryError` on any malformed field —
    the gateway reports it as a typed ``bad_request`` error.
    """
    table = spec.get("table")
    if not isinstance(table, str) or not table:
        raise QueryError("query spec needs a table name")
    raw_aggs = spec.get("aggregations")
    if not isinstance(raw_aggs, list) or not raw_aggs:
        raise QueryError("query spec needs a non-empty aggregations list")
    aggregations = []
    for agg in raw_aggs:
        if not isinstance(agg, dict):
            raise QueryError(f"aggregation must be an object: {agg!r}")
        try:
            func = AggFunc(str(agg.get("func")))
        except ValueError:
            raise QueryError(
                f"unknown aggregation func {agg.get('func')!r} "
                f"(known: {[f.value for f in AggFunc]})"
            ) from None
        metric = agg.get("metric")
        if not isinstance(metric, str) or not metric:
            raise QueryError(f"aggregation needs a metric name: {agg!r}")
        aggregations.append(Aggregation(func=func, metric=metric))
    filters = []
    for flt in spec.get("filters", []) or []:
        if not isinstance(flt, dict):
            raise QueryError(f"filter must be an object: {flt!r}")
        try:
            op = FilterOp(str(flt.get("op")))
        except ValueError:
            raise QueryError(
                f"unknown filter op {flt.get('op')!r} "
                f"(known: {[o.value for o in FilterOp]})"
            ) from None
        dimension = flt.get("dimension")
        if not isinstance(dimension, str) or not dimension:
            raise QueryError(f"filter needs a dimension name: {flt!r}")
        values = flt.get("values")
        if not isinstance(values, list):
            raise QueryError(f"filter needs a values list: {flt!r}")
        try:
            coerced = tuple(int(v) for v in values)
        except (TypeError, ValueError):
            raise QueryError(
                f"filter values must be integers: {values!r}"
            ) from None
        filters.append(Filter(dimension=dimension, op=op, values=coerced))
    group_by = spec.get("group_by", []) or []
    if not isinstance(group_by, list) or any(
        not isinstance(g, str) for g in group_by
    ):
        raise QueryError(f"group_by must be a list of column names: {group_by!r}")
    limit = spec.get("limit")
    if limit is not None and not isinstance(limit, int):
        raise QueryError(f"limit must be an integer: {limit!r}")
    order_by = spec.get("order_by")
    if order_by is not None and not isinstance(order_by, str):
        raise QueryError(f"order_by must be a column name: {order_by!r}")
    return Query.build(
        table,
        aggregations,
        group_by=list(group_by),
        filters=filters,
        order_by=order_by,
        descending=bool(spec.get("descending", True)),
        limit=limit,
    )


@dataclass
class GatewayStats:
    """Running totals the ``stats`` op and the bench harness read."""

    connections_total: int = 0
    connections_open: int = 0
    requests_total: int = 0
    responses_total: int = 0
    #: Typed error frames sent for wire-level violations.
    protocol_errors: int = 0
    #: Requests rejected by admission control, by reason.
    rejected: dict = field(default_factory=dict)
    #: Requests answered by attaching to an identical in-flight query.
    coalesced: int = 0
    #: Responses lost to a disconnected or too-slow client.
    dropped_responses: int = 0
    internal_errors: int = 0

    def count_reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def snapshot(self) -> dict:
        return {
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "requests_total": self.requests_total,
            "responses_total": self.responses_total,
            "protocol_errors": self.protocol_errors,
            "rejected": dict(sorted(self.rejected.items())),
            "coalesced": self.coalesced,
            "dropped_responses": self.dropped_responses,
            "internal_errors": self.internal_errors,
        }


class _Connection:
    """Per-connection write serialisation + in-flight window."""

    __slots__ = ("writer", "write_lock", "inflight")

    def __init__(self, writer: asyncio.StreamWriter, max_inflight: int):
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight = asyncio.Semaphore(max_inflight)


class ServeGateway:
    """The serving tier: one asyncio TCP server over one deployment."""

    def __init__(
        self,
        serving: ServingDeployment,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[Callable[[], float]] = None,
        max_inflight: int = 32,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        write_timeout: float = 5.0,
        pump_interval: float = 0.005,
        coalesce: bool = True,
        metrics_path: Optional[str] = None,
    ):
        if max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive: {max_inflight}"
            )
        if pump_interval <= 0:
            raise ConfigurationError(
                f"pump_interval must be positive: {pump_interval}"
            )
        self.serving = serving
        self.manager = serving.manager
        self.deployment = serving.deployment
        self.simulator = serving.simulator
        self.obs = serving.obs
        self._host = host
        self._port = port
        self._injected_clock = clock
        self.clock: Optional[Callable[[], float]] = clock
        self.max_inflight = max_inflight
        self.max_frame_bytes = max_frame_bytes
        self.write_timeout = write_timeout
        self.pump_interval = pump_interval
        self.coalesce = coalesce
        self.metrics_path = metrics_path
        self.stats = GatewayStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self._draining = False
        self._stopped = asyncio.Event()
        self._pending = 0
        #: Coalescing map: (plan, generation, ingest_generation, tenant,
        #: priority) → the leader's pending JobRecord future. Generations
        #: in the key guarantee a request arriving after a load can never
        #: attach to a pre-load execution.
        self._inflight_queries: dict[tuple, asyncio.Future] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound (port 0 resolves at start)."""
        if self._server is None:
            raise ConfigurationError("gateway is not started")
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    @property
    def pending(self) -> int:
        """Accepted requests not yet answered (the drain invariant)."""
        return self._pending

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> tuple[str, int]:
        """Bind the listener, anchor the clock, start the pump."""
        if self._server is not None:
            raise ConfigurationError("gateway already started")
        if self.clock is None:
            # Anchor real time at the warmed-up deployment's virtual
            # time: from here on, the two clocks share one axis.
            self.clock = RealTimeClock(start=self.simulator.now)
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._pump_task = asyncio.ensure_future(self._pump())
        host, port = self.address
        self.obs.events.emit(
            "repro.serve.started", host=host, port=port,
        )
        return host, port

    async def serve_forever(self) -> None:
        """Block until the gateway has fully drained or been closed."""
        await self._stopped.wait()

    async def drain(self, *, timeout: float = 60.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, flush.

        Returns True when every accepted request was answered before
        ``timeout`` real seconds; the pump keeps running throughout so
        queued queries complete rather than being abandoned.
        """
        if self._stopped.is_set():
            return True
        first = not self._draining
        self._draining = True
        if first:
            self.obs.events.emit("repro.serve.draining", pending=self._pending)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        remaining = timeout
        step = min(0.01, self.pump_interval)
        while self._pending > 0:
            if remaining <= 0:
                drained = False
                break
            await asyncio.sleep(step)
            remaining -= step
        await self._stop_pump()
        self.obs.events.emit(
            "repro.serve.drained", clean=drained, pending=self._pending
        )
        self._flush_metrics()
        self._stopped.set()
        return drained

    async def close(self) -> None:
        """Hard stop (tests/cleanup): no drain guarantee."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._stop_pump()
        self._stopped.set()

    async def _stop_pump(self) -> None:
        task, self._pump_task = self._pump_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    def _flush_metrics(self) -> None:
        if self.metrics_path is None:
            return
        from repro.obs.export import prometheus_text, write_text

        write_text(self.metrics_path, prometheus_text(self.obs.metrics))

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (POSIX event loops)."""
        import signal

        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain())
            )

    # ------------------------------------------------------------------
    # The event-loop pump
    # ------------------------------------------------------------------

    async def _pump(self) -> None:
        """Advance the DES so virtual time tracks the real clock.

        Runs the simulator up to ``clock.now()`` each tick, then sleeps
        until the next queued event is due (or the heartbeat, whichever
        is sooner). A submission wakes it immediately via ``_wake``.
        """
        while True:
            target = self.clock()
            if target > self.simulator.now:
                self.simulator.run_until(target)
            next_event = self.simulator.next_event_time
            delay = self.pump_interval
            if next_event is not None:
                delay = min(delay, max(next_event - self.clock(), 0.0))
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=max(delay, 1e-4)
                )
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections_total += 1
        self.stats.connections_open += 1
        conn = _Connection(writer, self.max_inflight)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    msg = await read_frame(
                        reader, max_bytes=self.max_frame_bytes
                    )
                except ConnectionClosed:
                    break
                except ProtocolError as exc:
                    self.stats.protocol_errors += 1
                    try:
                        await self._send(
                            conn, error_response(None, exc.code, str(exc))
                        )
                    except ConnectionClosed:
                        break
                    if not exc.recoverable:
                        break
                    continue
                self.stats.requests_total += 1
                if self._draining:
                    try:
                        await self._send(
                            conn,
                            error_response(
                                msg.get("id"),
                                "shutting_down",
                                "gateway is draining",
                            ),
                        )
                        continue
                    except ConnectionClosed:
                        break
                # Backpressure: at the window limit this await parks the
                # read loop, so the kernel's receive buffer (and then the
                # client's send path) absorbs the excess.
                await conn.inflight.acquire()
                self._pending += 1
                task = asyncio.ensure_future(self._process(conn, msg))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # A mid-request disconnect leaves tasks running; they finish
            # (keeping the drain invariant exact) and count their
            # response as dropped when the write fails.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self.stats.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, conn: _Connection, obj: dict) -> None:
        async with conn.write_lock:
            await write_frame(
                conn.writer, obj, timeout=self.write_timeout
            )

    async def _process(self, conn: _Connection, msg: dict) -> None:
        try:
            response = await self._dispatch(msg)
        except Exception as exc:  # never kill the connection for a bug
            self.stats.internal_errors += 1
            response = error_response(
                msg.get("id"), "internal", f"{type(exc).__name__}: {exc}"
            )
        try:
            await self._send(conn, response)
            self.stats.responses_total += 1
        except ConnectionClosed:
            self.stats.dropped_responses += 1
        finally:
            self._pending -= 1
            conn.inflight.release()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, msg: dict) -> dict:
        rid = msg.get("id")
        op = msg.get("op")
        if op == "ping":
            return ok_response(
                rid, {"pong": True, "time": self.simulator.now}
            )
        if op == "stats":
            return ok_response(rid, self.snapshot())
        if op == "load":
            return self._handle_load(rid, msg)
        if op == "invalidate":
            return self._handle_invalidate(rid, msg)
        if op in ("sql", "query"):
            return await self._handle_query(rid, op, msg)
        return error_response(
            rid,
            "unknown_op",
            f"unknown op {op!r} "
            "(known: ping, stats, load, invalidate, sql, query)",
        )

    def _handle_load(self, rid: object, msg: dict) -> dict:
        table = msg.get("table")
        rows = msg.get("rows")
        if not isinstance(table, str) or not isinstance(rows, list):
            return error_response(
                rid, "bad_request", "load needs a table name and a rows list"
            )
        try:
            coerced = [
                {str(k): float(v) for k, v in row.items()} for row in rows
            ]
        except (AttributeError, TypeError, ValueError):
            return error_response(
                rid, "bad_request",
                "load rows must be objects of numeric columns",
            )
        try:
            loaded = self.deployment.load(table, coerced)
        except TableNotFoundError as exc:
            return error_response(rid, "table_not_found", str(exc))
        except ReproError as exc:
            return error_response(rid, "bad_request", str(exc))
        info = self.deployment.catalog.get(table)
        return ok_response(
            rid,
            {
                "rows_loaded": loaded,
                "ingest_generation": info.ingest_generation,
            },
        )

    def _handle_invalidate(self, rid: object, msg: dict) -> dict:
        table = msg.get("table")
        if not isinstance(table, str):
            return error_response(
                rid, "bad_request", "invalidate needs a table name"
            )
        try:
            self.deployment.catalog.get(table)
        except TableNotFoundError as exc:
            return error_response(rid, "table_not_found", str(exc))
        dropped = 0
        cache = self.deployment.proxy.result_cache
        if cache is not None:
            dropped = cache.invalidate_table(table)
        return ok_response(rid, {"invalidated": dropped})

    async def _handle_query(self, rid: object, op: str, msg: dict) -> dict:
        tenant = msg.get("tenant")
        if tenant is not None:
            tenant = str(tenant)
        try:
            priority = parse_priority(msg.get("priority"))
            if op == "sql":
                statement = msg.get("sql")
                if not isinstance(statement, str):
                    return error_response(
                        rid, "bad_request", "sql op needs an sql string"
                    )
                query = self.deployment.compile_sql(statement)
            else:
                query = query_from_spec(msg)
        except SqlError as exc:
            return error_response(
                rid, "sql", str(exc), context=exc.context()
            )
        except TableNotFoundError as exc:
            return error_response(rid, "table_not_found", str(exc))
        except QueryError as exc:
            return error_response(rid, "bad_request", str(exc))
        try:
            self.deployment.catalog.get(query.table)
        except TableNotFoundError as exc:
            return error_response(rid, "table_not_found", str(exc))

        record, coalesced = await self._submit(query, tenant, priority)
        return self._record_response(rid, record, coalesced)

    # ------------------------------------------------------------------
    # Submission bridge (asyncio ⇄ DES)
    # ------------------------------------------------------------------

    def _submit_future(
        self,
        query: Query,
        tenant: Optional[str],
        priority: PriorityClass,
    ) -> "asyncio.Future[JobRecord]":
        """One real submission; resolves when the DES completes the job.

        ``on_done`` fires either synchronously (cache hit, rejection) or
        later inside ``simulator.run_until`` on the pump task — the same
        event loop either way, so resolving the future directly is safe.
        """
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()

        def on_done(record: JobRecord) -> None:
            if not future.done():
                future.set_result(record)

        self.manager.submit(
            query, tenant=tenant, priority=priority, on_done=on_done
        )
        # New DES events exist (or an outcome resolved): pump now.
        self._wake.set()
        return future

    async def _submit(
        self,
        query: Query,
        tenant: Optional[str],
        priority: PriorityClass,
    ) -> tuple[JobRecord, bool]:
        """Submit with coalescing; returns (record, was_coalesced)."""
        if not self.coalesce:
            return await self._submit_future(query, tenant, priority), False
        info = self.deployment.catalog.get(query.table)
        key = (
            plan_key(query),
            info.generation,
            info.ingest_generation,
            tenant,
            priority,
        )
        existing = self._inflight_queries.get(key)
        if existing is not None and not existing.done():
            self.stats.coalesced += 1
            return await existing, True
        future = self._submit_future(query, tenant, priority)
        self._inflight_queries[key] = future

        def forget(fut: asyncio.Future) -> None:
            if self._inflight_queries.get(key) is fut:
                del self._inflight_queries[key]

        future.add_done_callback(forget)
        return await future, False

    def _record_response(
        self, rid: object, record: JobRecord, coalesced: bool
    ) -> dict:
        if record.outcome in REJECT_OUTCOMES:
            self.stats.count_reject(record.outcome)
            return error_response(
                rid,
                "rejected",
                f"admission control rejected the query: {record.outcome}",
                reason=record.outcome,
            )
        if record.outcome == "failed" or record.result is None:
            return error_response(
                rid,
                "query_failed",
                record.error or "query execution failed",
            )
        result = record.result
        payload: dict = {
            "columns": list(result.columns),
            "rows": jsonable(result.rows),
            "outcome": record.outcome,
            "latency": record.latency,
            "rows_scanned": result.rows_scanned,
        }
        metadata = result.metadata
        if record.outcome == "cache_hit" or metadata.get("cached"):
            payload["cached"] = True
        if coalesced:
            payload["coalesced"] = True
        if metadata.get("degraded"):
            # Degraded-completeness answers are explicit on the wire.
            payload["degraded"] = True
            payload["completeness"] = float(
                metadata.get("completeness", 0.0)
            )
        return ok_response(rid, payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Gateway + fleet counters for the ``stats`` op and the bench."""
        out = self.stats.snapshot()
        out["pending"] = self._pending
        out["draining"] = self._draining
        out["virtual_time"] = self.simulator.now
        cache = self.deployment.proxy.result_cache
        if cache is not None:
            out["cache"] = {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
            }
        return out
