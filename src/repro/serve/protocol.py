"""Length-prefixed JSON wire protocol for the serving gateway.

Frames are ``4-byte big-endian unsigned length`` + ``UTF-8 JSON body``.
Both directions use the same framing; requests and responses are JSON
objects. The framing is deliberately dumb: a client that can count
bytes and call ``json.loads`` can speak it from any language.

Requests carry an ``op`` plus op-specific fields and an optional
client-chosen ``id`` echoed back verbatim (responses may arrive out of
order when a connection pipelines requests)::

    {"id": 7, "op": "sql",  "sql": "SELECT sum(clicks) FROM events",
     "tenant": "tenant00", "priority": "interactive"}
    {"id": 8, "op": "query", "table": "events",
     "aggregations": [{"func": "sum", "metric": "clicks"}],
     "filters": [{"op": "between", "dimension": "day", "values": [0, 6]}],
     "group_by": ["day"], "limit": 10}
    {"op": "load", "table": "events", "rows": [{"day": 1, "clicks": 2.0}]}
    {"op": "invalidate", "table": "events"}
    {"op": "ping"} / {"op": "stats"}

Responses are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``.
Degraded (graceful-degradation) answers come back ``ok`` with
``result.degraded = true`` and an explicit ``result.completeness``
fraction — the wire protocol never silently drops rows.

Error taxonomy (``error.code``):

* ``malformed`` — undecodable JSON or a non-object frame;
* ``oversized`` — declared frame length above the server's limit;
* ``unknown_op`` / ``bad_request`` — a well-formed frame the server
  cannot dispatch;
* ``sql`` — lex/parse/plan failure (carries caret ``context``);
* ``table_not_found`` — unknown table;
* ``rejected`` — admission control said no (``reason`` holds the
  admission outcome: ``shed`` / ``quota`` / ``tenant_quota`` /
  ``queue_full`` / ``deadline``);
* ``query_failed`` — execution failed after retries;
* ``shutting_down`` — the gateway is draining;
* ``internal`` — anything else (the connection survives).

Every protocol error is a *typed response*, never a dead socket —
except an oversized or truncated frame, after which the byte stream
cannot be trusted and the connection is closed (the error response is
still sent first when possible).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

from repro.errors import ReproError

#: Frame header: 4-byte big-endian unsigned payload length.
HEADER = struct.Struct(">I")

#: Default upper bound on one frame's payload, bytes.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ReproError):
    """Base class for wire-protocol violations."""

    code = "malformed"
    #: Whether the byte stream is still trustworthy after this error.
    recoverable = True


class MalformedFrameError(ProtocolError):
    """The frame body was not a JSON object."""


class FrameTooLargeError(ProtocolError):
    """The declared frame length exceeds the server's limit."""

    code = "oversized"
    recoverable = False


class ConnectionClosed(ReproError):
    """The peer closed the connection (clean or mid-frame)."""


def encode_frame(obj: object) -> bytes:
    """Serialise one JSON-able object into a length-prefixed frame."""
    payload = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    return HEADER.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_FRAME_BYTES
) -> dict:
    """Read one frame; returns the decoded JSON object.

    Raises :class:`ConnectionClosed` on EOF (clean between frames or
    abrupt mid-frame), :class:`FrameTooLargeError` when the declared
    length exceeds ``max_bytes`` (unrecoverable: the payload is not
    consumed), and :class:`MalformedFrameError` when the payload is not
    a JSON object (recoverable: framing is intact, the connection can
    continue).
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        raise ConnectionClosed("peer closed the connection") from None
    (length,) = HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds limit of {max_bytes}"
        )
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        raise ConnectionClosed("peer closed mid-frame") from None
    try:
        obj = json.loads(payload)
    except ValueError as exc:
        raise MalformedFrameError(f"undecodable frame: {exc}") from None
    if not isinstance(obj, dict):
        raise MalformedFrameError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def ok_response(request_id: object, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: object,
    code: str,
    message: str,
    **extra: object,
) -> dict:
    error: dict = {"code": code, "message": message}
    error.update(extra)
    return {"id": request_id, "ok": False, "error": error}


def jsonable(value: object) -> object:
    """Coerce result payloads (numpy scalars, tuples) into plain JSON.

    Query results carry ``np.float64``/``np.int64`` scalars and tuple
    rows; ``json.dumps`` refuses both. This keeps the coercion in one
    place so every response path agrees.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    # numpy scalars expose item(); anything else falls back to str.
    item = getattr(value, "item", None)
    if callable(item):
        return jsonable(item())
    return str(value)


async def write_frame(
    writer: asyncio.StreamWriter,
    obj: object,
    *,
    timeout: Optional[float] = None,
) -> None:
    """Write one frame and drain, with an optional slow-client timeout.

    Raises :class:`ConnectionClosed` when the peer is gone or cannot
    keep up (``asyncio.TimeoutError`` on drain) — the caller decides
    whether to drop the connection.
    """
    try:
        writer.write(encode_frame(obj))
        if timeout is None:
            await writer.drain()
        else:
            await asyncio.wait_for(writer.drain(), timeout=timeout)
    except asyncio.TimeoutError:
        raise ConnectionClosed("slow client: write timed out") from None
    except (ConnectionError, RuntimeError):
        raise ConnectionClosed("peer closed the connection") from None
