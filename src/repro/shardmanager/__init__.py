"""Shard Manager (SM): sharding-as-a-service (paper §III).

SM abstracts shard placement, migration and failover, load balancing,
replica management, resource-constraint checks and machine-automation
integration away from applications. An application (like Cubrick) only:

  (a) maps its keys to SM's flat shard space,
  (b) exports per-shard load metrics and host capacities, and
  (c) implements the ``addShard``/``dropShard`` endpoints (plus the
      ``prepare*`` pair for graceful migration).

Components mirror the paper's Figure 3: :class:`SMServer` (central
scheduler), :class:`ApplicationServer` (user services hosting shards),
:class:`SMClient` (request routing through service discovery),
:class:`Datastore` (Zookeeper-like heartbeats + persistent state), and
:class:`~repro.smc.ServiceDiscovery` from :mod:`repro.smc`.
"""

from repro.shardmanager.app_server import (
    ApplicationServer,
    InMemoryApplicationServer,
)
from repro.shardmanager.balancer import LoadBalancer, MigrationProposal
from repro.shardmanager.client import RoutedRequest, SMClient
from repro.shardmanager.datastore import Datastore, Session
from repro.shardmanager.metrics import MetricsStore, MovingAverage
from repro.shardmanager.migration import MigrationEngine, MigrationRecord
from repro.shardmanager.placement import PlacementDecision, PlacementPolicy
from repro.shardmanager.server import Replica, ReplicaRole, ShardEntry, SMServer
from repro.shardmanager.spec import ReplicationModel, ServiceSpec, SpreadDomain

__all__ = [
    "ApplicationServer",
    "InMemoryApplicationServer",
    "LoadBalancer",
    "MigrationProposal",
    "SMClient",
    "RoutedRequest",
    "Datastore",
    "Session",
    "MetricsStore",
    "MovingAverage",
    "MigrationEngine",
    "MigrationRecord",
    "PlacementDecision",
    "PlacementPolicy",
    "SMServer",
    "ShardEntry",
    "Replica",
    "ReplicaRole",
    "ReplicationModel",
    "ServiceSpec",
    "SpreadDomain",
]
