"""Application Server interface — the endpoints SM calls.

SM server is excluded from the data-intensive path: shard migrations are
orchestrated by SM but *executed* by the application servers themselves
through the endpoints below (paper §III-A). Cubrick's node
(:class:`repro.cubrick.node.CubrickNode`) implements this interface; a
lightweight :class:`InMemoryApplicationServer` is provided for SM's own
tests and for demo workloads that do not need a full DBMS.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.errors import (
    ShardAlreadyAssignedError,
    ShardNotFoundError,
)


class ApplicationServer(abc.ABC):
    """The SM-facing surface of one application host.

    The two mandatory endpoints are :meth:`add_shard` and
    :meth:`drop_shard`; the ``prepare_*`` pair enables graceful (zero
    downtime) migrations (paper §IV-E). Implementations own all business
    logic — discovering what data to recover and copying it; SM only
    coordinates.
    """

    def __init__(self, host_id: str):
        self.host_id = host_id

    @abc.abstractmethod
    def add_shard(self, shard_id: int, source: Optional["ApplicationServer"]) -> None:
        """Take ownership of ``shard_id``.

        ``source`` is the healthy old server on a live migration, or
        ``None`` on a failover / fresh placement (the implementation must
        then recover data from wherever its durability story lives — for
        Cubrick, a healthy replica in another region).

        May raise :class:`repro.errors.NonRetryableShardError` to tell SM
        this host cannot take the shard (Cubrick does this on shard
        collisions) — SM will try a different target.
        """

    @abc.abstractmethod
    def drop_shard(self, shard_id: int) -> None:
        """Release ownership of ``shard_id`` and delete its data."""

    def prepare_add_shard(
        self, shard_id: int, source: Optional["ApplicationServer"]
    ) -> None:
        """Graceful migration step 1: copy data, serve only forwarded traffic.

        Default implementation simply performs the copy via
        :meth:`add_shard`-equivalent logic; subclasses may override.
        """
        self.add_shard(shard_id, source)

    def prepare_drop_shard(self, shard_id: int, target: "ApplicationServer") -> None:
        """Graceful migration step 2: start forwarding requests to target."""

    def commit_add_shard(self, shard_id: int) -> None:
        """Graceful migration step 3: the data was already copied by
        :meth:`prepare_add_shard`; this host now handles requests for the
        shard from all sources (the protocol's ``addShard`` call)."""

    # -- metrics (measurement side of load balancing) --------------------

    @abc.abstractmethod
    def shard_metrics(self) -> dict[int, float]:
        """Per-shard load in the service's chosen metric."""

    @abc.abstractmethod
    def exported_capacity(self) -> float:
        """This host's capacity in the same metric."""

    @abc.abstractmethod
    def hosted_shards(self) -> set[int]:
        """Shards currently owned by this server."""


class InMemoryApplicationServer(ApplicationServer):
    """A minimal stateful application: each shard is a blob with a size.

    Useful for exercising SM's placement/balancing/migration machinery
    without a full DBMS behind it.
    """

    def __init__(self, host_id: str, capacity: float = 1000.0):
        super().__init__(host_id)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self._capacity = capacity
        self._shards: dict[int, float] = {}  # shard_id -> size
        self._forwarding: set[int] = set()

    def add_shard(self, shard_id: int, source: Optional[ApplicationServer]) -> None:
        if shard_id in self._shards:
            raise ShardAlreadyAssignedError(
                f"{self.host_id} already hosts shard {shard_id}"
            )
        size = 0.0
        if isinstance(source, InMemoryApplicationServer):
            size = source._shards.get(shard_id, 0.0)
        self._shards[shard_id] = size

    def drop_shard(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise ShardNotFoundError(f"{self.host_id} does not host shard {shard_id}")
        del self._shards[shard_id]
        self._forwarding.discard(shard_id)

    def prepare_drop_shard(self, shard_id: int, target: ApplicationServer) -> None:
        if shard_id not in self._shards:
            raise ShardNotFoundError(f"{self.host_id} does not host shard {shard_id}")
        self._forwarding.add(shard_id)

    def set_capacity(self, capacity: float) -> None:
        """Re-export this host's capacity (paper §III-A3: applications
        may periodically change the current capacity of a host)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self._capacity = capacity

    def set_shard_size(self, shard_id: int, size: float) -> None:
        """Simulate data growth inside a shard."""
        if shard_id not in self._shards:
            raise ShardNotFoundError(f"{self.host_id} does not host shard {shard_id}")
        if size < 0:
            raise ValueError(f"shard size must be non-negative: {size}")
        self._shards[shard_id] = float(size)

    def shard_metrics(self) -> dict[int, float]:
        return dict(self._shards)

    def exported_capacity(self) -> float:
        return self._capacity

    def hosted_shards(self) -> set[int]:
        return set(self._shards)

    def is_forwarding(self, shard_id: int) -> bool:
        return shard_id in self._forwarding
