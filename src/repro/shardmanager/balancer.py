"""Load balancing: propose shard migrations to even out host loads.

SM server periodically evaluates per-host utilization (reported load over
exported capacity) and proposes migrations from hosts above the fleet
mean to hosts below it. The number of migrations per run is throttled,
since migrations invariably cause overhead (paper §III-A3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cluster.topology import Cluster
from repro.obs import Observability
from repro.shardmanager.metrics import MetricsStore
from repro.shardmanager.spec import ServiceSpec


@dataclass(frozen=True)
class MigrationProposal:
    """One shard move suggested by the balancer."""

    shard_id: int
    from_host: str
    to_host: str
    shard_load: float
    reason: str = "load_balance"


class LoadBalancer:
    """Greedy utilization-levelling balancer with a per-run throttle."""

    def __init__(
        self,
        spec: ServiceSpec,
        cluster: Cluster,
        metrics: MetricsStore,
        obs: Optional[Observability] = None,
    ):
        self._spec = spec
        self._cluster = cluster
        self._metrics = metrics
        self.obs = obs if obs is not None else Observability()
        self._runs_counter = self.obs.metrics.counter("shardmanager.balancer.runs")
        self._proposal_counter = self.obs.metrics.counter(
            "shardmanager.balancer.proposals"
        )
        self._imbalance_gauge = self.obs.metrics.gauge(
            "shardmanager.balancer.imbalance"
        )

    def propose(
        self,
        hosted: dict[str, set[int]],
        *,
        region: Optional[str] = None,
        forbidden_targets: Optional[dict[int, set[str]]] = None,
    ) -> list[MigrationProposal]:
        """Compute up to ``max_migrations_per_run`` load-levelling moves.

        ``hosted`` maps host id → shards it currently owns (from SM's
        assignment table). ``forbidden_targets`` maps shard id → hosts
        that must not receive it (other replicas' hosts, hosts that threw
        non-retryable errors).
        """
        # Copy so in-run updates (destinations chosen this run) never
        # leak back into the caller's map.
        forbidden = {
            shard_id: set(hosts)
            for shard_id, hosts in (forbidden_targets or {}).items()
        }
        self._runs_counter.inc()
        imbalance = self.imbalance(region)
        if math.isfinite(imbalance):
            self._imbalance_gauge.set(imbalance)
        budget = self._spec.max_migrations_per_run
        if budget == 0:
            return []

        # Receivers may be any placeable host (including empty ones);
        # donors must actually host shards.
        hosts = self._cluster.placeable_hosts(region)
        donors = {h.host_id for h in hosts} & {
            host_id for host_id, owned in hosted.items() if owned
        }
        if len(hosts) < 2 or not donors:
            return []

        capacity = {h.host_id: self._metrics.capacity(h.host_id) for h in hosts}
        # Movable shards: only what SM's assignment table says the host
        # owns (metrics may briefly include shards mid-graceful-drop).
        shards = {
            h.host_id: {
                shard_id: weight
                for shard_id, weight in self._metrics.shards_on_host(h.host_id)
                if shard_id in hosted.get(h.host_id, set())
            }
            for h in hosts
        }
        # Shards with no metric yet still need to be movable — weight 0.
        for host_id, owned in hosted.items():
            if host_id in shards:
                for shard_id in owned:
                    shards[host_id].setdefault(shard_id, 0.0)
        # Work on a mutable copy of loads so successive proposals in one
        # run see the effect of earlier ones. Load is derived from the
        # *owned* shard set rather than raw ``host_load``: during a
        # graceful drop the departing replica keeps reporting its metric
        # for a grace window while the new owner already reports
        # provisional load, so the raw per-host sums count the migrating
        # shard twice and overstate the old host's excess.
        load = {
            h.host_id: sum(shards[h.host_id].values()) for h in hosts
        }

        eligible = [h.host_id for h in hosts if capacity.get(h.host_id, 0.0) > 0]
        if len(eligible) < 2:
            return []

        proposals: list[MigrationProposal] = []
        moved: set[int] = set()
        for __ in range(budget):
            move = self._best_move(
                eligible, donors, load, capacity, shards, forbidden, moved
            )
            if move is None:
                break
            proposals.append(move)
            load[move.from_host] -= move.shard_load
            load[move.to_host] += move.shard_load
            del shards[move.from_host][move.shard_id]
            # One move per shard per run: a just-proposed shard must not
            # chain onwards from its new home, and replicas of the same
            # shard on other donors must not pile onto the destination
            # slot we just reserved.
            moved.add(move.shard_id)
            forbidden.setdefault(move.shard_id, set()).add(move.to_host)
            if not shards[move.from_host]:
                donors.discard(move.from_host)
        self._proposal_counter.inc(len(proposals))
        return proposals

    def _best_move(
        self,
        eligible: list[str],
        donors: set[str],
        load: dict[str, float],
        capacity: dict[str, float],
        shards: dict[str, dict[int, float]],
        forbidden: dict[int, set[str]],
        moved: set[int],
    ) -> Optional[MigrationProposal]:
        util = {h: load[h] / capacity[h] for h in eligible}
        mean_util = sum(util.values()) / len(util)
        tolerance = self._spec.load_imbalance_tolerance

        donor_candidates = [h for h in eligible if h in donors and shards.get(h)]
        if not donor_candidates:
            return None
        donor = max(donor_candidates, key=lambda h: util[h])
        if util[donor] <= mean_util * (1.0 + tolerance):
            return None  # fleet already balanced within tolerance

        receivers = sorted(eligible, key=lambda h: util[h])
        # Move the heaviest shard that actually reduces the donor's excess
        # without overshooting the receiver past the mean.
        donor_shards = sorted(
            shards[donor].items(), key=lambda kv: (-kv[1], kv[0])
        )
        for shard_id, shard_load in donor_shards:
            if shard_load <= 0 or shard_id in moved:
                continue
            blocked = forbidden.get(shard_id, set())
            for receiver in receivers:
                if receiver == donor or receiver in blocked:
                    continue
                new_receiver_load = load[receiver] + shard_load
                if new_receiver_load > capacity[receiver] * self._spec.capacity_headroom:
                    continue
                new_receiver_util = new_receiver_load / capacity[receiver]
                # Don't create a new hotspot worse than the donor was.
                if new_receiver_util >= util[donor]:
                    continue
                return MigrationProposal(
                    shard_id=shard_id,
                    from_host=donor,
                    to_host=receiver,
                    shard_load=shard_load,
                )
        return None

    def imbalance(self, region: Optional[str] = None) -> float:
        """Max/mean utilization ratio across placeable hosts (1.0 = even)."""
        hosts = self._cluster.placeable_hosts(region)
        utils = [
            self._metrics.utilization(h.host_id)
            for h in hosts
            if self._metrics.capacity(h.host_id) > 0
        ]
        if not utils:
            return 1.0
        mean = sum(utils) / len(utils)
        if mean == 0:
            return 1.0
        return max(utils) / mean
