"""SM Client library (paper §III-A).

Application-server clients hand the SM Client a ``(service, shard)``
pair; the client resolves it to a hostname through the service-discovery
system (SMC) — which is cached locally and therefore may be briefly
stale after a migration — and dispatches the request to the resolved
server. During a graceful migration the old server forwards requests, so
stale reads still succeed (paper §IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.chaos.policies import RetryStats, ResiliencePolicy, call_with_retries
from repro.errors import (
    HostUnavailableError,
    ShardMappingUnknownError,
)
from repro.cluster.topology import Cluster
from repro.shardmanager.server import SMServer

T = TypeVar("T")


@dataclass(frozen=True)
class RoutedRequest:
    """Bookkeeping about how a request was routed (for tests/metrics)."""

    shard_id: int
    resolved_host: str
    served_by: str
    was_stale: bool
    forwarded: bool


class SMClient:
    """Resolves shards and dispatches requests to application servers."""

    def __init__(self, server: SMServer, cluster: Optional[Cluster] = None):
        self._server = server
        self._cluster = cluster if cluster is not None else server.cluster

    def resolve(self, shard_id: int) -> str:
        """Shard → host as seen through the (possibly stale) SMC cache."""
        host_id = self._server.discovery.resolve(
            shard_id, self._server.simulator.now
        )
        if host_id is None:
            raise ShardMappingUnknownError(f"shard {shard_id} is unassigned")
        return host_id

    def resolve_authoritative(self, shard_id: int) -> str:
        """Shard → host bypassing the cache (SM server's own view)."""
        host_id = self._server.discovery.resolve_authoritative(shard_id)
        if host_id is None:
            raise ShardMappingUnknownError(f"shard {shard_id} is unassigned")
        return host_id

    def shard_map(self) -> dict[int, list[tuple[str, str]]]:
        """The journaled shard map read through the metadata plane.

        Served from the SM's datastore — when that is the
        consensus-replicated store, this read survives the loss of the
        SM server's own memory (leased/quorum semantics apply). Maps
        shard id → ``[(host_id, role), ...]``.
        """
        datastore = self._server.datastore
        prefix = self._server._shardmap_prefix
        shard_map: dict[int, list[tuple[str, str]]] = {}
        for key in datastore.keys_with_prefix(prefix):
            value = datastore.get(key)
            if value:
                shard_id = int(key.rsplit("/", 1)[1])
                shard_map[shard_id] = [tuple(pair) for pair in value]
        return shard_map

    def request(
        self,
        shard_id: int,
        handler: Callable[[str], T],
    ) -> tuple[T, RoutedRequest]:
        """Dispatch ``handler(host_id)`` to the host serving ``shard_id``.

        If the cached mapping is stale and points at a host that no
        longer owns the shard but is still up (graceful migration in
        flight), the request is transparently forwarded to the current
        owner — mirroring the prepareDropShard forwarding behaviour.
        Raises :class:`HostUnavailableError` if the resolved host is down
        and no forwarding is possible (failover still propagating).
        """
        resolved = self.resolve(shard_id)
        authoritative = self._server.discovery.resolve_authoritative(shard_id)
        was_stale = resolved != authoritative

        target = resolved
        forwarded = False
        host = self._cluster.host(target)
        owns = shard_id in self._server.shards_on_host(target)
        if not owns or not host.is_available:
            if not host.is_available and not owns:
                raise HostUnavailableError(
                    f"shard {shard_id}: cached host {target} is down and "
                    f"holds no data to forward from"
                )
            if authoritative is None:
                raise ShardMappingUnknownError(f"shard {shard_id} is unassigned")
            if not host.is_available:
                raise HostUnavailableError(
                    f"shard {shard_id}: cached host {target} is unavailable"
                )
            # Old server is healthy but mid-migration: forward.
            target = authoritative
            forwarded = True
            if not self._cluster.host(target).is_available:
                raise HostUnavailableError(
                    f"shard {shard_id}: owner {target} is unavailable"
                )
        result = handler(target)
        return result, RoutedRequest(
            shard_id=shard_id,
            resolved_host=resolved,
            served_by=target,
            was_stale=was_stale,
            forwarded=forwarded,
        )

    def request_with_retries(
        self,
        shard_id: int,
        handler: Callable[[str], T],
        *,
        policy: ResiliencePolicy,
        rng=None,
        hop_latency: Optional[Callable[[str], float]] = None,
    ) -> tuple[T, RoutedRequest, RetryStats]:
        """:meth:`request` under the unified resilience policy.

        Transient routing errors (host down, mapping unknown) consume
        the policy's retry budget with deterministic backoff, instead of
        failing the first time a failover is still propagating.

        ``hop_latency(host_id)`` reports the simulated service time of
        the hop; a hop exceeding the policy's per-hop timeout **counts
        as a failed attempt** — the same semantics the region
        coordinator applies — where previously the SM client would wait
        on a slow host indefinitely. The timed-out response is abandoned
        and the request re-dispatched, so handlers must be idempotent
        (reads are).
        """

        def attempt(_attempt_number: int) -> tuple[T, RoutedRequest]:
            result, routed = self.request(shard_id, handler)
            if hop_latency is not None:
                elapsed = float(hop_latency(routed.served_by))
                if policy.timeout.is_timeout(elapsed):
                    raise HostUnavailableError(
                        f"shard {shard_id}: host {routed.served_by} exceeded "
                        f"{policy.timeout.per_hop}s per-hop timeout "
                        f"({elapsed:.3f}s)"
                    )
            return result, routed

        (result, routed), stats = call_with_retries(
            attempt, policy=policy, rng=rng
        )
        if hop_latency is not None:
            stats.timeouts = sum(
                1 for e in stats.errors if "per-hop timeout" in e
            )
        return result, routed, stats
