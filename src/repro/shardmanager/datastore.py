"""Zookeeper-like datastore with ephemeral sessions and watches.

SM stores its persistent state in Zookeeper (Facebook's implementation is
called Zeus) and collects application-server heartbeats through it: each
AS holds an ephemeral session, and when heartbeats stop, Zookeeper
notifies SM server, which may trigger a shard failover (paper §III-A).

The substitution is deliberate and documented in DESIGN.md: SM only needs
key-value storage, ephemeral nodes tied to sessions, and watch
notifications — not the replication/consensus internals of a real
Zookeeper ensemble. This in-memory implementation provides exactly those
semantics on top of the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs import Observability
from repro.sim.engine import Simulator


@dataclass
class Session:
    """One application server's ephemeral session."""

    session_id: int
    owner: str  # host id
    last_heartbeat: float
    expired: bool = False
    ephemeral_keys: set[str] = field(default_factory=set)


class Datastore:
    """In-memory coordination store on the simulated clock.

    * ``set``/``get``/``delete`` manage persistent keys.
    * ``create_ephemeral`` ties a key to a session; the key vanishes when
      the session expires.
    * ``watch_sessions`` registers a callback invoked with the owner name
      whenever a session expires — the SM server's failure detector.

    Session expiry is evaluated by a periodic sweep (``check_interval``);
    a session is expired when no heartbeat arrived within
    ``session_timeout`` seconds of virtual time.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        session_timeout: float = 30.0,
        check_interval: float = 5.0,
        obs: Observability | None = None,
    ):
        if session_timeout <= 0 or check_interval <= 0:
            raise SimulationError("session_timeout and check_interval must be positive")
        self._simulator = simulator
        self.obs = obs if obs is not None else Observability()
        self._sessions_counter = self.obs.metrics.counter(
            "shardmanager.datastore.sessions_created"
        )
        self._heartbeat_counter = self.obs.metrics.counter(
            "shardmanager.datastore.heartbeats"
        )
        self._expired_counter = self.obs.metrics.counter(
            "shardmanager.datastore.sessions_expired"
        )
        self._sweep_counter = self.obs.metrics.counter(
            "shardmanager.datastore.sweeps"
        )
        self._watch_counter = self.obs.metrics.counter(
            "shardmanager.datastore.watch_deliveries"
        )
        self.session_timeout = session_timeout
        self._data: dict[str, Any] = {}
        self._sessions: dict[int, Session] = {}
        self._next_session_id = 1
        self._expiry_watchers: list[Callable[[str], None]] = []
        self._cancel_sweep = simulator.schedule_periodic(
            check_interval, self._sweep_sessions
        )

    # ------------------------------------------------------------------
    # Key-value storage
    # ------------------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self._data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys_with_prefix(self, prefix: str) -> list[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    # ------------------------------------------------------------------
    # Sessions and heartbeats
    # ------------------------------------------------------------------

    def create_session(self, owner: str) -> Session:
        session = Session(
            session_id=self._next_session_id,
            owner=owner,
            last_heartbeat=self._simulator.now,
        )
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        self._sessions_counter.inc()
        return session

    def heartbeat(self, session: Session) -> None:
        """Record a heartbeat; expired sessions cannot be revived."""
        if session.expired:
            raise SimulationError(
                f"session {session.session_id} ({session.owner}) already expired"
            )
        session.last_heartbeat = self._simulator.now
        self._heartbeat_counter.inc()

    def close_session(self, session: Session) -> None:
        """Graceful shutdown: remove ephemeral keys without expiry alarms."""
        for key in session.ephemeral_keys:
            self._data.pop(key, None)
        session.expired = True
        self._sessions.pop(session.session_id, None)

    def create_ephemeral(self, session: Session, key: str, value: Any) -> None:
        if session.expired:
            raise SimulationError(
                f"cannot create ephemeral key on expired session {session.session_id}"
            )
        self._data[key] = value
        session.ephemeral_keys.add(key)

    def watch_sessions(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the owner of expired sessions."""
        self._expiry_watchers.append(callback)

    def live_sessions(self) -> list[Session]:
        return [s for s in self._sessions.values() if not s.expired]

    def _sweep_sessions(self) -> None:
        now = self._simulator.now
        self._sweep_counter.inc()
        expired = [
            s
            for s in self._sessions.values()
            if not s.expired and now - s.last_heartbeat > self.session_timeout
        ]
        for session in expired:
            self._expire(session)

    def _expire(self, session: Session) -> None:
        """Expire one session: drop ephemerals, notify expiry watchers."""
        session.expired = True
        for key in session.ephemeral_keys:
            self._data.pop(key, None)
        del self._sessions[session.session_id]
        self._expired_counter.inc()
        self.obs.events.emit(
            "shardmanager.datastore.session_expired",
            owner=session.owner,
            session_id=session.session_id,
            last_heartbeat=session.last_heartbeat,
        )
        for watcher in self._expiry_watchers:
            # Watch deliveries are the SM failure detector's trigger;
            # each gets its own (root) span so failover work nests
            # under the notification that caused it.
            with self.obs.tracer.span(
                "shardmanager.datastore.watch_delivery",
                owner=session.owner,
            ):
                self._watch_counter.inc()
                watcher(session.owner)

    def expire_session_of(self, owner: str) -> bool:
        """Force-expire ``owner``'s live session (chaos: a Zookeeper-side
        session loss while the server itself is healthy).

        Returns True when a session was expired. The watch pipeline runs
        exactly as it would for a missed-heartbeat expiry, so SM reacts
        with the same failover path.
        """
        for session in list(self._sessions.values()):
            if session.owner == owner and not session.expired:
                self._expire(session)
                return True
        return False

    def shutdown(self) -> None:
        """Stop the background sweep (end of experiment)."""
        self._cancel_sweep()
