"""Per-shard load metrics and server capacities (paper §III-A3).

SM decouples *measurement* from *management*: applications export
whatever metric describes their load (memory, CPU, QPS, IOPS, ...), and
SM server runs the balancing logic on top. Key requirements reproduced
here:

* metrics are exported **per shard** (asymmetric shards);
* shard sizes change over time, so SM collects them periodically
  (dynamic shards);
* spiky metrics must be smoothed by the application — an exponential
  moving average helper is provided;
* servers may be heterogeneous and may re-export their capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass
class MovingAverage:
    """Exponential moving average for smoothing spiky metrics.

    The paper notes that if the load-balancing metric has a spiky nature
    (such as CPU usage), it is the application's responsibility to smooth
    bursts out; this is the canonical tool for that.

    Samples must be finite: a single NaN would poison every subsequent
    value (NaN propagates through the blend), and an infinity can never
    decay away, so both are rejected up front. :meth:`reset` returns the
    average to its unprimed state, e.g. after a shard migrates and its
    historical load no longer describes the new placement.
    """

    alpha: float = 0.3
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {self.alpha}")
        if self.value is not None and not math.isfinite(self.value):
            raise ValueError(f"initial value must be finite: {self.value}")

    def update(self, sample: float) -> float:
        sample = float(sample)
        if not math.isfinite(sample):
            raise ValueError(f"sample must be finite: {sample}")
        if self.value is None:
            self.value = sample
        else:
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value
        return self.value

    def reset(self) -> None:
        """Forget all history; the next sample re-primes the average."""
        self.value = None


@dataclass
class ShardMetric:
    """The latest reported load of one shard on one host."""

    shard_id: int
    host_id: str
    value: float
    reported_at: float


class MetricsStore:
    """SM server's view of shard loads and host capacities."""

    def __init__(self) -> None:
        self._shard_metrics: dict[tuple[int, str], ShardMetric] = {}
        self._capacities: dict[str, float] = {}

    # -- shard loads ----------------------------------------------------

    def report_shard(self, shard_id: int, host_id: str, value: float,
                     now: float) -> None:
        if value < 0:
            raise ValueError(
                f"shard metric must be non-negative: shard={shard_id} value={value}"
            )
        self._shard_metrics[(shard_id, host_id)] = ShardMetric(
            shard_id=shard_id, host_id=host_id, value=value, reported_at=now
        )

    def drop_shard(self, shard_id: int, host_id: str) -> None:
        self._shard_metrics.pop((shard_id, host_id), None)

    def shard_load(self, shard_id: int, host_id: str) -> float:
        metric = self._shard_metrics.get((shard_id, host_id))
        return metric.value if metric is not None else 0.0

    def host_load(self, host_id: str) -> float:
        """Total reported load of all shards on one host."""
        return sum(
            m.value for (__, hid), m in self._shard_metrics.items() if hid == host_id
        )

    def shards_on_host(self, host_id: str) -> list[tuple[int, float]]:
        """(shard_id, load) pairs on a host, heaviest first."""
        pairs = [
            (sid, m.value)
            for (sid, hid), m in self._shard_metrics.items()
            if hid == host_id
        ]
        pairs.sort(key=lambda p: (-p[1], p[0]))
        return pairs

    # -- host capacities ------------------------------------------------

    def report_capacity(self, host_id: str, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative: {capacity}")
        self._capacities[host_id] = float(capacity)

    def capacity(self, host_id: str) -> float:
        return self._capacities.get(host_id, 0.0)

    def remove_host(self, host_id: str) -> None:
        self._capacities.pop(host_id, None)
        stale = [key for key in self._shard_metrics if key[1] == host_id]
        for key in stale:
            del self._shard_metrics[key]

    # -- fleet summaries --------------------------------------------------

    def utilization(self, host_id: str) -> float:
        """Load as a fraction of capacity (inf if capacity unknown/zero)."""
        capacity = self.capacity(host_id)
        load = self.host_load(host_id)
        if capacity <= 0:
            return float("inf") if load > 0 else 0.0
        return load / capacity

    def fleet_snapshot(self) -> dict[str, dict[str, float]]:
        """Per-host {load, capacity, utilization} for dashboards/tests."""
        hosts = set(self._capacities) | {hid for (_, hid) in self._shard_metrics}
        return {
            hid: {
                "load": self.host_load(hid),
                "capacity": self.capacity(hid),
                "utilization": self.utilization(hid),
            }
            for hid in sorted(hosts)
        }
