"""Shard migration workflows (paper §III-A2, §IV-E).

Two kinds of migration exist:

* **Live migration** — the old server is healthy. SM uses the *graceful*
  protocol so primaries move with zero downtime::

      prepareAddShard(s1) on newServer   # copy data from oldServer
      prepareDropShard(s1) on oldServer  # start forwarding to newServer
      addShard(s1) on newServer          # newServer serves all sources
      publish(s1 -> newServer) in SMC    # propagates over a few seconds
      dropShard(s1) on oldServer         # after SMC propagation settles

* **Failover** — the old server is unavailable; the protocol collapses to
  a single ``addShard`` on the target (which recovers data from a healthy
  replica, e.g. another region for Cubrick) plus the SMC publish.

Each executed migration is recorded (Figure 4d counts these per day).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chaos.policies import ResiliencePolicy, call_with_retries
from repro.errors import MigrationError, RetryableShardError
from repro.obs import Observability
from repro.shardmanager.app_server import ApplicationServer
from repro.sim.engine import Simulator
from repro.smc.registry import ServiceDiscovery


@dataclass(frozen=True)
class MigrationRecord:
    """One completed (or started, for graceful drops in flight) migration."""

    time: float
    shard_id: int
    from_host: Optional[str]
    to_host: str
    reason: str  # load_balance | drain | failover | manual
    graceful: bool


class MigrationEngine:
    """Executes migration workflows against application servers + SMC."""

    def __init__(
        self,
        simulator: Simulator,
        discovery: ServiceDiscovery,
        *,
        drop_grace_period: Optional[float] = None,
        policy: Optional[ResiliencePolicy] = None,
        obs: Optional[Observability] = None,
    ):
        self._simulator = simulator
        self._discovery = discovery
        # Governs retries of *transient* shard errors during data copy.
        # Non-retryable refusals (collisions) always propagate so the
        # caller can pick a different target. Legacy = one attempt.
        self.policy = policy if policy is not None else ResiliencePolicy.legacy()
        self.obs = obs if obs is not None else Observability()
        # Cubrick waits out SMC's usual propagation delay before deleting
        # data on the old server (paper §IV-E).
        if drop_grace_period is None:
            drop_grace_period = discovery.tree.max_expected_delay()
        if drop_grace_period < 0:
            raise MigrationError(
                f"drop_grace_period must be non-negative: {drop_grace_period}"
            )
        self.drop_grace_period = drop_grace_period
        self.log: list[MigrationRecord] = []

    # ------------------------------------------------------------------
    # Workflows
    # ------------------------------------------------------------------

    def live_migrate(
        self,
        shard_id: int,
        source: ApplicationServer,
        target: ApplicationServer,
        *,
        reason: str = "load_balance",
    ) -> MigrationRecord:
        """Graceful zero-downtime migration of one shard.

        Raises whatever the target's ``prepare_add_shard`` raises —
        including the non-retryable collision error Cubrick throws — in
        which case nothing was changed and the caller should try another
        target.
        """
        if source.host_id == target.host_id:
            raise MigrationError(
                f"shard {shard_id}: source and target are both {source.host_id}"
            )
        with self.obs.tracer.span(
            "shardmanager.migration.live_migrate",
            shard=shard_id, reason=reason,
        ) as span:
            span.annotate(from_host=source.host_id, to_host=target.host_id)
            call_with_retries(
                lambda __a: target.prepare_add_shard(shard_id, source),
                policy=self.policy,
                retryable=(RetryableShardError,),
            )
            source.prepare_drop_shard(shard_id, target)
            target.commit_add_shard(shard_id)
            self._discovery.publish(shard_id, target.host_id, self._simulator.now)

        def finish_drop() -> None:
            source.drop_shard(shard_id)

        self._simulator.call_later(self.drop_grace_period, finish_drop)
        record = MigrationRecord(
            time=self._simulator.now,
            shard_id=shard_id,
            from_host=source.host_id,
            to_host=target.host_id,
            reason=reason,
            graceful=True,
        )
        self.log.append(record)
        self._record_obs(record)
        return record

    def failover(
        self,
        shard_id: int,
        target: ApplicationServer,
        *,
        failed_host: Optional[str] = None,
        recovery_source: Optional[ApplicationServer] = None,
        publish: bool = True,
    ) -> MigrationRecord:
        """Failover: old server is gone; target recovers and takes over.

        ``recovery_source`` is where the data can be copied from (for
        Cubrick, a healthy server in a different region); ``None`` means
        the application recovers from its own durability mechanism.
        ``publish=False`` skips the SMC publication — used when the
        replacement replica is a secondary and discovery must keep
        pointing at the (possibly just-promoted) primary.
        """
        with self.obs.tracer.span(
            "shardmanager.migration.failover", shard=shard_id
        ) as span:
            span.annotate(
                failed_host=str(failed_host),
                to_host=target.host_id,
                recovered_from=(
                    recovery_source.host_id if recovery_source is not None else None
                ),
            )
            call_with_retries(
                lambda __a: target.add_shard(shard_id, recovery_source),
                policy=self.policy,
                retryable=(RetryableShardError,),
            )
            if publish:
                self._discovery.publish(
                    shard_id, target.host_id, self._simulator.now
                )
        record = MigrationRecord(
            time=self._simulator.now,
            shard_id=shard_id,
            from_host=failed_host,
            to_host=target.host_id,
            reason="failover",
            graceful=False,
        )
        self.log.append(record)
        self._record_obs(record)
        return record

    def _record_obs(self, record: MigrationRecord) -> None:
        self.obs.metrics.counter(
            "shardmanager.migration.completed", reason=record.reason
        ).inc()
        self.obs.events.emit(
            "shardmanager.migration.completed",
            shard=record.shard_id,
            from_host=str(record.from_host),
            to_host=record.to_host,
            reason=record.reason,
            graceful=record.graceful,
        )

    # ------------------------------------------------------------------
    # Reporting (Figure 4d)
    # ------------------------------------------------------------------

    def migrations_per_day(self, horizon_days: int) -> list[int]:
        """Migrations executed in each simulated day."""
        if horizon_days <= 0:
            raise ValueError(f"horizon_days must be positive: {horizon_days}")
        buckets = [0] * horizon_days
        for record in self.log:
            day = int(record.time // 86400.0)
            if 0 <= day < horizon_days:
                buckets[day] += 1
        return buckets

    def count_by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.log:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts
