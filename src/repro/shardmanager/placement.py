"""Shard placement: choosing a host for a shard replica.

SM's placement goals (paper §III-A3): (a) only assign shards to servers
with enough capacity, and (b) spread load evenly. Placement additionally
honours the service's *spread* configuration — replicas of one shard must
land in distinct failure domains (host, rack or region).

The algorithm is greedy least-utilization-first, which is what a
production balancer converges to for the size-like metrics Cubrick
exports (memory footprint / decompressed size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cluster.topology import Cluster
from repro.errors import CapacityExceededError
from repro.obs import Observability
from repro.shardmanager.metrics import MetricsStore
from repro.shardmanager.spec import ServiceSpec


@dataclass(frozen=True)
class PlacementDecision:
    """The host chosen for one shard replica."""

    shard_id: int
    host_id: str
    projected_load: float
    projected_utilization: float


class PlacementPolicy:
    """Greedy capacity-aware, spread-aware replica placement."""

    def __init__(
        self,
        spec: ServiceSpec,
        cluster: Cluster,
        metrics: MetricsStore,
        obs: Optional[Observability] = None,
    ):
        self._spec = spec
        self._cluster = cluster
        self._metrics = metrics
        self.obs = obs if obs is not None else Observability()
        self._decision_counter = self.obs.metrics.counter(
            "shardmanager.placement.decisions"
        )
        self._exhausted_counter = self.obs.metrics.counter(
            "shardmanager.placement.capacity_exhausted"
        )

    def choose_host(
        self,
        shard_id: int,
        *,
        size_hint: float = 0.0,
        region: Optional[str] = None,
        exclude_hosts: Iterable[str] = (),
        exclude_domains: Iterable[str] = (),
        pending_load: Optional[dict[str, float]] = None,
    ) -> PlacementDecision:
        """Pick the least-utilized eligible host for a replica of ``shard_id``.

        ``exclude_hosts`` carries hosts that refused the shard with a
        non-retryable error (paper §IV-A) plus hosts already holding a
        replica. ``exclude_domains`` carries the failure domains (at the
        service's spread level) of existing replicas. ``pending_load``
        lets callers account for placements made earlier in the same
        batch before metrics catch up.

        Raises :class:`CapacityExceededError` when no host fits.
        """
        excluded_hosts = set(exclude_hosts)
        excluded_domains = set(exclude_domains)
        pending = pending_load if pending_load is not None else {}
        spread = self._spec.spread.value

        best: Optional[PlacementDecision] = None
        for host in self._cluster.placeable_hosts(region):
            if host.host_id in excluded_hosts:
                continue
            if host.failure_domain(spread) in excluded_domains:
                continue
            capacity = self._metrics.capacity(host.host_id)
            if capacity <= 0:
                continue
            load = self._metrics.host_load(host.host_id) + pending.get(
                host.host_id, 0.0
            )
            projected = load + size_hint
            if projected > capacity * self._spec.capacity_headroom:
                continue
            utilization = projected / capacity
            if best is None or utilization < best.projected_utilization:
                best = PlacementDecision(
                    shard_id=shard_id,
                    host_id=host.host_id,
                    projected_load=projected,
                    projected_utilization=utilization,
                )
        if best is None:
            self._exhausted_counter.inc()
            self.obs.events.emit(
                "shardmanager.placement.capacity_exhausted",
                shard=shard_id,
                size_hint=size_hint,
                region=str(region),
                excluded_hosts=len(excluded_hosts),
                excluded_domains=len(excluded_domains),
            )
            raise CapacityExceededError(
                f"no eligible host for shard {shard_id} "
                f"(size_hint={size_hint}, region={region}, "
                f"excluded={len(excluded_hosts)} hosts, "
                f"{len(excluded_domains)} domains)"
            )
        self._decision_counter.inc()
        return best

    def choose_replica_set(
        self,
        shard_id: int,
        *,
        size_hint: float = 0.0,
        region: Optional[str] = None,
    ) -> list[PlacementDecision]:
        """Place all replicas of a shard across distinct failure domains."""
        decisions: list[PlacementDecision] = []
        used_hosts: set[str] = set()
        used_domains: set[str] = set()
        pending: dict[str, float] = {}
        spread = self._spec.spread.value
        for __ in range(self._spec.replicas_per_shard):
            decision = self.choose_host(
                shard_id,
                size_hint=size_hint,
                region=region,
                exclude_hosts=used_hosts,
                exclude_domains=used_domains,
                pending_load=pending,
            )
            decisions.append(decision)
            used_hosts.add(decision.host_id)
            host = self._cluster.host(decision.host_id)
            used_domains.add(host.failure_domain(spread))
            pending[decision.host_id] = pending.get(decision.host_id, 0.0) + size_hint
        return decisions
