"""SM Server: the central shard-management scheduler (paper §III-A).

The server collects shard metrics for all application servers, makes
placement decisions, orchestrates migrations (load balancing, drains,
failovers) and publishes shard→host mappings to service discovery. It is
deliberately excluded from the data path: all data movement happens
between application servers through their ``addShard``/``dropShard``
endpoints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.chaos.policies import ResiliencePolicy
from repro.cluster.topology import Cluster
from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    MigrationError,
    NonRetryableShardError,
    ShardAlreadyAssignedError,
    ShardNotFoundError,
)
from repro.obs import Observability
from repro.shardmanager.app_server import ApplicationServer
from repro.shardmanager.balancer import LoadBalancer, MigrationProposal
from repro.shardmanager.datastore import Datastore, Session
from repro.shardmanager.metrics import MetricsStore
from repro.shardmanager.migration import MigrationEngine
from repro.shardmanager.placement import PlacementPolicy
from repro.shardmanager.spec import ReplicationModel, ServiceSpec
from repro.sim.engine import Simulator
from repro.smc.registry import ServiceDiscovery


class ReplicaRole(enum.Enum):
    PRIMARY = "primary"
    SECONDARY = "secondary"


@dataclass
class Replica:
    """One copy of a shard living on one host."""

    host_id: str
    role: ReplicaRole


@dataclass
class ShardEntry:
    """SM's bookkeeping for one shard."""

    shard_id: int
    replicas: list[Replica] = field(default_factory=list)
    # Hosts that refused this shard with a non-retryable error; placement
    # skips them (paper §IV-A: Cubrick throws on shard collisions).
    refused_hosts: set[str] = field(default_factory=set)

    def primary(self) -> Optional[Replica]:
        for replica in self.replicas:
            if replica.role is ReplicaRole.PRIMARY:
                return replica
        return None

    def hosts(self) -> set[str]:
        return {r.host_id for r in self.replicas}


class SMServer:
    """One SM service instance: scheduler + assignment table.

    Cubrick deploys three of these — one primary-only service per region
    (paper §IV-D) — each bound to a region of the shared cluster.
    """

    def __init__(
        self,
        spec: ServiceSpec,
        simulator: Simulator,
        cluster: Cluster,
        *,
        region: Optional[str] = None,
        datastore: Optional[Datastore] = None,
        discovery: Optional[ServiceDiscovery] = None,
        heartbeat_interval: float = 10.0,
        recovery_provider: Optional[
            Callable[[int], Optional[ApplicationServer]]
        ] = None,
        policy: Optional[ResiliencePolicy] = None,
        obs: Optional[Observability] = None,
    ):
        self.spec = spec
        # Placement/failover retry budget. The legacy default derives the
        # historical five attempts from the context default below.
        self.policy = policy if policy is not None else ResiliencePolicy.legacy()
        self.simulator = simulator
        self.cluster = cluster
        self.region = region
        self.obs = obs if obs is not None else Observability(
            clock=lambda: simulator.now
        )
        self.datastore = (
            datastore if datastore is not None
            else Datastore(simulator, obs=self.obs)
        )
        self.discovery = (
            discovery if discovery is not None else ServiceDiscovery(obs=self.obs)
        )
        self.metrics = MetricsStore()
        self.placement = PlacementPolicy(spec, cluster, self.metrics, obs=self.obs)
        self.balancer = LoadBalancer(spec, cluster, self.metrics, obs=self.obs)
        self.migrations = MigrationEngine(simulator, self.discovery, obs=self.obs)
        region_label = region if region is not None else "all"
        self._heartbeat_counter = self.obs.metrics.counter(
            "shardmanager.server.heartbeats", region=region_label
        )
        self._shards_created_counter = self.obs.metrics.counter(
            "shardmanager.server.shards_created", region=region_label
        )
        self._collect_counter = self.obs.metrics.counter(
            "shardmanager.server.metric_collections", region=region_label
        )
        self._failover_counter = self.obs.metrics.counter(
            "shardmanager.server.failovers", region=region_label
        )
        self._registered_gauge = self.obs.metrics.gauge(
            "shardmanager.server.registered_hosts", region=region_label
        )
        self._unplaced_gauge = self.obs.metrics.gauge(
            "shardmanager.server.unplaced_failovers", region=region_label
        )
        self._heartbeat_interval = heartbeat_interval
        self._app_servers: dict[str, ApplicationServer] = {}
        self._sessions: dict[str, Session] = {}
        self._heartbeat_cancels: dict[str, Callable[[], None]] = {}
        self._shards: dict[int, ShardEntry] = {}
        self._host_shards: dict[str, set[int]] = {}
        self.unplaced_failovers: list[int] = []  # shards we could not recover
        # Where failover data can be copied from when no same-service
        # replica survives (Cubrick: a healthy server in another region,
        # paper §IV-D). Set after construction when regions are wired.
        self.recovery_provider = recovery_provider
        self.datastore.watch_sessions(self._on_session_expired)

    # ------------------------------------------------------------------
    # Shard-map persistence (journal into the datastore)
    # ------------------------------------------------------------------
    #
    # Every authoritative shard-map mutation is journaled under
    # ``shardmap/<region>/<shard>`` so a replacement SM instance — or a
    # region rejoining after a partition, when the datastore is the
    # consensus-replicated store — can rebuild its assignment table
    # instead of starting blind. Writes are fire-and-forget (the
    # in-memory ``_shards`` stays authoritative for the live instance);
    # reads happen only in :meth:`rebuild_shard_map`.

    @property
    def _shardmap_prefix(self) -> str:
        return f"shardmap/{self.region if self.region is not None else 'all'}/"

    def _persist_shard(self, entry: ShardEntry) -> None:
        self.datastore.set(
            f"{self._shardmap_prefix}{entry.shard_id:06d}",
            tuple((r.host_id, r.role.value) for r in entry.replicas),
        )

    def _unpersist_shard(self, shard_id: int) -> None:
        self.datastore.delete(f"{self._shardmap_prefix}{shard_id:06d}")

    def rebuild_shard_map(self) -> int:
        """Rebuild the assignment table from the journaled shard map.

        The recovery path of an SM failover (and of a region rejoining
        the metadata quorum): every journaled shard that is missing or
        divergent in memory is restored and its primary republished to
        service discovery. Returns the number of shards restored.
        """
        restored = 0
        now = self.simulator.now
        for key in self.datastore.keys_with_prefix(self._shardmap_prefix):
            value = self.datastore.get(key)
            if not value:
                continue
            shard_id = int(key.rsplit("/", 1)[1])
            replicas = [
                Replica(host_id=host_id, role=ReplicaRole(role))
                for host_id, role in value
            ]
            entry = self._shards.get(shard_id)
            if entry is None:
                entry = ShardEntry(shard_id=shard_id, replicas=replicas)
                self._shards[shard_id] = entry
            elif [(r.host_id, r.role) for r in entry.replicas] == [
                (r.host_id, r.role) for r in replicas
            ]:
                continue  # memory already matches the journal
            else:
                entry.replicas = replicas
            for replica in replicas:
                self._host_shards.setdefault(replica.host_id, set()).add(
                    shard_id
                )
            primary = entry.primary() or (
                entry.replicas[0] if entry.replicas else None
            )
            if primary is not None:
                self.discovery.publish(shard_id, primary.host_id, now)
            restored += 1
        if restored:
            self.obs.events.emit(
                "shardmanager.server.shard_map_rebuilt",
                region=str(self.region),
                restored=restored,
            )
        return restored

    # ------------------------------------------------------------------
    # Host registration and heartbeats
    # ------------------------------------------------------------------

    def register_host(self, app_server: ApplicationServer) -> None:
        """Attach an application server; begins heartbeating for it.

        The heartbeat loop consults the cluster substrate: a failed host
        stops heartbeating, its datastore session expires, and the
        expiry watcher triggers failovers — exactly the Zookeeper-based
        failure-detection loop of the paper.
        """
        host_id = app_server.host_id
        if host_id not in self.cluster:
            raise ConfigurationError(f"host {host_id} is not in the cluster")
        if self.region is not None and self.cluster.host(host_id).region != self.region:
            raise ConfigurationError(
                f"host {host_id} is outside service region {self.region}"
            )
        if host_id in self._app_servers:
            raise ConfigurationError(f"host {host_id} already registered")
        self._app_servers[host_id] = app_server
        self._host_shards.setdefault(host_id, set())
        session = self.datastore.create_session(host_id)
        self._sessions[host_id] = session
        self.metrics.report_capacity(host_id, app_server.exported_capacity())

        def beat() -> None:
            current = self._sessions.get(host_id)
            if current is None or current is not session or session.expired:
                return
            if self.cluster.host(host_id).is_available:
                self.datastore.heartbeat(session)
                self._heartbeat_counter.inc()

        self._heartbeat_cancels[host_id] = self.simulator.schedule_periodic(
            self._heartbeat_interval, beat, start_delay=0.0
        )
        self._registered_gauge.set(len(self._app_servers))

    def reconnect_host(self, app_server: ApplicationServer) -> None:
        """Re-register a host whose session expired (it came back empty)."""
        host_id = app_server.host_id
        self._app_servers.pop(host_id, None)
        cancel = self._heartbeat_cancels.pop(host_id, None)
        if cancel is not None:
            cancel()
        self._sessions.pop(host_id, None)
        self.register_host(app_server)
        # Capacity returned: shards stranded by earlier failed failovers
        # can be re-placed now.
        self.retry_unplaced_failovers()

    def deregister_host(self, host_id: str) -> None:
        """Gracefully detach an *empty* host from the service.

        The inverse of :meth:`register_host`, used by planned scale-in:
        the host must already be drained (no shards assigned — call
        :meth:`drain_host` first). The datastore session is closed
        through the graceful path, so the expiry watcher never fires and
        no failover storm follows; the fleet simply shrinks by one.
        """
        if host_id not in self._app_servers:
            raise ConfigurationError(f"host {host_id} not registered")
        remaining = self._host_shards.get(host_id, set())
        if remaining:
            raise MigrationError(
                f"host {host_id} still holds {len(remaining)} shard(s) "
                f"{sorted(remaining)}; drain before deregistering"
            )
        cancel = self._heartbeat_cancels.pop(host_id, None)
        if cancel is not None:
            cancel()
        session = self._sessions.pop(host_id, None)
        if session is not None and not session.expired:
            self.datastore.close_session(session)
        self._host_shards.pop(host_id, None)
        self.metrics.remove_host(host_id)
        self._app_servers.pop(host_id, None)
        self._registered_gauge.set(len(self._app_servers))
        self.obs.events.emit(
            "shardmanager.server.host_deregistered",
            host=host_id,
            region=str(self.region),
        )

    def registered_hosts(self) -> list[str]:
        return sorted(self._app_servers)

    def app_server(self, host_id: str) -> ApplicationServer:
        try:
            return self._app_servers[host_id]
        except KeyError:
            raise ConfigurationError(f"host {host_id} not registered") from None

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------

    def create_shard(self, shard_id: int, *, size_hint: float = 0.0) -> ShardEntry:
        """Place and activate all replicas of a new shard."""
        if not 0 <= shard_id < self.spec.max_shards:
            raise ShardNotFoundError(
                f"shard {shard_id} outside key space [0, {self.spec.max_shards})"
            )
        if shard_id in self._shards:
            raise MigrationError(f"shard {shard_id} already exists")
        entry = ShardEntry(shard_id=shard_id)
        with self.obs.tracer.span(
            "shardmanager.server.create_shard",
            shard=shard_id,
            region=str(self.region),
        ) as span:
            decisions = self.placement.choose_replica_set(
                shard_id, size_hint=size_hint, region=self.region
            )
            for index, decision in enumerate(decisions):
                host_id = self._add_replica_with_retry(
                    entry, decision.host_id, size_hint, source=None
                )
                if self.spec.replication_model is ReplicationModel.SECONDARY_ONLY:
                    role = ReplicaRole.SECONDARY
                else:
                    role = (
                        ReplicaRole.PRIMARY if index == 0
                        else ReplicaRole.SECONDARY
                    )
                entry.replicas.append(Replica(host_id=host_id, role=role))
            self._shards[shard_id] = entry
            primary = entry.primary() or entry.replicas[0]
            self.discovery.publish(shard_id, primary.host_id, self.simulator.now)
            self._persist_shard(entry)
            self._shards_created_counter.inc()
            span.annotate(
                replicas=[r.host_id for r in entry.replicas],
                refused_hosts=sorted(entry.refused_hosts),
            )
        return entry

    def _add_replica_with_retry(
        self,
        entry: ShardEntry,
        first_choice: str,
        size_hint: float,
        source: Optional[ApplicationServer],
    ) -> str:
        """Call addShard, retrying on other hosts on non-retryable errors."""
        host_id = first_choice
        while True:
            app = self.app_server(host_id)
            try:
                app.add_shard(entry.shard_id, source)
            except NonRetryableShardError:
                entry.refused_hosts.add(host_id)
                self.obs.metrics.counter(
                    "shardmanager.server.shard_refusals",
                    region=str(self.region),
                ).inc()
                self.obs.events.emit(
                    "shardmanager.server.shard_refused",
                    shard=entry.shard_id,
                    host=host_id,
                    region=str(self.region),
                )
                decision = self.placement.choose_host(
                    entry.shard_id,
                    size_hint=size_hint,
                    region=self.region,
                    exclude_hosts=entry.refused_hosts | entry.hosts(),
                    exclude_domains=self._replica_domains(entry),
                )
                host_id = decision.host_id
                continue
            self._host_shards.setdefault(host_id, set()).add(entry.shard_id)
            # Record a provisional load immediately so back-to-back
            # placements don't all pile onto the same host while waiting
            # for the next metrics-collection cycle.
            if size_hint > 0:
                self.metrics.report_shard(
                    entry.shard_id, host_id, size_hint, self.simulator.now
                )
            return host_id

    def _replica_domains(self, entry: ShardEntry) -> set[str]:
        spread = self.spec.spread.value
        return {
            self.cluster.host(r.host_id).failure_domain(spread)
            for r in entry.replicas
        }

    def drop_shard(self, shard_id: int) -> None:
        """Remove a shard from every replica and from discovery."""
        entry = self._entry(shard_id)
        for replica in entry.replicas:
            app = self._app_servers.get(replica.host_id)
            if app is not None and shard_id in app.hosted_shards():
                app.drop_shard(shard_id)
            self._host_shards.get(replica.host_id, set()).discard(shard_id)
            self.metrics.drop_shard(shard_id, replica.host_id)
        del self._shards[shard_id]
        self._unpersist_shard(shard_id)
        self.discovery.publish(shard_id, None, self.simulator.now)

    def _entry(self, shard_id: int) -> ShardEntry:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ShardNotFoundError(f"shard {shard_id} not registered") from None

    def shard_entry(self, shard_id: int) -> ShardEntry:
        return self._entry(shard_id)

    def has_shard(self, shard_id: int) -> bool:
        return shard_id in self._shards

    def shard_ids(self) -> list[int]:
        return sorted(self._shards)

    def shards_on_host(self, host_id: str) -> set[int]:
        return set(self._host_shards.get(host_id, set()))

    def read_replica(self, shard_id: int, rng=None) -> str:
        """Host to send *read* traffic for a shard to.

        With ``serve_reads_from_secondaries`` enabled on a
        primary-secondary service, reads go to a live secondary when one
        exists (paper §III-A1); otherwise — and always for writes — the
        primary serves.
        """
        entry = self._entry(shard_id)
        if (
            self.spec.serve_reads_from_secondaries
            and self.spec.replication_model is ReplicationModel.PRIMARY_SECONDARY
        ):
            secondaries = [
                r for r in entry.replicas
                if r.role is ReplicaRole.SECONDARY
                and self.cluster.host(r.host_id).is_available
                and r.host_id in self._app_servers
            ]
            if secondaries:
                if rng is None:
                    return secondaries[0].host_id
                return secondaries[int(rng.integers(len(secondaries)))].host_id
        primary = entry.primary() or entry.replicas[0]
        return primary.host_id

    # ------------------------------------------------------------------
    # Metrics collection
    # ------------------------------------------------------------------

    def collect_metrics(self) -> None:
        """Pull per-shard loads and capacities from live app servers.

        Also reconciles: metrics for shards the app no longer reports
        (dropped after a graceful migration's grace window) are removed,
        so the balancer never sees phantom load.
        """
        now = self.simulator.now
        self._collect_counter.inc()
        for host_id, app in self._app_servers.items():
            if not self.cluster.host(host_id).is_available:
                continue
            self.metrics.report_capacity(host_id, app.exported_capacity())
            reported = app.shard_metrics()
            for shard_id, value in reported.items():
                self.metrics.report_shard(shard_id, host_id, value, now)
            for shard_id, __ in self.metrics.shards_on_host(host_id):
                if shard_id not in reported:
                    self.metrics.drop_shard(shard_id, host_id)

    # ------------------------------------------------------------------
    # Load balancing
    # ------------------------------------------------------------------

    def run_load_balance(self) -> list[MigrationProposal]:
        """One balancing pass: propose moves and execute them."""
        with self.obs.tracer.span(
            "shardmanager.server.load_balance", region=str(self.region)
        ) as span:
            executed = self._run_load_balance()
            span.annotate(executed=len(executed))
        return executed

    def _run_load_balance(self) -> list[MigrationProposal]:
        hosted = {
            host_id: set(shards)
            for host_id, shards in self._host_shards.items()
            if shards
        }
        forbidden: dict[int, set[str]] = {}
        for shard_id, entry in self._shards.items():
            blocked = entry.refused_hosts | entry.hosts()
            if blocked:
                forbidden[shard_id] = blocked
        proposals = self.balancer.propose(
            hosted, region=self.region, forbidden_targets=forbidden
        )
        executed: list[MigrationProposal] = []
        for proposal in proposals:
            if self._execute_move(proposal):
                executed.append(proposal)
        return executed

    def _execute_move(self, proposal: MigrationProposal) -> bool:
        """Live-migrate one shard, retrying alternate targets on refusal."""
        entry = self._shards.get(proposal.shard_id)
        if entry is None:
            return False
        source = self._app_servers.get(proposal.from_host)
        if source is None or not self.cluster.host(proposal.from_host).is_available:
            return False
        target_id = proposal.to_host
        attempts = 0
        budget = self.policy.retry.budget(default=5)
        # Hosts skipped only for this move (e.g. still holding the shard
        # inside a graceful-drop grace window) — not sticky refusals.
        transient_excluded: set[str] = set()
        while attempts < budget:
            attempts += 1
            target = self._app_servers.get(target_id)
            if target is None:
                return False
            try:
                self.migrations.live_migrate(
                    proposal.shard_id, source, target, reason=proposal.reason
                )
            except (NonRetryableShardError, ShardAlreadyAssignedError) as exc:
                if isinstance(exc, NonRetryableShardError):
                    entry.refused_hosts.add(target_id)
                else:
                    transient_excluded.add(target_id)
                try:
                    decision = self.placement.choose_host(
                        proposal.shard_id,
                        size_hint=proposal.shard_load,
                        region=self.region,
                        exclude_hosts=entry.refused_hosts
                        | transient_excluded
                        | entry.hosts()
                        | {proposal.from_host},
                        exclude_domains=set(),
                    )
                except CapacityExceededError:
                    return False
                target_id = decision.host_id
                continue
            self._record_replica_move(entry, proposal.from_host, target_id)
            return True
        return False

    def _record_replica_move(
        self, entry: ShardEntry, from_host: str, to_host: str
    ) -> None:
        for replica in entry.replicas:
            if replica.host_id == from_host:
                replica.host_id = to_host
                break
        self._host_shards.get(from_host, set()).discard(entry.shard_id)
        self._host_shards.setdefault(to_host, set()).add(entry.shard_id)
        self.metrics.drop_shard(entry.shard_id, from_host)
        self._persist_shard(entry)

    # ------------------------------------------------------------------
    # Drains (datacenter automation integration, paper §IV-G)
    # ------------------------------------------------------------------

    def drain_host(self, host_id: str) -> int:
        """Gracefully move every shard off a host; returns shards moved."""
        moved = 0
        for shard_id in sorted(self.shards_on_host(host_id)):
            entry = self._shards.get(shard_id)
            if entry is None:
                continue
            load = self.metrics.shard_load(shard_id, host_id)
            proposal = MigrationProposal(
                shard_id=shard_id,
                from_host=host_id,
                to_host=self._pick_drain_target(entry, host_id, load),
                shard_load=load,
                reason="drain",
            )
            if proposal.to_host and self._execute_move(proposal):
                moved += 1
        return moved

    def _pick_drain_target(
        self, entry: ShardEntry, from_host: str, load: float
    ) -> str:
        try:
            decision = self.placement.choose_host(
                entry.shard_id,
                size_hint=load,
                region=self.region,
                exclude_hosts=entry.refused_hosts | entry.hosts() | {from_host},
                exclude_domains=set(),
            )
        except CapacityExceededError:
            return ""
        return decision.host_id

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def _on_session_expired(self, host_id: str) -> None:
        """Datastore told us heartbeats stopped: fail over its shards."""
        self._sessions.pop(host_id, None)
        cancel = self._heartbeat_cancels.pop(host_id, None)
        if cancel is not None:
            cancel()
        lost = sorted(self._host_shards.get(host_id, set()))
        self._host_shards[host_id] = set()
        self.metrics.remove_host(host_id)
        self._app_servers.pop(host_id, None)
        self._registered_gauge.set(len(self._app_servers))
        for shard_id in lost:
            self._failover_replica(shard_id, host_id)

    def _failover_replica(self, shard_id: int, failed_host: str) -> None:
        entry = self._shards.get(shard_id)
        if entry is None:
            return
        failed_replica = None
        for replica in entry.replicas:
            if replica.host_id == failed_host:
                failed_replica = replica
                break
        if failed_replica is None:
            return

        survivors = [r for r in entry.replicas if r.host_id != failed_host]
        # Primary-secondary: promote a secondary first (paper §III-A2),
        # then allocate a replacement secondary.
        if (
            failed_replica.role is ReplicaRole.PRIMARY
            and self.spec.replication_model is ReplicationModel.PRIMARY_SECONDARY
            and survivors
        ):
            promoted = survivors[0]
            promoted.role = ReplicaRole.PRIMARY
            self.discovery.publish(shard_id, promoted.host_id, self.simulator.now)
            failed_replica.role = ReplicaRole.SECONDARY
            self._persist_shard(entry)

        recovery_source = None
        for replica in survivors:
            app = self._app_servers.get(replica.host_id)
            if app is not None and self.cluster.host(replica.host_id).is_available:
                recovery_source = app
                break
        if recovery_source is None and self.recovery_provider is not None:
            # No same-service replica survives: recover the data from
            # wherever the application keeps a healthy copy (Cubrick:
            # a different region, paper §IV-D).
            recovery_source = self.recovery_provider(shard_id)
            if recovery_source is None:
                # Every healthy copy — in-region survivors *and* the
                # cross-region donors — is down right now. Proceeding
                # would hand the replacement an empty shard and silently
                # lose rows; defer until a donor returns and let
                # retry_unplaced_failovers (host reconnect / balance
                # loop) finish the job.
                self.unplaced_failovers.append(shard_id)
                self._unplaced_gauge.set(len(self.unplaced_failovers))
                self.obs.events.emit(
                    "shardmanager.server.failover_deferred",
                    shard=shard_id,
                    failed_host=failed_host,
                    region=str(self.region),
                    reason="no_healthy_donor",
                )
                return

        load = self.metrics.shard_load(shard_id, failed_host)
        replacement_is_published = (
            failed_replica.role is ReplicaRole.PRIMARY or len(entry.replicas) == 1
        )
        transient_excluded: set[str] = set()
        for __ in range(self.policy.retry.budget(default=5)):
            try:
                decision = self.placement.choose_host(
                    shard_id,
                    size_hint=load,
                    region=self.region,
                    exclude_hosts=entry.refused_hosts
                    | transient_excluded
                    | entry.hosts(),
                    exclude_domains=self._replica_domains(
                        ShardEntry(shard_id=shard_id, replicas=survivors)
                    ),
                )
            except CapacityExceededError:
                break
            target = self._app_servers.get(decision.host_id)
            if target is None:
                transient_excluded.add(decision.host_id)
                continue
            try:
                self.migrations.failover(
                    shard_id,
                    target,
                    failed_host=failed_host,
                    recovery_source=recovery_source,
                    publish=replacement_is_published,
                )
            except NonRetryableShardError:
                entry.refused_hosts.add(decision.host_id)
                continue
            except ShardAlreadyAssignedError:
                transient_excluded.add(decision.host_id)
                continue
            failed_replica.host_id = decision.host_id
            self._host_shards.setdefault(decision.host_id, set()).add(shard_id)
            self._persist_shard(entry)
            self._failover_counter.inc()
            return
        self.unplaced_failovers.append(shard_id)
        self._unplaced_gauge.set(len(self.unplaced_failovers))
        self.obs.events.emit(
            "shardmanager.server.failover_unplaced",
            shard=shard_id,
            failed_host=failed_host,
            region=str(self.region),
        )

    def retry_unplaced_failovers(self) -> int:
        """Retry shards whose failover found no eligible host earlier.

        Called when capacity returns (a host reconnects) and from the
        periodic loops; returns the number of shards recovered.
        """
        pending = list(dict.fromkeys(self.unplaced_failovers))
        if not pending:
            return 0
        self.unplaced_failovers = []
        self._unplaced_gauge.set(0)
        recovered = 0
        for shard_id in pending:
            entry = self._shards.get(shard_id)
            if entry is None:
                continue
            orphans = [
                r for r in entry.replicas
                if shard_id not in self._host_shards.get(r.host_id, set())
            ]
            if not orphans:
                continue
            for replica in orphans:
                before = len(self.unplaced_failovers)
                # A retry is just a failover whose "failed host" is the
                # stale replica location.
                self._failover_replica(shard_id, replica.host_id)
                if len(self.unplaced_failovers) == before:
                    recovered += 1
        return recovered

    # ------------------------------------------------------------------
    # Background loops
    # ------------------------------------------------------------------

    def start(
        self,
        *,
        collect_interval: float = 60.0,
        balance_interval: float = 300.0,
        until: Optional[float] = None,
    ) -> None:
        """Schedule the periodic metric-collection and balancing loops."""
        self.simulator.schedule_periodic(
            collect_interval, self.collect_metrics, until=until
        )
        self.simulator.schedule_periodic(
            balance_interval, self.run_load_balance, until=until
        )
        self.simulator.schedule_periodic(
            balance_interval, self.retry_unplaced_failovers, until=until
        )
