"""Service registration specs for Shard Manager.

Applications using SM must (paper §III-A):

  (a) implement a partitioning scheme mapping application keys to shards
      (done in :mod:`repro.cubrick.sharding` for Cubrick),
  (b) provide system metrics used for load balancing
      (:mod:`repro.shardmanager.metrics`), and
  (c) specify shard replication and placement configuration — this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class ReplicationModel(enum.Enum):
    """The three SM fault-tolerance models (paper §III-A1)."""

    PRIMARY_ONLY = "primary_only"
    PRIMARY_SECONDARY = "primary_secondary"
    SECONDARY_ONLY = "secondary_only"


class SpreadDomain(enum.Enum):
    """How replicas of one shard must be spread across failure domains."""

    HOST = "host"
    RACK = "rack"
    REGION = "region"


@dataclass(frozen=True)
class ServiceSpec:
    """Configuration for one SM-managed service.

    ``max_shards`` defines SM's flat key space ``[0..max_shards)``; the
    paper notes usual deployments sit between 100k and 1M total shards.
    ``replication_factor`` counts *secondary* replicas (0 means a single
    copy, matching the paper's phrasing "replication factor is zero" for
    primary-only).
    """

    name: str
    max_shards: int = 100_000
    replication_model: ReplicationModel = ReplicationModel.PRIMARY_ONLY
    replication_factor: int = 0
    spread: SpreadDomain = SpreadDomain.HOST
    # Primary-secondary option (paper §III-A1): serve read-only traffic
    # from secondary replicas, spreading read load off the primary.
    serve_reads_from_secondaries: bool = False
    # Load balancing (paper §III-A3): throttle migrations per LB run.
    max_migrations_per_run: int = 16
    # A host is "overloaded" when its load exceeds the fleet mean by this
    # relative tolerance; the balancer then moves shards toward the mean.
    load_imbalance_tolerance: float = 0.15
    # Fraction of exported capacity that placements may fill.
    capacity_headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.max_shards <= 0:
            raise ConfigurationError(f"max_shards must be positive: {self.max_shards}")
        if self.replication_factor < 0:
            raise ConfigurationError(
                f"replication_factor must be non-negative: {self.replication_factor}"
            )
        if (
            self.replication_model is ReplicationModel.PRIMARY_ONLY
            and self.replication_factor != 0
        ):
            raise ConfigurationError(
                "primary-only replication requires replication_factor == 0"
            )
        if (
            self.replication_model is not ReplicationModel.PRIMARY_ONLY
            and self.replication_factor < 1
        ):
            raise ConfigurationError(
                f"{self.replication_model.value} requires replication_factor >= 1"
            )
        if self.max_migrations_per_run < 0:
            raise ConfigurationError(
                f"max_migrations_per_run must be non-negative: "
                f"{self.max_migrations_per_run}"
            )
        if self.load_imbalance_tolerance < 0:
            raise ConfigurationError(
                f"load_imbalance_tolerance must be non-negative: "
                f"{self.load_imbalance_tolerance}"
            )
        if not 0.0 < self.capacity_headroom <= 1.0:
            raise ConfigurationError(
                f"capacity_headroom must be in (0, 1]: {self.capacity_headroom}"
            )

    @property
    def replicas_per_shard(self) -> int:
        """Total copies of each shard (one primary plus secondaries)."""
        if self.replication_model is ReplicationModel.SECONDARY_ONLY:
            # All replicas play the same role; replication_factor counts
            # the copies beyond the first.
            return 1 + self.replication_factor
        return 1 + self.replication_factor
