"""Discrete-event simulation kernel.

The paper's evaluation runs on Facebook's production fleet; this package is
the laptop-scale substitute. It provides a deterministic, seeded
discrete-event engine (:class:`~repro.sim.engine.Simulator`), latency models
that reproduce tail behaviour (:mod:`repro.sim.latency`), and failure models
(:mod:`repro.sim.failures`). All stochastic components draw from named RNG
streams so that experiments are reproducible bit-for-bit given a seed.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.latency import (
    HiccupModel,
    LatencyModel,
    LatencySample,
    LogNormalTailLatency,
)
from repro.sim.failures import (
    BernoulliFailureModel,
    FailureEvent,
    FailureInjector,
    MtbfFailureModel,
)

__all__ = [
    "Event",
    "Simulator",
    "RngRegistry",
    "LatencyModel",
    "LatencySample",
    "LogNormalTailLatency",
    "HiccupModel",
    "BernoulliFailureModel",
    "MtbfFailureModel",
    "FailureEvent",
    "FailureInjector",
]
