"""Deterministic discrete-event simulation engine.

A minimal but complete event-heap simulator: events are ``(time, seq,
callback)`` triples ordered by time with a monotone sequence number as the
tie-breaker, which makes execution order fully deterministic. Components
schedule callbacks with :meth:`Simulator.schedule` (absolute time) or
:meth:`Simulator.call_later` (relative delay), and periodic work with
:meth:`Simulator.schedule_periodic`.

Time is a float in **seconds** throughout the repository.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

# Handy constants for readable experiment configuration.
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event-heap discrete-event simulator with a virtual clock."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._evt_scheduled_counter = None
        self._evt_processed_counter = None
        self._time_gauge = None

    def attach_observability(self, obs: "Observability") -> None:
        """Wire engine instruments into a shared metrics registry.

        Span timestamps everywhere come from this engine's clock; these
        instruments expose the engine's own workload (events scheduled/
        processed, current virtual time) under the ``sim.engine.*``
        namespace.
        """
        self._evt_scheduled_counter = obs.metrics.counter(
            "sim.engine.events_scheduled"
        )
        self._evt_processed_counter = obs.metrics.counter(
            "sim.engine.events_processed"
        )
        self._time_gauge = obs.metrics.gauge("sim.engine.virtual_time_seconds")

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest live queued event, or None.

        Cancelled events at the heap top are discarded on the way — the
        serving tier's event-loop pump uses this to sleep exactly until
        the next completion instead of polling blind.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def schedule(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self._now}"
            )
        event = Event(time=float(time), seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        if self._evt_scheduled_counter is not None:
            self._evt_scheduled_counter.inc()
        return event

    def call_later(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``callback`` every ``interval`` seconds.

        Returns a zero-argument cancel function. ``until`` is an absolute
        virtual-time bound (inclusive of the last tick at or before it).
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive: {interval}")
        state = {"cancelled": False, "event": None}

        def tick() -> None:
            if state["cancelled"]:
                return
            callback()
            next_time = self._now + interval
            if until is not None and next_time > until:
                return
            state["event"] = self.schedule(next_time, tick)

        first = self._now + (interval if start_delay is None else start_delay)
        if until is None or first <= until:
            state["event"] = self.schedule(first, tick)

        def cancel() -> None:
            state["cancelled"] = True
            if state["event"] is not None:
                state["event"].cancel()

        return cancel

    def run_until(self, end_time: float) -> None:
        """Execute events in order until virtual time reaches ``end_time``.

        The clock is left at ``end_time`` even if the heap drains early,
        so back-to-back experiment phases line up on wall-clock boundaries.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until target {end_time} is before now={self._now}"
            )
        while self._heap and self._heap[0].time <= end_time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            if self._evt_processed_counter is not None:
                self._evt_processed_counter.inc()
            event.callback()
        self._now = end_time
        if self._time_gauge is not None:
            self._time_gauge.set(self._now)

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the event heap (optionally bounded by ``max_events``)."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            if self._evt_processed_counter is not None:
                self._evt_processed_counter.inc()
            event.callback()
            executed += 1
        if self._time_gauge is not None:
            self._time_gauge.set(self._now)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )
