"""Failure models and a failure injector for the cluster simulation.

Two views of failure are used by the paper and reproduced here:

* **Instantaneous failure probability** (Figures 1 and 2): "servers have a
  0.01% chance of failure at any given time". This is a per-query-visit
  Bernoulli model — :class:`BernoulliFailureModel` — used by the analytic
  scalability-wall math and the Monte-Carlo cross-check.

* **Failures over time** (Figures 4d and 4f): hosts fail following an
  exponential MTBF process, some failures are *permanent* (the host is
  sent to repair) and the rest are transient (the host recovers after an
  MTTR-distributed downtime). This drives Shard Manager failovers and the
  datacenter-automation repair pipeline — :class:`MtbfFailureModel` and
  :class:`FailureInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class BernoulliFailureModel:
    """Per-visit failure probability, matching the paper's Figure 1 model."""

    probability: float = 1e-4  # 0.01%, the paper's headline assumption

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"failure probability out of range: {self.probability}")

    def query_success_ratio(self, fanout: int) -> float:
        """P(all ``fanout`` visited hosts are healthy) = (1-p)^fanout."""
        if fanout < 0:
            raise ValueError(f"fanout must be non-negative: {fanout}")
        return (1.0 - self.probability) ** fanout

    def sample_visit_failures(self, rng: np.random.Generator, fanout: int) -> int:
        """Number of failed hosts among ``fanout`` independent visits."""
        return int(rng.binomial(fanout, self.probability))


@dataclass(frozen=True)
class MtbfFailureModel:
    """Exponential mean-time-between-failures model for one host.

    ``permanent_fraction`` of failures are hardware losses that send the
    host to repair (Figure 4f); the rest are transient (crash/restart,
    kernel hiccup) and recover after an exponential MTTR.
    """

    mtbf: float = 30 * 86400.0  # one failure a month per host
    mttr: float = 15 * 60.0  # 15 minutes of downtime for transient failures
    permanent_fraction: float = 0.1
    repair_time: float = 3 * 86400.0  # permanent failures: days in repair

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0 or self.repair_time <= 0:
            raise ValueError("mtbf, mttr and repair_time must be positive")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError(
                f"permanent_fraction out of range: {self.permanent_fraction}"
            )

    def sample_time_to_failure(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mtbf))

    def sample_is_permanent(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.permanent_fraction)

    def sample_downtime(self, rng: np.random.Generator, permanent: bool) -> float:
        """Sampled downtime, guaranteed strictly positive.

        A non-positive downtime would schedule the recovery at (or
        before) the failure itself, making the host flap within one
        event-loop turn and breaking the injector's fail→recover
        ordering; reject bad means and clamp degenerate draws.
        """
        mean = self.repair_time if permanent else self.mttr
        if mean <= 0:
            raise ValueError(f"non-positive mean downtime: {mean}")
        value = float(rng.exponential(mean))
        if value <= 0.0:
            # rng.exponential can round to exactly 0.0; fall back to the
            # mean so the recovery still strictly follows the failure.
            value = mean
        return value

    def instantaneous_unavailability(self) -> float:
        """Steady-state fraction of time a host is down (for calibration)."""
        mean_down = (
            self.permanent_fraction * self.repair_time
            + (1.0 - self.permanent_fraction) * self.mttr
        )
        return mean_down / (self.mtbf + mean_down)


@dataclass(frozen=True)
class FailureEvent:
    """A recorded host failure, for experiment post-processing."""

    time: float
    host_id: str
    permanent: bool
    downtime: float


class FailureInjector:
    """Drives MTBF failures for a set of hosts on a :class:`Simulator`.

    The injector calls ``on_fail(host_id, permanent)`` when a host goes
    down and ``on_recover(host_id)`` when it comes back (transient
    failures recover automatically; permanent failures recover only after
    the repair pipeline returns the host — modelled as the longer
    ``repair_time``). All events are recorded in :attr:`events`.
    """

    def __init__(
        self,
        simulator: Simulator,
        model: MtbfFailureModel,
        rng: np.random.Generator,
        on_fail: Callable[[str, bool], None],
        on_recover: Callable[[str], None],
    ):
        self._simulator = simulator
        self._model = model
        self._rng = rng
        self._on_fail = on_fail
        self._on_recover = on_recover
        self.events: list[FailureEvent] = []
        self._active: set[str] = set()

    def track(self, host_id: str, *, until: Optional[float] = None) -> None:
        """Begin injecting failures for ``host_id``."""
        if host_id in self._active:
            return
        self._active.add(host_id)
        self._schedule_next_failure(host_id, until)

    def untrack(self, host_id: str) -> None:
        """Stop injecting failures for ``host_id`` (decommission)."""
        self._active.discard(host_id)

    def _schedule_next_failure(self, host_id: str, until: Optional[float]) -> None:
        delay = self._model.sample_time_to_failure(self._rng)
        when = self._simulator.now + delay
        if until is not None and when > until:
            return
        self._simulator.schedule(when, lambda: self._fail(host_id, until))

    def _fail(self, host_id: str, until: Optional[float]) -> None:
        if host_id not in self._active:
            return
        permanent = self._model.sample_is_permanent(self._rng)
        downtime = self._model.sample_downtime(self._rng, permanent)
        self.events.append(
            FailureEvent(
                time=self._simulator.now,
                host_id=host_id,
                permanent=permanent,
                downtime=downtime,
            )
        )
        self._on_fail(host_id, permanent)
        self._simulator.call_later(downtime, lambda: self._recover(host_id, until))

    def _recover(self, host_id: str, until: Optional[float]) -> None:
        if host_id not in self._active:
            return
        self._on_recover(host_id)
        self._schedule_next_failure(host_id, until)

    def permanent_failures_per_day(self, horizon_days: float) -> float:
        """Average permanent failures (hosts sent to repair) per day."""
        if horizon_days <= 0:
            raise ValueError(f"horizon_days must be positive: {horizon_days}")
        permanent = sum(1 for e in self.events if e.permanent)
        return permanent / horizon_days
