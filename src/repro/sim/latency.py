"""Latency models with heavy tails.

The paper (§II-B, §IV-H, citing Dean & Barroso's "The Tail at Scale")
attributes the scalability wall to non-deterministic sources of tail
latency: a query's latency is the *maximum* over all participating hosts,
so the more hosts a query fans out to, the more it samples from the tail.

We model per-host service time as::

    latency = base + LogNormal(mu, sigma)            (common case)
            + Pareto-ish hiccup with probability p    (rare slow events:
                                                       GC pauses, network
                                                       retransmits, …)

This reproduces the Figure 5 behaviour: medians barely move with fan-out
while p99/p999 grow sharply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencySample:
    """One sampled service time, with its components for diagnostics."""

    total: float
    base: float
    tail: float
    hiccup: float


class LatencyModel:
    """Interface for per-host service-time models."""

    def sample(self, rng: np.random.Generator) -> LatencySample:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorised sampling of ``n`` total latencies (seconds)."""
        return np.array([self.sample(rng).total for _ in range(n)])


@dataclass(frozen=True)
class HiccupModel:
    """Rare slow events layered on top of the common-case distribution.

    With probability ``probability`` a request suffers an extra delay
    drawn uniformly from ``[min_delay, max_delay]`` — a coarse but
    effective stand-in for GC pauses, page faults, TCP retransmits and
    co-location interference.
    """

    probability: float = 1e-3
    min_delay: float = 0.05
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"hiccup probability out of range: {self.probability}")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError(
                f"invalid hiccup delay range [{self.min_delay}, {self.max_delay}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        if rng.random() >= self.probability:
            return 0.0
        return float(rng.uniform(self.min_delay, self.max_delay))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        hits = rng.random(n) < self.probability
        delays = np.zeros(n)
        count = int(hits.sum())
        if count:
            delays[hits] = rng.uniform(self.min_delay, self.max_delay, size=count)
        return delays


class LogNormalTailLatency(LatencyModel):
    """Base + lognormal service time with optional hiccups.

    Parameters are expressed in intuitive units: ``median`` is the median
    of the lognormal component (seconds) and ``sigma`` its log-space
    standard deviation (1.0 is a realistically heavy tail; 0.25 is a very
    well-behaved service).
    """

    def __init__(
        self,
        base: float = 0.002,
        median: float = 0.010,
        sigma: float = 0.8,
        hiccups: HiccupModel | None = None,
    ):
        if base < 0 or median <= 0 or sigma <= 0:
            raise ValueError(
                f"invalid latency parameters base={base} median={median} sigma={sigma}"
            )
        self.base = base
        self.mu = math.log(median)
        self.sigma = sigma
        self.hiccups = hiccups if hiccups is not None else HiccupModel()

    def sample(self, rng: np.random.Generator) -> LatencySample:
        tail = float(rng.lognormal(self.mu, self.sigma))
        hiccup = self.hiccups.sample(rng)
        return LatencySample(
            total=self.base + tail + hiccup, base=self.base, tail=tail, hiccup=hiccup
        )

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        tails = rng.lognormal(self.mu, self.sigma, size=n)
        hiccups = self.hiccups.sample_many(rng, n)
        return self.base + tails + hiccups

    def quantile_no_hiccup(self, q: float) -> float:
        """Analytic quantile of the base+lognormal part (ignoring hiccups).

        Useful for sanity-checking simulated percentiles in tests.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {q}")
        # Inverse CDF of the lognormal via the probit function.
        z = math.sqrt(2.0) * _erfinv(2.0 * q - 1.0)
        return self.base + math.exp(self.mu + self.sigma * z)


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-4 accurate)."""
    if not -1.0 < x < 1.0:
        raise ValueError(f"erfinv domain is (-1, 1): {x}")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    inner = first * first - ln_term / a
    result = math.sqrt(math.sqrt(inner) - first)
    return math.copysign(result, x)


def fit_lognormal_tail(
    samples: "np.ndarray",
    *,
    base: float = 0.0,
    hiccups: HiccupModel | None = None,
) -> LogNormalTailLatency:
    """Calibrate a :class:`LogNormalTailLatency` to observed latencies.

    Method-of-moments fit in log space over ``samples - base`` (after
    clipping to positive values). Use this to replay a recorded trace
    against a latency model matched to your own measurements instead of
    the defaults.
    """
    values = np.asarray(samples, dtype=np.float64) - base
    values = values[values > 0]
    if values.size < 2:
        raise ValueError("need at least two positive samples to fit")
    logs = np.log(values)
    mu = float(logs.mean())
    sigma = float(logs.std())
    if sigma <= 0:
        sigma = 1e-6
    return LogNormalTailLatency(
        base=base,
        median=math.exp(mu),
        sigma=sigma,
        hiccups=hiccups if hiccups is not None else HiccupModel(probability=0.0),
    )


def fanout_latency(per_host: np.ndarray) -> float:
    """Latency of a fan-out query: the slowest participating host wins."""
    if per_host.size == 0:
        raise ValueError("fan-out query must visit at least one host")
    return float(per_host.max())
