"""Named, reproducible random-number streams.

Every stochastic component in the simulation (failures, tail latency,
hotness decay, workload generation) draws from its own named stream so
that adding randomness to one subsystem does not perturb another — a
standard technique for variance reduction and reproducibility in
discrete-event simulation.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a root seed and stream name.

    Uses SHA-256 so the derivation is stable across Python processes and
    versions (``hash()`` is salted per-process and unsuitable).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A registry of named :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("failures").random()
    >>> b = RngRegistry(seed=7).stream("failures").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.seed, name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
