"""SMC — Services Management Configuration (service discovery).

Facebook's service-discovery system exposes shard→server mappings to
clients. Because the client population is large, SMC uses a multi-level
data-distribution tree that caches and propagates mappings; updates
therefore reach clients with a small delay (paper §III-A, Figure 4c).

This package implements the authoritative registry, the propagation
tree with per-hop delay sampling, and per-host local proxies that
clients read from (avoiding network round-trips — paper §III-A).
"""

from repro.smc.registry import ServiceDiscovery, ShardAssignment
from repro.smc.tree import PropagationTree, TreeLevelConfig

__all__ = [
    "ServiceDiscovery",
    "ShardAssignment",
    "PropagationTree",
    "TreeLevelConfig",
]
