"""Authoritative shard→host registry with delayed client visibility.

SM server writes assignments to the registry; clients resolve shards via
their local proxy, which sees each update only after a propagation delay
sampled from the distribution tree (paper §III-A, Figure 4c). The
registry keeps both the *authoritative* view (what SM wrote last) and the
*visible* view at any virtual time, so the simulation can exercise the
stale-read window that graceful shard migration must tolerate
(paper §IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ShardMappingUnknownError
from repro.obs import Observability
from repro.sim.rng import derive_seed
from repro.smc.tree import PropagationTree


@dataclass(frozen=True)
class ShardAssignment:
    """One versioned assignment of a shard to a host."""

    shard_id: int
    host_id: Optional[str]  # None = shard unassigned (dropped)
    version: int
    written_at: float
    visible_at: float


@dataclass
class _ShardHistory:
    """Assignment history for one shard, newest last."""

    entries: list[ShardAssignment] = field(default_factory=list)


class ServiceDiscovery:
    """SMC: authoritative store plus propagation-delayed client reads.

    The ``service`` namespace is implicit: one instance per SM service
    (Cubrick deploys one service per region — paper §IV-D).
    """

    def __init__(
        self,
        tree: PropagationTree | None = None,
        rng: np.random.Generator | None = None,
        obs: Observability | None = None,
    ):
        self.tree = tree if tree is not None else PropagationTree()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._history: dict[int, _ShardHistory] = {}
        self._version = 0
        self.propagation_delays: list[float] = []  # Figure 4c raw samples
        self.obs = obs if obs is not None else Observability()
        # Eagerly created so snapshots always show the SMC instruments,
        # even before the first publish/resolve.
        self._publish_counter = self.obs.metrics.counter("smc.registry.publishes")
        self._resolve_counter = self.obs.metrics.counter("smc.registry.resolves")
        self._stale_counter = self.obs.metrics.counter("smc.registry.stale_reads")
        self._delay_histogram = self.obs.metrics.histogram(
            "smc.registry.propagation_delay_seconds"
        )

    # ------------------------------------------------------------------
    # Writes (SM server side)
    # ------------------------------------------------------------------

    def publish(self, shard_id: int, host_id: Optional[str], now: float) -> ShardAssignment:
        """Record that ``shard_id`` is now served by ``host_id``.

        The assignment becomes visible to clients after a sampled
        propagation delay.
        """
        self._version += 1
        delay = self.tree.sample_delay(self._rng)
        self.propagation_delays.append(delay)
        assignment = ShardAssignment(
            shard_id=shard_id,
            host_id=host_id,
            version=self._version,
            written_at=now,
            visible_at=now + delay,
        )
        history = self._history.setdefault(shard_id, _ShardHistory())
        history.entries.append(assignment)
        self._publish_counter.inc()
        self._delay_histogram.observe(delay)
        with self.obs.tracer.span(
            "smc.registry.propagate", shard=shard_id
        ) as span:
            span.annotate(
                host=host_id, version=self._version, delay_seconds=delay
            )
            span.set_duration(delay)
        self.obs.events.emit(
            "smc.registry.publish",
            shard=shard_id,
            host=host_id,
            version=self._version,
            visible_at=assignment.visible_at,
        )
        return assignment

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def resolve_authoritative(self, shard_id: int) -> Optional[str]:
        """The latest written mapping, regardless of propagation."""
        history = self._history.get(shard_id)
        if history is None or not history.entries:
            raise ShardMappingUnknownError(f"shard {shard_id} never published")
        return history.entries[-1].host_id

    def resolve(self, shard_id: int, now: float,
                client_id: Optional[str] = None) -> Optional[str]:
        """What a client's local SMC proxy believes at virtual time ``now``.

        Every server in the fleet runs its own caching proxy (paper
        §III-A, Figure 3), so different clients learn about an update at
        different times. Without ``client_id`` the reference proxy's
        recorded delay applies; with it, a per-client delay is derived
        deterministically from the assignment and the client, so two
        calls from the same client always agree while distinct clients
        may briefly disagree.

        Returns the newest assignment visible to that client. Raises
        :class:`ShardMappingUnknownError` if nothing has propagated yet.
        """
        history = self._history.get(shard_id)
        if history is None or not history.entries:
            raise ShardMappingUnknownError(f"shard {shard_id} never published")
        visible = None
        for entry in history.entries:
            if self._visible_at(entry, client_id) <= now:
                visible = entry
        if visible is None:
            raise ShardMappingUnknownError(
                f"shard {shard_id} has no propagated mapping at t={now:.3f}"
            )
        self._resolve_counter.inc()
        if visible is not history.entries[-1]:
            # The authoritative mapping exists but has not reached this
            # client yet — the stale-read window of Figure 3.
            self._stale_counter.inc()
        return visible.host_id

    def _visible_at(self, entry: ShardAssignment,
                    client_id: Optional[str]) -> float:
        if client_id is None:
            return entry.visible_at
        rng = np.random.default_rng(
            derive_seed(entry.version, f"smc-client:{client_id}")
        )
        return entry.written_at + self.tree.sample_delay(rng)

    def is_stale(self, shard_id: int, now: float) -> bool:
        """True while clients may still read an outdated mapping."""
        history = self._history.get(shard_id)
        if history is None or not history.entries:
            return False
        return history.entries[-1].visible_at > now

    def known_shards(self) -> list[int]:
        return sorted(self._history)
