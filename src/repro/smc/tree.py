"""Multi-level data-distribution tree for SMC.

Mappings written at the root (by SM server) propagate down through cache
levels to per-host local proxies. Each hop adds a sampled delay: a fixed
polling component plus jitter. The end-to-end propagation delay observed
by a client is the sum over hops — this is the distribution Figure 4c
reports (a few seconds in production).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TreeLevelConfig:
    """Delay characteristics of one level of the distribution tree.

    Each cache level polls (or is pushed from) its parent. The per-hop
    delay is ``uniform(0, poll_interval) + jitter`` where jitter is
    exponentially distributed — the uniform part models where in the
    poll cycle the update lands, the jitter models processing/queueing.
    """

    name: str
    poll_interval: float = 1.0
    jitter_mean: float = 0.1

    def __post_init__(self) -> None:
        if self.poll_interval < 0 or self.jitter_mean < 0:
            raise ValueError(
                f"level {self.name}: intervals must be non-negative "
                f"(poll={self.poll_interval}, jitter={self.jitter_mean})"
            )

    def sample_hop_delay(self, rng: np.random.Generator) -> float:
        delay = float(rng.uniform(0.0, self.poll_interval))
        if self.jitter_mean > 0:
            delay += float(rng.exponential(self.jitter_mean))
        return delay


#: Default three-level tree: root → regional caches → per-host proxies.
#: Calibrated so end-to-end delays land in the "few seconds" range the
#: paper reports for production (Figure 4c).
DEFAULT_LEVELS = (
    TreeLevelConfig(name="root", poll_interval=0.5, jitter_mean=0.05),
    TreeLevelConfig(name="regional", poll_interval=2.0, jitter_mean=0.2),
    TreeLevelConfig(name="local-proxy", poll_interval=3.0, jitter_mean=0.3),
)


class PropagationTree:
    """Samples end-to-end propagation delays through the cache tree."""

    def __init__(self, levels: tuple[TreeLevelConfig, ...] = DEFAULT_LEVELS):
        if not levels:
            raise ValueError("propagation tree needs at least one level")
        self.levels = tuple(levels)

    def sample_delay(self, rng: np.random.Generator) -> float:
        """End-to-end delay for one update to reach one client's proxy."""
        return sum(level.sample_hop_delay(rng) for level in self.levels)

    def sample_delays(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorised sampling of ``n`` end-to-end delays (seconds)."""
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        total = np.zeros(n)
        for level in self.levels:
            total += rng.uniform(0.0, level.poll_interval, size=n)
            if level.jitter_mean > 0:
                total += rng.exponential(level.jitter_mean, size=n)
        return total

    def max_expected_delay(self) -> float:
        """Worst-case polling delay plus three jitter means per hop.

        Used by Cubrick's graceful ``dropShard`` implementation, which
        waits out "SMC's usual propagation delay" before deleting data
        (paper §IV-E).
        """
        return sum(
            level.poll_interval + 3.0 * level.jitter_mean for level in self.levels
        )
