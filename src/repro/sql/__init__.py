"""repro.sql: SQL frontend and distributed query planner.

Three stages, each importable on its own:

* :mod:`repro.sql.lexer` / :mod:`repro.sql.parser` /
  :mod:`repro.sql.ast` — hand-written tokenizer and recursive-descent
  parser producing a typed AST with source positions.
* :mod:`repro.sql.planner` / :mod:`repro.sql.rules` — catalog-aware
  name resolution and the ordered rewrite-rule pipeline (predicate
  normalisation, join-strategy selection, pushdown, pruning,
  partial-aggregation placement).
* :mod:`repro.sql.physical` / :mod:`repro.sql.explain` — lowering onto
  the distributed execution machinery (proxy fan-out, broadcast and
  partitioned-hash joins) and deterministic EXPLAIN rendering.
"""

from repro.errors import SqlError
from repro.sql.ast import SelectStatement, unparse
from repro.sql.explain import explain, render_explain
from repro.sql.parser import parse
from repro.sql.physical import PhysicalPlan, build_physical, execute_plan
from repro.sql.planner import (
    LogicalPlan,
    PlannerContext,
    compile_statement,
    plan,
)

__all__ = [
    "LogicalPlan",
    "PhysicalPlan",
    "PlannerContext",
    "SelectStatement",
    "SqlError",
    "build_physical",
    "compile_statement",
    "execute_plan",
    "explain",
    "parse",
    "plan",
    "render_explain",
    "unparse",
]
