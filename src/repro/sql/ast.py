"""Typed AST for the Cubrick SQL dialect.

Nodes are frozen dataclasses; every node carries a ``pos`` (character
offset into the source, excluded from equality so that
``parse(unparse(parse(s)))`` round-trips structurally). :func:`unparse`
renders any statement back to canonical SQL — the inverse the property
suite exercises for hundreds of generated statements per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

#: Aggregate function names the dialect accepts (mirrors AggFunc).
AGGREGATE_FUNCS = ("sum", "count", "min", "max", "avg", "count_distinct")

#: Comparison operators in WHERE (``<>`` normalises to ``!=`` at parse).
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Comparison operators in HAVING (the engine's CompareOp set).
HAVING_OPS = ("=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Number:
    """A numeric literal; ``is_int`` preserves how it was written."""

    value: float
    is_int: bool = True
    pos: int = field(compare=False, default=0)

    def render(self) -> str:
        if self.is_int:
            return str(int(self.value))
        return repr(float(self.value))


@dataclass(frozen=True)
class ColumnRef:
    """A plain (``day``) or dotted (``dim_users.country``) column."""

    name: str
    pos: int = field(compare=False, default=0)

    @property
    def table(self) -> Optional[str]:
        if "." in self.name:
            return self.name.split(".", 1)[0]
        return None

    @property
    def column(self) -> str:
        if "." in self.name:
            return self.name.split(".", 1)[1]
        return self.name


@dataclass(frozen=True)
class AggregateCall:
    """``func(column)`` or ``count(*)``; ``label()`` matches the engine."""

    func: str
    argument: str  # column name or "*"
    pos: int = field(compare=False, default=0)

    def label(self) -> str:
        return f"{self.func}({self.argument})"


SelectItem = Union[AggregateCall, ColumnRef]


# ----------------------------------------------------------------------
# Predicates (WHERE)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``operand op number``; operand may be a column or an aggregate
    (the latter is rejected by the planner with a positioned error)."""

    operand: SelectItem
    op: str  # one of COMPARISON_OPS
    value: Number
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class InList:
    operand: SelectItem
    values: tuple[Number, ...]
    negated: bool = False
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class BetweenPred:
    operand: SelectItem
    low: Number
    high: Number
    negated: bool = False
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class Not:
    operand: "Predicate"
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class And:
    items: tuple["Predicate", ...]
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class Or:
    items: tuple["Predicate", ...]
    pos: int = field(compare=False, default=0)


Predicate = Union[Comparison, InList, BetweenPred, Not, And, Or]


# ----------------------------------------------------------------------
# Clauses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON fact.fact_key = table.dim_key`` (order-insensitive)."""

    table: str
    fact_key: str
    dim_key: str
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class HavingItem:
    """``target op number`` where target is a group column or agg label."""

    target: str
    op: str  # one of HAVING_OPS
    value: Number
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class OrderClause:
    target: str
    descending: bool = True
    pos: int = field(compare=False, default=0)


@dataclass(frozen=True)
class SelectStatement:
    select: tuple[SelectItem, ...]
    table: str
    joins: tuple[JoinClause, ...] = ()
    where: Optional[Predicate] = None
    group_by: tuple[ColumnRef, ...] = ()
    having: tuple[HavingItem, ...] = ()
    order: Optional[OrderClause] = None
    limit: Optional[int] = None
    pos: int = field(compare=False, default=0)
    table_pos: int = field(compare=False, default=0)

    def aggregates(self) -> tuple[AggregateCall, ...]:
        return tuple(
            item for item in self.select if isinstance(item, AggregateCall)
        )


# ----------------------------------------------------------------------
# Unparse (canonical rendering)
# ----------------------------------------------------------------------


def _render_operand(operand: SelectItem) -> str:
    if isinstance(operand, AggregateCall):
        return operand.label()
    return operand.name


def render_predicate(pred: Predicate) -> str:
    """Canonical SQL for one predicate subtree (minimal parentheses)."""
    if isinstance(pred, Comparison):
        return f"{_render_operand(pred.operand)} {pred.op} {pred.value.render()}"
    if isinstance(pred, InList):
        values = ", ".join(v.render() for v in pred.values)
        word = "NOT IN" if pred.negated else "IN"
        return f"{_render_operand(pred.operand)} {word} ({values})"
    if isinstance(pred, BetweenPred):
        word = "NOT BETWEEN" if pred.negated else "BETWEEN"
        return (
            f"{_render_operand(pred.operand)} {word} "
            f"{pred.low.render()} AND {pred.high.render()}"
        )
    if isinstance(pred, Not):
        inner = render_predicate(pred.operand)
        if isinstance(pred.operand, (And, Or)):
            inner = f"({inner})"
        return f"NOT {inner}"
    if isinstance(pred, And):
        parts = []
        for item in pred.items:
            text = render_predicate(item)
            if isinstance(item, (And, Or)):
                text = f"({text})"
            parts.append(text)
        return " AND ".join(parts)
    if isinstance(pred, Or):
        parts = []
        for item in pred.items:
            text = render_predicate(item)
            if isinstance(item, Or):
                text = f"({text})"
            parts.append(text)
        return " OR ".join(parts)
    raise TypeError(f"not a predicate node: {pred!r}")


def unparse(stmt: SelectStatement) -> str:
    """Render a statement back to canonical SQL.

    ``parse(unparse(parse(s)))`` equals ``parse(s)`` for every statement
    the grammar accepts (positions excluded) — verified by the property
    suite.
    """
    parts = ["SELECT "]
    parts.append(", ".join(_render_operand(item) for item in stmt.select))
    parts.append(f" FROM {stmt.table}")
    for join in stmt.joins:
        parts.append(
            f" JOIN {join.table} ON {stmt.table}.{join.fact_key} = "
            f"{join.table}.{join.dim_key}"
        )
    if stmt.where is not None:
        parts.append(" WHERE " + render_predicate(stmt.where))
    if stmt.group_by:
        parts.append(" GROUP BY " + ", ".join(c.name for c in stmt.group_by))
    if stmt.having:
        clauses = [
            f"{h.target} {h.op} {h.value.render()}" for h in stmt.having
        ]
        parts.append(" HAVING " + " AND ".join(clauses))
    if stmt.order is not None:
        direction = "DESC" if stmt.order.descending else "ASC"
        parts.append(f" ORDER BY {stmt.order.target} {direction}")
    if stmt.limit is not None:
        parts.append(f" LIMIT {stmt.limit}")
    return "".join(parts)
