"""Deterministic EXPLAIN rendering for SQL plans.

The output is a pure function of the parsed statement, the catalog and
the planner context's statistics callback — no wall clock, no RNG, no
execution — so a seeded deployment renders byte-identical text across
runs and the golden files under ``tests/golden/`` can be compared
byte-for-byte in CI.
"""

from __future__ import annotations

from repro.cubrick.query import Filter, FilterOp
from repro.sql.ast import unparse
from repro.sql.physical import PhysicalPlan, build_physical
from repro.sql.planner import LogicalPlan, PlannerContext, plan as plan_statement
from repro.sql.parser import parse


def explain(statement: str, context: PlannerContext) -> str:
    """Parse, plan and render one statement's full EXPLAIN text."""
    stmt = parse(statement)
    logical = plan_statement(stmt, context, source=statement)
    physical = build_physical(logical)
    return render_explain(logical, physical)


def render_explain(logical: LogicalPlan, physical: PhysicalPlan) -> str:
    lines = [unparse(logical.statement), ""]
    lines.append("== logical plan ==")
    lines.extend(_logical_tree(logical))
    lines.append("")
    lines.append("== rewrite rules ==")
    for rule_name, notes in logical.trace:
        lines.append(f"{rule_name}:")
        for note in notes:
            lines.append(f"  - {note}")
    lines.append("")
    lines.append(f"== physical plan == [{physical.kind}]")
    for step in physical.steps:
        lines.append(f"  - {step}")
    return "\n".join(lines) + "\n"


def _logical_tree(plan: LogicalPlan) -> list[str]:
    nodes: list[str] = []
    if plan.limit is not None:
        nodes.append(f"Limit [{plan.limit}]")
    if plan.order_by is not None:
        direction = "DESC" if plan.descending else "ASC"
        nodes.append(f"Sort [{plan.order_by} {direction}]")
    if plan.having:
        rendered = ", ".join(
            f"{h.column} {h.op.value} {_render_value(h.value)}"
            for h in plan.having
        )
        nodes.append(f"Having [{rendered}]")
    group = ", ".join(plan.group_by) if plan.group_by else "<scalar>"
    aggs = ", ".join(a.label() for a in plan.aggregations)
    nodes.append(f"Aggregate [group: {group}] [{aggs}]")
    for join in plan.joins:
        strategy = plan.join_strategies.get(join.table, "?")
        nodes.append(
            f"Join [{join.table} ON {plan.fact_table}.{join.fact_key} = "
            f"{join.table}.{join.dim_key}] [{strategy}]"
        )
    if plan.empty:
        nodes.append(f"Empty [{plan.empty_reason}]")
    elif plan.filters:
        rendered = ", ".join(_render_filter(f) for f in plan.filters)
        nodes.append(f"Filter [{rendered}]")
    rows = None
    if plan.context.stats is not None:
        rows = plan.context.stats(plan.fact_table)
    rows_text = "?" if rows is None else str(rows)
    nodes.append(
        f"Scan [{plan.fact_table}] "
        f"[partitions={plan.binding.fact.num_partitions}] "
        f"[rows~{rows_text}]"
    )
    return [("  " * depth) + node for depth, node in enumerate(nodes)]


def _render_filter(f: Filter) -> str:
    if f.op is FilterOp.EQ:
        return f"{f.dimension} = {f.values[0]}"
    if f.op is FilterOp.IN:
        return f"{f.dimension} IN ({', '.join(str(v) for v in f.values)})"
    if f.op is FilterOp.NOT_IN:
        return (
            f"{f.dimension} NOT IN "
            f"({', '.join(str(v) for v in f.values)})"
        )
    return f"{f.dimension} BETWEEN {f.values[0]} AND {f.values[1]}"


def _render_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))
