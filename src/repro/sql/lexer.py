"""Hand-written tokenizer for the Cubrick SQL dialect.

Every token carries its character offset into the source statement, so
the parser and planner can raise :class:`~repro.errors.SqlError` with a
position that frontends render as a caret under the offending text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlError

#: Reserved words, matched case-insensitively and normalised to lower.
KEYWORDS = frozenset({
    "select", "from", "join", "on", "where", "and", "or", "not",
    "between", "in", "group", "by", "having", "order", "limit",
    "asc", "desc",
})

#: Multi-char symbols must be tried before their single-char prefixes.
_SYMBOLS = ("<>", "!=", ">=", "<=", "=", "<", ">", "(", ")", ",", "*", "-")

KEYWORD = "keyword"
NAME = "name"
NUMBER = "number"
SYMBOL = "symbol"
EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexed token: kind, normalised text and source offset."""

    kind: str
    value: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word

    def describe(self) -> str:
        if self.kind == EOF:
            return "end of input"
        return repr(self.value)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> list[Token]:
    """Lex a statement into tokens (ending with one EOF token).

    Raises :class:`SqlError` (with position) on characters the dialect
    does not know — including string literals, which Cubrick's integer
    coded dimensions can never compare against.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "'\"":
            raise SqlError(
                "string literals are not supported (dimensions are "
                "integer coded)", statement=text, position=i,
            )
        if _is_name_start(ch):
            start = i
            while i < n and _is_name_char(text[i]):
                i += 1
            # Dotted references (``dim_users.country``) lex as one name.
            if i < n and text[i] == "." and i + 1 < n and \
                    _is_name_start(text[i + 1]):
                i += 1
                while i < n and _is_name_char(text[i]):
                    i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, start))
            else:
                tokens.append(Token(NAME, word, start))
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            tokens.append(Token(NUMBER, text[start:i], start))
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlError(
                f"unexpected character {ch!r}", statement=text, position=i
            )
    tokens.append(Token(EOF, "", n))
    return tokens
