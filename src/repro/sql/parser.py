"""Recursive-descent parser for the Cubrick SQL dialect.

Grammar (case-insensitive keywords)::

    statement  := SELECT items FROM name join* [WHERE expr]
                  [GROUP BY names] [HAVING having (AND having)*]
                  [ORDER BY target [ASC|DESC]] [LIMIT int]
    items      := item (',' item)*
    item       := name | func '(' (name | '*') ')'
    join       := JOIN name ON dotted '=' dotted
    expr       := term (OR term)*
    term       := factor (AND factor)*
    factor     := NOT factor | '(' expr ')' | predicate
    predicate  := operand cmp number
                | operand [NOT] IN '(' number (',' number)* ')'
                | operand [NOT] BETWEEN number AND number
    operand    := name | func '(' (name | '*') ')'
    cmp        := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='

Precedence is OR < AND < NOT; BETWEEN's inner AND binds tighter than the
boolean AND. All errors are :class:`~repro.errors.SqlError` with the
offending character position.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SqlError
from repro.sql import ast
from repro.sql.lexer import EOF, KEYWORD, NAME, NUMBER, SYMBOL, Token, tokenize

_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SqlError:
        token = token or self.current
        return SqlError(message, statement=self.text, position=token.pos)

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(
                f"expected {word.upper()}, found {self.current.describe()}"
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if self.current.kind != SYMBOL or self.current.value != symbol:
            raise self.error(
                f"expected {symbol!r}, found {self.current.describe()}"
            )
        return self.advance()

    def expect_name(self, what: str = "name") -> Token:
        if self.current.kind != NAME:
            raise self.error(
                f"expected {what}, found {self.current.describe()}"
            )
        return self.advance()

    def at_symbol(self, symbol: str) -> bool:
        return self.current.kind == SYMBOL and self.current.value == symbol

    # -- terminals -----------------------------------------------------

    def parse_number(self) -> ast.Number:
        start = self.current
        negative = False
        if self.at_symbol("-"):
            self.advance()
            negative = True
        if self.current.kind != NUMBER:
            raise self.error(
                f"expected number, found {self.current.describe()}"
            )
        token = self.advance()
        is_int = "." not in token.value
        value = float(token.value)
        if negative:
            value = -value
        return ast.Number(value=value, is_int=is_int, pos=start.pos)

    def parse_operand(self) -> ast.SelectItem:
        """A column reference or an aggregate call."""
        token = self.expect_name("column or aggregate")
        if self.at_symbol("("):
            func = token.value.lower()
            if func not in ast.AGGREGATE_FUNCS:
                raise self.error(
                    f"unknown aggregate function {token.value!r}", token
                )
            self.advance()
            if self.at_symbol("*"):
                arg_token = self.advance()
                if func != "count":
                    raise self.error(
                        f"'*' is only valid inside count(), not {func}()",
                        arg_token,
                    )
                argument = "*"
            else:
                argument = self.expect_name("column name").value
            self.expect_symbol(")")
            return ast.AggregateCall(func=func, argument=argument,
                                     pos=token.pos)
        return ast.ColumnRef(name=token.value, pos=token.pos)

    # -- predicates ----------------------------------------------------

    def parse_expr(self) -> ast.Predicate:
        first = self.parse_term()
        if not self.current.is_keyword("or"):
            return first
        items = [first]
        pos = first.pos
        while self.current.is_keyword("or"):
            self.advance()
            items.append(self.parse_term())
        return ast.Or(items=tuple(items), pos=pos)

    def parse_term(self) -> ast.Predicate:
        first = self.parse_factor()
        if not self.current.is_keyword("and"):
            return first
        items = [first]
        pos = first.pos
        while self.current.is_keyword("and"):
            self.advance()
            items.append(self.parse_factor())
        return ast.And(items=tuple(items), pos=pos)

    def parse_factor(self) -> ast.Predicate:
        if self.current.is_keyword("not"):
            token = self.advance()
            operand = self.parse_factor()
            return ast.Not(operand=operand, pos=token.pos)
        if self.at_symbol("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Predicate:
        operand = self.parse_operand()
        negated = False
        if self.current.is_keyword("not"):
            self.advance()
            negated = True
            if not (self.current.is_keyword("in")
                    or self.current.is_keyword("between")):
                raise self.error("expected IN or BETWEEN after NOT")
        if self.current.is_keyword("in"):
            token = self.advance()
            self.expect_symbol("(")
            values = [self.parse_number()]
            while self.at_symbol(","):
                self.advance()
                values.append(self.parse_number())
            self.expect_symbol(")")
            return ast.InList(operand=operand, values=tuple(values),
                              negated=negated, pos=token.pos)
        if self.current.is_keyword("between"):
            token = self.advance()
            low = self.parse_number()
            self.expect_keyword("and")
            high = self.parse_number()
            return ast.BetweenPred(operand=operand, low=low, high=high,
                                   negated=negated, pos=token.pos)
        if self.current.kind == SYMBOL and self.current.value in _COMPARISONS:
            token = self.advance()
            op = "!=" if token.value == "<>" else token.value
            value = self.parse_number()
            return ast.Comparison(operand=operand, op=op, value=value,
                                  pos=token.pos)
        raise self.error(
            f"expected comparison, IN or BETWEEN, found "
            f"{self.current.describe()}"
        )

    # -- clauses -------------------------------------------------------

    def parse_select_items(self) -> tuple[ast.SelectItem, ...]:
        items = [self.parse_operand()]
        while self.at_symbol(","):
            self.advance()
            items.append(self.parse_operand())
        return tuple(items)

    def parse_join(self, fact_table: str) -> ast.JoinClause:
        join_token = self.expect_keyword("join")
        table = self.expect_name("join table name").value
        self.expect_keyword("on")
        left_token = self.expect_name("dotted column")
        self.expect_symbol("=")
        right_token = self.expect_name("dotted column")

        sides = {}
        for token in (left_token, right_token):
            if "." not in token.value:
                raise self.error(
                    "join conditions must use dotted table.column names",
                    token,
                )
            prefix, column = token.value.split(".", 1)
            if prefix not in (fact_table, table):
                raise self.error(
                    f"unknown table {prefix!r} in join condition", token
                )
            if prefix in sides:
                raise self.error(
                    f"join condition references {prefix!r} on both sides",
                    token,
                )
            sides[prefix] = column
        if fact_table not in sides or table not in sides:
            raise self.error(
                "join condition must relate the fact table to the joined "
                "table",
                left_token,
            )
        return ast.JoinClause(table=table, fact_key=sides[fact_table],
                              dim_key=sides[table], pos=join_token.pos)

    def parse_having_item(self) -> ast.HavingItem:
        target = self.parse_order_target("HAVING target")
        if self.current.kind != SYMBOL or \
                self.current.value not in ast.HAVING_OPS:
            raise self.error(
                f"expected one of {', '.join(ast.HAVING_OPS)}, found "
                f"{self.current.describe()}"
            )
        op_token = self.advance()
        value = self.parse_number()
        return ast.HavingItem(target=target.text, op=op_token.value,
                              value=value, pos=target.pos)

    def parse_order_target(self, what: str) -> "_Target":
        """A bare column name or an aggregate label like ``sum(clicks)``."""
        token = self.expect_name(what)
        if self.at_symbol("("):
            self.advance()
            if self.at_symbol("*"):
                arg = self.advance().value
            else:
                arg = self.expect_name("column name").value
            self.expect_symbol(")")
            return _Target(f"{token.value.lower()}({arg})", token.pos)
        return _Target(token.value, token.pos)

    # -- statement -----------------------------------------------------

    def parse_statement(self) -> ast.SelectStatement:
        start = self.expect_keyword("select")
        select = self.parse_select_items()
        self.expect_keyword("from")
        table_token = self.expect_name("table name")
        if "." in table_token.value:
            raise self.error("table names cannot be dotted", table_token)
        table = table_token.value

        joins = []
        while self.current.is_keyword("join"):
            joins.append(self.parse_join(table))

        where = None
        if self.current.is_keyword("where"):
            self.advance()
            where = self.parse_expr()

        group_by: list[ast.ColumnRef] = []
        if self.current.is_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            token = self.expect_name("column name")
            group_by.append(ast.ColumnRef(name=token.value, pos=token.pos))
            while self.at_symbol(","):
                self.advance()
                token = self.expect_name("column name")
                group_by.append(
                    ast.ColumnRef(name=token.value, pos=token.pos)
                )

        having: list[ast.HavingItem] = []
        if self.current.is_keyword("having"):
            self.advance()
            having.append(self.parse_having_item())
            while self.current.is_keyword("and"):
                self.advance()
                having.append(self.parse_having_item())

        order = None
        if self.current.is_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            target = self.parse_order_target("ORDER BY target")
            # The dialect's legacy default is descending (top-k first).
            descending = True
            if self.current.is_keyword("asc"):
                self.advance()
                descending = False
            elif self.current.is_keyword("desc"):
                self.advance()
            order = ast.OrderClause(target=target.text,
                                    descending=descending, pos=target.pos)

        limit = None
        if self.current.is_keyword("limit"):
            self.advance()
            number = self.parse_number()
            if not number.is_int or number.value <= 0:
                raise self.error("LIMIT must be a positive integer")
            limit = int(number.value)

        if self.current.kind != EOF:
            raise self.error(
                f"unexpected trailing input {self.current.describe()}"
            )
        return ast.SelectStatement(
            select=select,
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=tuple(having),
            order=order,
            limit=limit,
            pos=start.pos,
            table_pos=table_token.pos,
        )


class _Target:
    """A resolved ORDER BY / HAVING target (text + source position)."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str, pos: int):
        self.text = text
        self.pos = pos


def parse(text: str) -> ast.SelectStatement:
    """Parse one SELECT statement into a typed AST.

    Raises :class:`SqlError` (with position info) on any lexical or
    syntactic problem.
    """
    if not text or not text.strip():
        raise SqlError("empty SQL statement", statement=text, position=0)
    return _Parser(text).parse_statement()
